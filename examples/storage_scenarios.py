#!/usr/bin/env python
"""Storage scenarios: net metering vs batteries vs no storage (Figs. 8-10).

The paper's central placement result is that *how* surplus green energy can be
stored determines the cost of a highly green service: net metering (banking
energy in the grid) is essentially free storage, batteries are workable but
expensive, and having no storage at all forces massive over-provisioning of
the green plants.  This example reproduces that comparison for a 50 MW
service at 50 % and 100 % green energy.

Run it with::

    python examples/storage_scenarios.py
"""

from repro.analysis import format_table
from repro.core import EnergySources, PlacementTool, SearchSettings, StorageMode
from repro.energy import EpochGrid
from repro.weather import build_world_catalog

SCENARIOS = [
    ("net metering", StorageMode.NET_METERING),
    ("batteries", StorageMode.BATTERIES),
    ("no storage", StorageMode.NONE),
]
GREEN_TARGETS = (0.5, 1.0)


def main() -> None:
    catalog = build_world_catalog(num_locations=60, seed=42)
    tool = PlacementTool(
        catalog=catalog,
        epoch_grid=EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3),
    )
    settings = SearchSettings(keep_locations=10, max_iterations=16, num_chains=2, seed=3)

    rows = []
    for green_target in GREEN_TARGETS:
        for label, storage in SCENARIOS:
            solution = tool.plan_network(
                total_capacity_kw=50_000.0,
                min_green_fraction=green_target,
                sources=EnergySources.SOLAR_AND_WIND,
                storage=storage,
                settings=settings,
            )
            plan = solution.plan
            rows.append(
                {
                    "green target %": int(100 * green_target),
                    "storage": label,
                    "cost $M/month": solution.monthly_cost / 1e6,
                    "datacenters": plan.num_datacenters if plan else 0,
                    "IT capacity MW": plan.total_capacity_kw / 1000 if plan else float("nan"),
                    "solar MW": plan.total_solar_kw / 1000 if plan else float("nan"),
                    "wind MW": plan.total_wind_kw / 1000 if plan else float("nan"),
                    "battery MWh": plan.total_battery_kwh / 1000 if plan else float("nan"),
                }
            )
            print(f"solved: {int(100 * green_target)}% green, {label}")

    print()
    print(format_table(rows))
    print()
    print("Things to look for (Section IV of the paper):")
    print(" * at 100 % green, net metering is by far the cheapest option;")
    print(" * batteries cost more because battery capacity itself is expensive;")
    print(" * with no storage the green plants (and sometimes the compute capacity)")
    print("   are massively over-provisioned and the cost multiplies.")


if __name__ == "__main__":
    main()
