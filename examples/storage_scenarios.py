#!/usr/bin/env python
"""Storage scenarios: net metering vs batteries vs no storage (Figs. 8-10).

The paper's central placement result is that *how* surplus green energy can be
stored determines the cost of a highly green service: net metering (banking
energy in the grid) is essentially free storage, batteries are workable but
expensive, and having no storage at all forces massive over-provisioning of
the green plants.  This example reproduces that comparison for a 50 MW
service at 50 % and 100 % green energy as one declarative cartesian sweep
(see the repository README for the scenario workflow).

Run it with::

    python examples/storage_scenarios.py
"""

from repro.analysis import format_table
from repro.scenarios import ExperimentRunner, ParameterSweep, ScenarioSpec

STORAGE_LABELS = {"net_metering": "net metering", "batteries": "batteries", "none": "no storage"}


def main() -> None:
    base = ScenarioSpec(
        name="storage-scenarios",
        num_locations=60,
        catalog_seed=42,
        days_per_season=1,
        hours_per_epoch=3,
        total_capacity_kw=50_000.0,
        sources="solar+wind",
        search={"keep_locations": 10, "max_iterations": 16, "num_chains": 2, "seed": 3},
    )
    sweep = ParameterSweep(
        base=base,
        axes={
            "min_green_fraction": (0.5, 1.0),
            "storage": tuple(STORAGE_LABELS),
        },
    )

    results = ExperimentRunner().run(sweep)
    rows = []
    for point in results:
        record = point.record
        rows.append(
            {
                "green target %": int(100 * point.overrides["min_green_fraction"]),
                "storage": STORAGE_LABELS[point.overrides["storage"]],
                "cost $M/month": record["monthly_cost_musd"],
                "datacenters": record["num_datacenters"],
                "IT capacity MW": record["capacity_mw"],
                "solar MW": record["solar_mw"],
                "wind MW": record["wind_mw"],
                "battery MWh": record["battery_mwh"],
            }
        )
        print(f"solved: {rows[-1]['green target %']}% green, {rows[-1]['storage']}")

    print()
    print(format_table(rows))
    print()
    print("Things to look for (Section IV of the paper):")
    print(" * at 100 % green, net metering is by far the cheapest option;")
    print(" * batteries cost more because battery capacity itself is expensive;")
    print(" * with no storage the green plants (and sometimes the compute capacity)")
    print("   are massively over-provisioned and the cost multiplies.")


if __name__ == "__main__":
    main()
