#!/usr/bin/env python
"""Quickstart: site and provision a small green HPC cloud service.

This example walks through the declarative experiment workflow (see the
repository README for the full tour):

1. describe the experiment as a :class:`~repro.scenarios.spec.ScenarioSpec`
   — catalogue size, epoch grid, demand, green requirement, search budget,
2. run it (and the brown baseline, as a one-axis sweep) through the
   :class:`~repro.scenarios.runner.ExperimentRunner`,
3. inspect the resulting plan: locations, provisioning, cost breakdown and
   the achieved green fraction.

Run it with::

    python examples/quickstart.py
"""

from repro.analysis import case_study_breakdown, format_table
from repro.scenarios import ExperimentRunner, ParameterSweep, ScenarioSpec


def main() -> None:
    # Everything needed to reproduce the experiment lives in one serializable
    # spec: a catalogue of 60 candidate locations (the paper uses 1373; a
    # smaller set keeps the example fast — the named "anchor" locations from
    # the paper's tables are always included), four representative days at
    # 3-hour resolution, a 50 MW service and a short annealing schedule.
    spec = ScenarioSpec(
        name="quickstart",
        num_locations=60,
        catalog_seed=42,
        days_per_season=1,
        hours_per_epoch=3,
        total_capacity_kw=50_000.0,
        min_green_fraction=0.5,
        sources="solar+wind",
        storage="net_metering",
        search={"keep_locations": 10, "max_iterations": 20, "num_chains": 2, "seed": 7},
    )
    print(f"scenario content hash: {spec.content_hash()[:16]}...  (try spec.to_json())")

    # One sweep axis gives us the green network *and* the brown (0 % green)
    # baseline; the runner shares the catalogue and profiles between the two.
    sweep = ParameterSweep(base=spec, axes={"min_green_fraction": (0.5, 0.0)})

    print("Siting a 50 MW HPC cloud service with >= 50 % green energy (net metering)...")
    results = ExperimentRunner().run(sweep)
    solution = results.find(min_green_fraction=0.5).solution
    brown = results.find(min_green_fraction=0.0).solution
    if not solution.feasible:
        raise SystemExit(f"no feasible plan found: {solution.message}")

    plan = solution.plan
    print()
    print(plan.describe())
    print()
    print(f"achieved green fraction : {100 * plan.green_fraction:.1f} %")
    print(f"network availability    : {100 * plan.availability:.4f} %")
    print(f"heuristic LP evaluations: {solution.evaluations}")
    print()
    print("Cost breakdown per datacenter ($M/month):")
    print(format_table(case_study_breakdown(plan)))

    premium = plan.total_monthly_cost / brown.monthly_cost - 1.0
    print()
    print(f"cheapest brown network : ${brown.monthly_cost / 1e6:.2f}M/month")
    print(f"green premium          : {100 * premium:.1f} %  (the paper reports ~13 %)")


if __name__ == "__main__":
    main()
