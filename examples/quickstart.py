#!/usr/bin/env python
"""Quickstart: site and provision a small green HPC cloud service.

This example walks through the library's main entry point, the
:class:`~repro.core.tool.PlacementTool`:

1. build a (small) world catalogue of candidate locations,
2. ask the tool for a 50 MW network with at least 50 % green energy,
3. inspect the resulting plan: locations, provisioning, cost breakdown and
   the achieved green fraction.

Run it with::

    python examples/quickstart.py
"""

from repro.analysis import case_study_breakdown, format_table
from repro.core import EnergySources, PlacementTool, SearchSettings, StorageMode
from repro.energy import EpochGrid
from repro.weather import build_world_catalog


def main() -> None:
    # A catalogue of 60 candidate locations (the paper uses 1373; a smaller set
    # keeps the example fast).  The named "anchor" locations from the paper's
    # tables are always included.
    catalog = build_world_catalog(num_locations=60, seed=42)

    # The placement tool bundles the catalogue, the Table I cost parameters and
    # the epoch grid used to discretise a year of weather.
    tool = PlacementTool(
        catalog=catalog,
        epoch_grid=EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3),
    )

    # Short annealing schedule for the example; the defaults search longer.
    settings = SearchSettings(keep_locations=10, max_iterations=20, num_chains=2, seed=7)

    print("Siting a 50 MW HPC cloud service with >= 50 % green energy (net metering)...")
    solution = tool.plan_network(
        total_capacity_kw=50_000.0,
        min_green_fraction=0.5,
        sources=EnergySources.SOLAR_AND_WIND,
        storage=StorageMode.NET_METERING,
        settings=settings,
    )
    if not solution.feasible:
        raise SystemExit(f"no feasible plan found: {solution.message}")

    plan = solution.plan
    print()
    print(plan.describe())
    print()
    print(f"achieved green fraction : {100 * plan.green_fraction:.1f} %")
    print(f"network availability    : {100 * plan.availability:.4f} %")
    print(f"heuristic LP evaluations: {solution.evaluations}")
    print()
    print("Cost breakdown per datacenter ($M/month):")
    print(format_table(case_study_breakdown(plan)))

    # For comparison: the cheapest possible "brown" (0 % green) network.
    brown = tool.plan_network(
        total_capacity_kw=50_000.0,
        min_green_fraction=0.0,
        sources=EnergySources.NONE,
        storage=StorageMode.NET_METERING,
        settings=settings,
    )
    premium = plan.total_monthly_cost / brown.monthly_cost - 1.0
    print()
    print(f"cheapest brown network : ${brown.monthly_cost / 1e6:.2f}M/month")
    print(f"green premium          : {100 * premium:.1f} %  (the paper reports ~13 %)")


if __name__ == "__main__":
    main()
