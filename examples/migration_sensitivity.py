#!/usr/bin/env python
"""Migration-overhead sensitivity for a 100 % green, no-storage service (Fig. 13).

The placement framework pessimistically assumes that load migrated between
datacenters consumes energy at *both* sites for a full epoch.  The paper's
Fig. 13 asks how much that assumption costs: if migrations were free (0 % of
an epoch), the 100 % green, no-storage network would be up to ~12 % cheaper
(19 % for wind-only, which migrates the most).  This example sweeps the
migration factor and prints the resulting costs for the three plant mixes.

Run it with::

    python examples/migration_sensitivity.py
"""

from repro.analysis import figure13_migration_sweep, format_table, series_to_rows
from repro.core import PlacementTool, SearchSettings, StorageMode
from repro.energy import EpochGrid
from repro.weather import build_world_catalog

MIGRATION_FACTORS = (0.0, 0.5, 1.0)


def main() -> None:
    catalog = build_world_catalog(num_locations=60, seed=42)
    tool = PlacementTool(
        catalog=catalog,
        epoch_grid=EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3),
    )
    settings = SearchSettings(keep_locations=10, max_iterations=16, num_chains=1, seed=5)

    print("Sweeping the migration-energy factor for a 100 % green, no-storage network...")
    results = figure13_migration_sweep(
        tool,
        migration_factors=MIGRATION_FACTORS,
        total_capacity_kw=50_000.0,
        green_fraction=1.0,
        storage=StorageMode.NONE,
        settings=settings,
    )

    costs = {
        label: [per_factor[factor].monthly_cost / 1e6 for factor in MIGRATION_FACTORS]
        for label, per_factor in results.items()
    }
    rows = series_to_rows(costs, "migration % of an epoch", [int(100 * f) for f in MIGRATION_FACTORS])
    print()
    print("Cost of the 100 % green, no-storage network ($M/month):")
    print(format_table(rows))

    both = costs["wind_and_or_solar"]
    saving = 1.0 - both[0] / both[-1]
    print()
    print(f"making migrations free saves {100 * saving:.1f} % for the solar+wind mix "
          "(the paper reports savings up to ~12 %, and ~19 % for wind-only)")


if __name__ == "__main__":
    main()
