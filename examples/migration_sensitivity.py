#!/usr/bin/env python
"""Migration-overhead sensitivity for a 100 % green, no-storage service (Fig. 13).

The placement framework pessimistically assumes that load migrated between
datacenters consumes energy at *both* sites for a full epoch.  The paper's
Fig. 13 asks how much that assumption costs: if migrations were free (0 % of
an epoch), the 100 % green, no-storage network would be up to ~12 % cheaper
(19 % for wind-only, which migrates the most).  This example sweeps the
migration factor and the plant mix as one declarative cartesian grid (see the
repository README for the scenario workflow) and prints the resulting costs.

Run it with::

    python examples/migration_sensitivity.py
"""

from repro.analysis import format_table, series_to_rows
from repro.scenarios import ExperimentRunner, ParameterSweep, ScenarioSpec, source_label

MIGRATION_FACTORS = (0.0, 0.5, 1.0)


def main() -> None:
    base = ScenarioSpec(
        name="migration-sensitivity",
        num_locations=60,
        catalog_seed=42,
        days_per_season=1,
        hours_per_epoch=3,
        total_capacity_kw=50_000.0,
        min_green_fraction=1.0,
        storage="none",
        search={"keep_locations": 10, "max_iterations": 16, "num_chains": 1, "seed": 5},
    )
    sweep = ParameterSweep(
        base=base,
        axes={
            "sources": ("wind", "solar", "solar+wind"),
            "migration_factor": MIGRATION_FACTORS,
        },
    )

    print("Sweeping the migration-energy factor for a 100 % green, no-storage network...")
    results = ExperimentRunner().run(sweep)

    costs: dict = {}
    for point in results:
        label = source_label(point.overrides["sources"])
        costs.setdefault(label, []).append(point.record["monthly_cost"] / 1e6)

    rows = series_to_rows(costs, "migration % of an epoch", [int(100 * f) for f in MIGRATION_FACTORS])
    print()
    print("Cost of the 100 % green, no-storage network ($M/month):")
    print(format_table(rows))

    both = costs["wind_and_or_solar"]
    saving = 1.0 - both[0] / both[-1]
    print()
    print(f"making migrations free saves {100 * saving:.1f} % for the solar+wind mix "
          "(the paper reports savings up to ~12 %, and ~19 % for wind-only)")


if __name__ == "__main__":
    main()
