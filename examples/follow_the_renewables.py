#!/usr/bin/env python
"""Follow the renewables with GreenNebula (Section V / Fig. 15).

This example describes a three-datacenter, solar-heavy deployment shaped like
the paper's Table III network (Mexico City, Andersen/Guam, Harare) as an
``emulate``-workflow :class:`~repro.scenarios.spec.ScenarioSpec`, starts a
fleet of nine batch VMs in Harare, and runs the GreenNebula emulation for 24
hours (see the repository README for the scenario workflow).  Every hour the
scheduler predicts green energy 48 hours ahead, re-partitions the workload,
and live-migrates VMs towards the datacenters with green energy; GDFS carries
only each VM's unreplicated disk blocks along with the migration.

Run it with::

    python examples/follow_the_renewables.py
"""

from repro.greennebula import EmulatedCloud
from repro.scenarios import ScenarioSpec


def build_cloud() -> EmulatedCloud:
    # Table III provisions ~7x the IT power in solar at each site (scaled to
    # the emulated fleet by the spec's factor knobs) plus a little wind.
    spec = ScenarioSpec(
        name="follow-the-renewables",
        workflow="emulate",
        num_locations=30,
        catalog_seed=42,
        hours_per_epoch=1,
        emulation={
            "sites": ("Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"),
            "num_vms": 9,
            "duration_hours": 24,
            "initial_datacenter": "Harare, Zimbabwe",
            "seed": 11,
            "it_factor": 1.3,
            "solar_factor": 7.0,
            "wind_factor": 0.4,
        },
    )
    return EmulatedCloud.from_spec(spec)


def main() -> None:
    cloud = build_cloud()
    print("Running the GreenNebula emulation for 24 hours (hourly scheduling passes)...")
    summary = cloud.run()

    print()
    print("Hourly VM load per datacenter (kW) — watch the load follow the sun:")
    for dc in cloud.datacenters:
        series = ["%5.2f" % value for value in cloud.load_series(dc.name)]
        print(f"  {dc.name:<28} {' '.join(series)}")

    print()
    print("Migrations during the day:")
    for record in cloud.trace.of_kind("migration"):
        print(
            f"  hour {record['time']:>4.0f}: {record['vm']} "
            f"{record['source']} -> {record['destination']} "
            f"({record['state_mb']:.0f} MB, {record['duration_hours']:.2f} h over the WAN)"
        )

    print()
    print("Summary:")
    print(f"  migrations            : {summary.total_migrations}")
    print(f"  migrated state        : {summary.migrated_state_mb:.0f} MB")
    print(f"  green energy used     : {summary.total_green_used_kwh:.2f} kWh")
    print(f"  brown energy used     : {summary.total_brown_kwh:.2f} kWh")
    print(f"  green fraction        : {100 * summary.green_fraction:.1f} %")
    print(f"  mean scheduling time  : {1000 * summary.mean_schedule_time_s:.0f} ms "
          "(the paper reports 240-760 ms)")
    print(f"  GDFS WAN traffic      : fetch {cloud.gdfs.transfers.fetch_mb:.0f} MB, "
          f"re-replication {cloud.gdfs.transfers.replication_mb:.0f} MB, "
          f"migration {cloud.gdfs.transfers.migration_mb:.0f} MB")


if __name__ == "__main__":
    main()
