"""Executor selection for the repo's parallel fan-out points.

Every embarrassingly-parallel stage of the reproduction — the heuristic's
filter-pricing chunks and annealing chains, and the experiment runner's sweep
points — dispatches through one :class:`ExecutorFactory`, selected by an
``executor`` knob:

``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap to start and
    able to share in-process caches (the siting memo, compiled skeletons),
    but CPU-bound LP *assembly* in pure Python serializes on the GIL; the
    HiGHS solve itself releases it.
``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor` for true multi-core
    scaling.  Work is shipped as picklable descriptors (see
    :mod:`repro.parallel.work`) — never live HiGHS handles — and workers
    rebuild solvers lazily with a per-process memo.
``"serial"``
    A :class:`SerialExecutor` that runs submissions inline.  The reference
    trajectory every other mode is required to reproduce bit for bit.

Worker sizing honours container CPU quotas: ``os.cpu_count()`` reports the
host's cores even inside a cgroup-limited container, so
:func:`available_cpu_count` prefers the scheduling affinity mask.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional

#: The supported executor kinds, in the order they appear in help texts.
EXECUTOR_KINDS = ("thread", "process", "serial")

#: Set in process-pool workers (via the pool initializer and again at task
#: entry, so it holds under both fork and spawn start methods).  Nested
#: process pools inside workers are legal on CPython >= 3.9 but only
#: oversubscribe the machine, so factories inside a worker downgrade
#: ``"process"`` to ``"serial"`` — results are identical by construction.
_IN_PROCESS_WORKER = False


def mark_process_worker() -> None:
    """Flag the current process as a pool worker (see ``_IN_PROCESS_WORKER``)."""
    global _IN_PROCESS_WORKER
    _IN_PROCESS_WORKER = True


def in_process_worker() -> bool:
    return _IN_PROCESS_WORKER


def run_task_inline(fn: Callable[..., Any], *args: Any) -> Any:
    """Run a pool task function in the calling process, leaving no worker mark.

    Task entry points (:func:`~repro.parallel.work.run_pricing_chunk` and
    friends) call :func:`mark_process_worker` unconditionally; executing one
    inline for a fallback must not permanently flag the *parent* as a worker
    — that would silently downgrade every later process pool to serial.
    """
    global _IN_PROCESS_WORKER
    saved = _IN_PROCESS_WORKER
    try:
        return fn(*args)
    finally:
        _IN_PROCESS_WORKER = saved


def result_with_serial_fallback(future: Future, fn: Callable[..., Any], *args: Any) -> Any:
    """``future.result()``, re-running the task inline if the pool died.

    A worker killed by a signal or the OOM killer breaks the whole
    :class:`~concurrent.futures.ProcessPoolExecutor`: every outstanding
    future raises :class:`~concurrent.futures.process.BrokenProcessPool`
    even though the *work* is perfectly healthy.  Fan-out sites wrap their
    ``result()`` calls with this so one lost worker degrades a run to
    slower (the affected tasks re-run serially in the parent) instead of
    failed.  Genuine task exceptions propagate unchanged.
    """
    try:
        return future.result()
    except BrokenProcessPool:
        return run_task_inline(fn, *args)


def available_cpu_count() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` overstates the budget in cgroup-limited containers
    (it reports the host's cores); the scheduling affinity mask reflects
    ``cpuset`` quotas, so prefer it where the platform provides one.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux platforms
        affinity = 0
    return affinity or os.cpu_count() or 1


class SerialExecutor(Executor):
    """An :class:`~concurrent.futures.Executor` that runs work inline.

    ``submit`` executes the callable immediately in the calling thread and
    returns an already-completed future (exceptions are captured on the
    future, exactly like the pooled executors), so call sites need no
    serial-vs-pooled branching and failure propagation behaves identically
    across all three executor kinds.
    """

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as error:
            future.set_exception(error)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        pass


@dataclass(frozen=True)
class ExecutorFactory:
    """Builds the executor behind one parallel stage.

    Parameters
    ----------
    kind:
        ``"thread"``, ``"process"`` or ``"serial"``.
    max_workers:
        Worker cap; ``None`` means the CPUs available to this process
        (:func:`available_cpu_count`).
    """

    kind: str = "thread"
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {self.kind!r}; expected one of {EXECUTOR_KINDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    @property
    def effective_kind(self) -> str:
        """The kind after the in-worker downgrade (process -> serial)."""
        if self.kind == "process" and in_process_worker():
            return "serial"
        return self.kind

    def workers(self, upper: int) -> int:
        """Concurrency for a stage of ``upper`` independent tasks."""
        if self.effective_kind == "serial":
            return 1
        limit = self.max_workers or available_cpu_count()
        return max(1, min(limit, upper))

    def create(self, upper: int) -> Executor:
        """An executor (context manager) sized for ``upper`` tasks.

        A thread factory with one effective worker — or a single task —
        degenerates to the serial executor: same results, none of the pool
        bookkeeping.  A process factory always builds a real pool so the
        pickling boundary is exercised uniformly.
        """
        kind = self.effective_kind
        workers = self.workers(upper)
        if kind == "process":
            return ProcessPoolExecutor(
                max_workers=workers, initializer=mark_process_worker
            )
        if kind == "thread" and workers > 1 and upper > 1:
            return ThreadPoolExecutor(max_workers=workers)
        return SerialExecutor()
