"""Process/thread/serial execution layer shared by every parallel stage.

See :mod:`repro.parallel.executors` for the :class:`ExecutorFactory` knob and
:mod:`repro.parallel.work` for the picklable work descriptors process workers
consume.
"""

from repro.parallel.executors import (
    EXECUTOR_KINDS,
    ExecutorFactory,
    SerialExecutor,
    available_cpu_count,
    in_process_worker,
    mark_process_worker,
    result_with_serial_fallback,
    run_task_inline,
)
from repro.parallel.work import (
    ChainOutcomePayload,
    ChainTask,
    PricingChunkTask,
    ServePointTask,
    SweepPointTask,
    cache_stats,
    new_token,
    run_chain_task,
    run_pricing_chunk,
    run_serve_point,
    run_sweep_point,
)

__all__ = [
    "EXECUTOR_KINDS",
    "ExecutorFactory",
    "SerialExecutor",
    "available_cpu_count",
    "in_process_worker",
    "mark_process_worker",
    "result_with_serial_fallback",
    "run_task_inline",
    "ChainOutcomePayload",
    "ChainTask",
    "PricingChunkTask",
    "ServePointTask",
    "SweepPointTask",
    "cache_stats",
    "new_token",
    "run_chain_task",
    "run_pricing_chunk",
    "run_serve_point",
    "run_sweep_point",
]
