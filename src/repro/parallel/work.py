"""Picklable work descriptors for process-pool execution.

Process workers cannot share the parent's live solver state: compiled HiGHS
handles, :class:`~repro.lpsolver.highs_backend.MutableHighsModel` instances
and warm-start contexts are all process-local.  What *does* cross the
pickling boundary is plain data — :class:`~repro.core.problem.SitingProblem`
objects (numpy series and dataclasses), the compiler's per-site skeletons and
``_SkeletonTemplate`` slot data, :class:`~repro.scenarios.spec.ScenarioSpec`
dictionaries — so each fan-out site ships a small frozen *task* describing
the work and the worker rebuilds whatever solver machinery it needs, lazily,
with a per-process memo:

* :class:`PricingChunkTask` — one contiguous chunk of the filter-pricing /
  single-site sweep, carrying the pricing problem restricted to the chunk's
  locations.  The worker builds a fresh warm-start context per chunk, exactly
  like the thread path, so scores are bit-identical for any executor.
* :class:`ChainTask` — one annealing chain, carrying the search problem
  (restricted to the filtered candidates), the search settings and the shared
  start siting.  Chains of the same search share a per-process
  problem/compiler rebuild through ``token``; each chain owns a fresh
  evaluation memo so its reported hit stats are deterministic regardless of
  which worker runs it.
* :class:`SweepPointTask` — one experiment-runner sweep point as a spec
  dictionary.  Workers keep one serial :class:`ExperimentRunner` per parent
  runner (keyed by ``token``), so points landing on the same process share
  catalogue/profile/compiler caches just like the thread path does.
* :class:`ServePointTask` — one planning request from the ``repro serve``
  daemon.  Same worker-side machinery as :class:`SweepPointTask` (and the
  same ``token`` keying, so a daemon's workers stay warm across requests),
  plus a snapshot of the worker's warm-vs-cold cache counters in the result
  for the daemon's ``/metrics`` endpoint.

Results flowing back are equally plain: cost tuples, spec records, and a
:class:`ChainOutcomePayload` whose hit stats the parent merges into
:class:`~repro.core.heuristic.HeuristicSolution.stats`.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.parallel.executors import mark_process_worker

#: Upper bound on per-process memo entries (problems, compilers, runners);
#: old entries are evicted least-recently-used so long-lived workers serving
#: many distinct searches do not accumulate every problem they ever saw.
_CACHE_LIMIT = 8

_cache: "OrderedDict[Tuple, Any]" = OrderedDict()
_cache_lock = threading.Lock()

#: Warm-vs-cold accounting for the per-process memo.  Workers are separate
#: processes, so the parent cannot observe these directly; serve-style tasks
#: (:func:`run_serve_point`) snapshot them into their result payload.
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0

_token_counter = itertools.count()


def new_token(label: str) -> str:
    """A token unique across parent processes and calls.

    Workers key their per-process rebuild memo by it, so two different
    parent-side objects (even at the same memory address, across parent
    restarts) never alias one worker-side rebuild.
    """
    return f"{label}-{os.getpid()}-{next(_token_counter)}"


def _cached(key: Tuple, build: Callable[[], Any]) -> Any:
    """Per-process memo: build once per key, evict least-recently-used."""
    global _cache_hits, _cache_misses, _cache_evictions
    with _cache_lock:
        value = _cache.get(key)
        if value is not None:
            _cache_hits += 1
            _cache.move_to_end(key)
            return value
        _cache_misses += 1
    value = build()
    with _cache_lock:
        value = _cache.setdefault(key, value)
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_LIMIT:
            _cache.popitem(last=False)
            _cache_evictions += 1
    return value


def cache_stats() -> Dict[str, int]:
    """Cumulative per-process memo counters (hits, cold builds, evictions)."""
    with _cache_lock:
        return {
            "memo_hits": _cache_hits,
            "memo_misses": _cache_misses,
            "memo_evictions": _cache_evictions,
            "memo_entries": len(_cache),
        }


def reset_worker_caches() -> None:
    """Drop the per-process memo (test hook; workers never need to call it)."""
    global _cache_hits, _cache_misses, _cache_evictions
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0
        _cache_evictions = 0


# -- filter pricing / single-site sweeps --------------------------------------


@dataclass(frozen=True)
class PricingChunkTask:
    """One chunk of structurally-identical single-site pricing LPs.

    ``problem`` is the *pricing* problem restricted to the chunk's locations;
    ``sitings`` lists ``(location, size_class)`` in chunk order.  The chunk
    split is decided by the parent (a fixed chunk count, independent of the
    worker count), so basis carry-over sequences — and therefore scores, bit
    for bit — match the thread and serial paths.
    """

    problem: Any  # SitingProblem
    sitings: Tuple[Tuple[str, str], ...]
    options: Any  # SolverOptions


def run_pricing_chunk(task: PricingChunkTask) -> List[Tuple[str, float, bool]]:
    """Price one chunk; returns ``(location, monthly_cost, feasible)`` rows."""
    mark_process_worker()
    from repro.core.provisioning import ProvisioningCompiler, solve_provisioning
    from repro.lpsolver.highs_backend import AVAILABLE as _HIGHS_DIRECT_AVAILABLE
    from repro.lpsolver.highs_backend import HighsSolveContext

    compiler = ProvisioningCompiler(task.problem)
    context = HighsSolveContext() if _HIGHS_DIRECT_AVAILABLE else None
    rows: List[Tuple[str, float, bool]] = []
    for name, size_class in task.sitings:
        result = solve_provisioning(
            task.problem,
            {name: size_class},
            options=task.options,
            enforce_spread=False,
            compiler=compiler,
            solver_context=context,
        )
        rows.append((name, result.monthly_cost, result.feasible))
    return rows


@dataclass(frozen=True)
class BatchPricingTask:
    """One chunk of single-site pricing LPs solved as a block-diagonal stack.

    The two-stage filter's exact-pricing stage: the chunk's LPs are stacked
    into one mega-LP (:func:`~repro.core.screening.price_batch`) so one HiGHS
    solve prices the whole chunk; ``batch=False`` selects the per-site
    warm-started path instead (same rows, same order).  As with
    :class:`PricingChunkTask`, the parent decides the chunk split from the
    sweep size alone, so results are bit-identical across executors.
    """

    problem: Any  # SitingProblem, restricted to the chunk's locations
    sitings: Tuple[Tuple[str, str], ...]
    options: Any  # SolverOptions
    batch: bool = True


def run_batch_pricing_chunk(task: BatchPricingTask) -> List[Tuple[str, float, bool]]:
    """Price one chunk (stacked or per-site); returns ``(location, cost, feasible)``."""
    mark_process_worker()
    from repro.core.provisioning import ProvisioningCompiler
    from repro.core.screening import price_batch, price_per_site

    compiler = ProvisioningCompiler(task.problem)
    price = price_batch if task.batch else price_per_site
    return price(task.problem, task.sitings, task.options, compiler=compiler)


# -- annealing chains ----------------------------------------------------------


@dataclass(frozen=True)
class ChainTask:
    """One annealing chain of a heuristic search.

    All chains of one search share ``token`` (and ship identical ``problem``
    payloads); the first chain to land on a process rebuilds the problem and
    its :class:`~repro.core.provisioning.ProvisioningCompiler` — optionally
    seeded with the parent's compiled skeletons/templates — and later chains
    on that process reuse them.  Each chain still owns a fresh evaluation
    memo, so its outcome *and its hit stats* depend only on the chain index,
    never on worker scheduling.
    """

    token: str
    problem: Any  # SitingProblem, restricted to the filtered candidates
    settings: Any  # SearchSettings (executor normalised to "serial")
    options: Any  # SolverOptions
    chain: int
    start_siting: Tuple[Tuple[str, str], ...]
    candidates: Tuple[str, ...]
    compiler_state: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class ChainOutcomePayload:
    """Picklable outcome of one chain (no live LP results cross back).

    ``requests`` is the ordered sequence of canonical siting keys the chain
    asked its evaluation memo for (start evaluation excluded).  The parent
    replays the sequences of all chains against shared-memo accounting, so
    the reported ``evaluations``/``cache_hits`` — and therefore the sweep
    records built from them — are bit-identical to the serial and thread
    paths, where the chains genuinely share one memo.
    """

    chain: int
    best_siting: Tuple[Tuple[str, str], ...]
    best_cost: float
    feasible: bool
    message: str
    improvements: Tuple[Tuple[int, float], ...]
    requests: Tuple[Tuple[Tuple[str, str], ...], ...]


def _chain_context(task: ChainTask) -> Tuple[Any, Any]:
    from repro.core.provisioning import ProvisioningCompiler

    def build() -> Tuple[Any, Any]:
        compiler = ProvisioningCompiler(task.problem)
        if task.compiler_state is not None:
            compiler.seed_shared_state(task.compiler_state)
        return task.problem, compiler

    return _cached(("chain", task.token), build)


def run_chain_task(task: ChainTask) -> ChainOutcomePayload:
    """Run one annealing chain against a per-process rebuilt problem."""
    mark_process_worker()
    from repro.core.heuristic import HeuristicSolver

    problem, compiler = _chain_context(task)
    solver = HeuristicSolver(
        problem, settings=task.settings, solver_options=task.options, compiler=compiler
    )
    start_siting = dict(task.start_siting)
    start_result = solver.evaluate(start_siting)
    # Log memo requests from here on: the start evaluation mirrors the
    # parent's (already counted there), everything after is the chain's own.
    request_log: List[Tuple[Tuple[str, str], ...]] = []
    solver._request_log = request_log
    outcome = solver._run_chain(
        task.chain, start_siting, start_result, list(task.candidates)
    )
    return ChainOutcomePayload(
        chain=outcome.chain,
        best_siting=tuple(sorted(outcome.best_siting.items())),
        best_cost=outcome.best_result.monthly_cost,
        feasible=outcome.best_result.feasible,
        message=outcome.best_result.message,
        improvements=tuple(outcome.improvements),
        requests=tuple(request_log),
    )


# -- experiment-runner sweep points --------------------------------------------


@dataclass(frozen=True)
class SweepPointTask:
    """One sweep point: a spec dictionary plus the runner configuration.

    The worker keeps one serial :class:`~repro.scenarios.runner.ExperimentRunner`
    per ``token`` (one per parent runner), so its catalogue/profile/compiler
    caches persist across the points a worker serves; the runner shares the
    parent's on-disk artifact cache directory, whose writes are atomic.
    """

    token: str
    spec: Dict[str, Any]
    cache_dir: Optional[str]
    base_params: Any  # FrameworkParameters
    solver_options: Any  # SolverOptions


def _runner_for(
    token: str, cache_dir: Optional[str], base_params: Any, solver_options: Any
) -> Any:
    """The per-process serial runner for ``token`` (shared sweep/serve memo)."""
    from repro.scenarios.runner import ExperimentRunner

    def build() -> Any:
        return ExperimentRunner(
            cache_dir=cache_dir,
            workers=1,
            executor="serial",
            base_params=base_params,
            solver_options=solver_options,
        )

    return _cached(("runner", token), build)


def run_sweep_point(task: SweepPointTask) -> Tuple[Dict[str, Any], bool]:
    """Evaluate one sweep point; returns ``(record, from_cache)``."""
    mark_process_worker()
    from repro.scenarios.spec import ScenarioSpec

    runner = _runner_for(task.token, task.cache_dir, task.base_params, task.solver_options)
    point = runner.run_point(ScenarioSpec.from_dict(task.spec))
    return point.record, point.from_cache


# -- serve-daemon planning requests --------------------------------------------


@dataclass(frozen=True)
class ServePointTask:
    """One planning request from the serve daemon, as a spec dictionary.

    Worker-side this is :class:`SweepPointTask` — the same per-process serial
    :class:`~repro.scenarios.runner.ExperimentRunner` keyed by ``token`` keeps
    catalogues, compiled skeletons and the artifact cache warm across the
    requests a worker serves — but the result additionally carries the
    worker's cumulative warm-vs-cold cache counters, because the daemon's
    ``/metrics`` endpoint cannot observe a child process's in-memory caches
    any other way.
    """

    token: str
    spec: Dict[str, Any]
    cache_dir: Optional[str]
    base_params: Any  # FrameworkParameters
    solver_options: Any  # SolverOptions


def run_serve_point(task: ServePointTask) -> Tuple[Dict[str, Any], bool, Dict[str, Any]]:
    """Evaluate one serve request; returns ``(record, from_cache, worker_stats)``.

    ``worker_stats`` is cumulative for this worker process; the parent keys
    it by ``pid`` and keeps only the latest snapshot per worker, so summing
    across pids never double-counts.
    """
    mark_process_worker()
    from repro.scenarios.spec import ScenarioSpec

    runner = _runner_for(task.token, task.cache_dir, task.base_params, task.solver_options)
    point = runner.run_point(ScenarioSpec.from_dict(task.spec))
    stats: Dict[str, Any] = {
        "pid": os.getpid(),
        "work_memo": cache_stats(),
        "runner": runner.cache_stats(),
    }
    return point.record, point.from_cache, stats
