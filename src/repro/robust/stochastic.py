"""Scenario-based stochastic provisioning LP and ensemble evaluation.

The deterministic provisioning LP decides sizing *and* an operating year for
one trace.  The stochastic variant keeps one set of sizing columns per site
(capacity, solar, wind, battery — the first-stage decision) and replicates
every site's per-epoch operating block once per ensemble draw (the
second-stage recourse), weighting each draw's operating cost by its
probability.  Per draw, a per-epoch unserved-demand slack prices capacity
shortfalls at an SLA multiple of the dearest brown energy instead of making
off-nominal years infeasible — the planning-time analogue of the operator's
unserved-demand column.

The builder stitches the exact per-site skeletons the deterministic
compiler caches (:meth:`~repro.core.provisioning.ProvisioningCompiler.
site_skeleton`), remapping site-local columns: sizing columns ``0..3`` map
to the shared block, epoch columns to the draw's replica.  Solving the same
builder with a single draw — optionally with the sizing clamped to a given
plan — yields the SAA evaluation path and the differential oracle: with
sizing fixed, draws decouple, so the joint objective must equal the
probability-weighted sum of single-draw solves.

The same block machinery carries the N-1 contingency LP
(:mod:`repro.robust.contingency`): a "draw" may represent a single-site
outage instead of an off-nominal year, in which case ``blocked_sites``
forces the faulted site's entire epoch block to zero and
``unserved_energy_budget`` caps that draw's unserved energy (kWh over the
year) instead of merely pricing it.  ``build_ensemble_row_form`` exposes the
assembled row form without solving so contingency evaluation can stack many
fixed-sizing blocks into one mega-LP via
:func:`repro.lpsolver.batch.stack_block_diagonal`.

All robust LPs relax the capacity-spread constraint (``enforce_spread`` in
the deterministic path): a spread floor that scales with perturbed demand
would manufacture infeasibility and negative regret artifacts that say
nothing about siting robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core.problem import GreenEnforcement, SitingProblem
from repro.core.provisioning import ProvisioningCompiler
from repro.lpsolver import SolverOptions, highs_backend
from repro.lpsolver.model import RowFormLP
from repro.robust.ensemble import EnsembleConfig, cvar, perturbed_problem

#: Site-local index ranges: columns 0..3 are sizing, the rest per-epoch.
_NUM_SIZING = 4
#: The brown-energy family is the third per-epoch family of the site layout
#: (compute, migrate, brown, ...); its objective coefficients anchor the
#: unserved-recourse price to the cost model's scaling.
_BROWN_FAMILY = 2


@dataclass
class StochasticSolution:
    """Outcome of one (possibly single-draw) stochastic provisioning solve."""

    objective: float                    #: probability-weighted expected cost
    sizing: Dict[str, Dict[str, float]]  #: per-site first-stage decision
    per_draw_costs: np.ndarray          #: unweighted total cost of each draw
    per_draw_unserved_cost: np.ndarray  #: unserved-recourse share of each draw
    per_draw_unserved_energy: np.ndarray  #: unserved kWh over the year, per draw
    num_cols: int
    num_rows: int
    iterations: int
    solver: str

    @property
    def draws(self) -> int:
        return len(self.per_draw_costs)


@dataclass
class EnsembleLayout:
    """Column/row layout of one assembled ensemble row form.

    Carries everything :func:`extract_ensemble_solution` needs to read a
    solution vector back into a :class:`StochasticSolution` — which makes a
    block solved inside a larger stacked LP (``stack_block_diagonal``)
    readable from its column slice alone.
    """

    names: Tuple[str, ...]
    num_draws: int
    num_epochs: int
    epoch_width: int          #: per-(draw, site) epoch-column count
    epoch_base: int
    unserved_base: int
    num_cols: int
    num_rows: int
    fixed_cost: float
    site_costs: List[List[np.ndarray]]   #: [draw][site] dense local objective
    unserved_cost: np.ndarray            #: per-epoch unserved price (unweighted)
    weights_hours: np.ndarray            #: hours of the year per epoch

    @property
    def num_sites(self) -> int:
        return len(self.names)


def _site_cost_vector(skeleton) -> np.ndarray:
    """Dense site-local objective coefficients of one skeleton."""
    cost = np.zeros(len(skeleton.lower))
    cost[skeleton.objective_cols] = skeleton.objective_vals
    return cost


def _unserved_cost(site_costs: Sequence[np.ndarray], num_epochs: int, penalty_x: float) -> np.ndarray:
    """Per-epoch unserved-demand price: penalty_x times the dearest brown coeff."""
    start = _NUM_SIZING + _BROWN_FAMILY * num_epochs
    brown = np.stack([cost[start : start + num_epochs] for cost in site_costs])
    per_epoch = penalty_x * brown.max(axis=0)
    if not np.any(per_epoch > 0):
        per_epoch = np.full(num_epochs, penalty_x)
    return per_epoch


def _solve_row_form(row_form: RowFormLP, options: SolverOptions):
    """Solve a row form, raising ``SolverStatusError`` on non-optimal."""
    if highs_backend.AVAILABLE:
        return highs_backend.solve_row_form(row_form, options, check=True)
    from repro.operator.dispatch import _linprog_row_form

    return _linprog_row_form(row_form, options).raise_for_status()


def build_ensemble_row_form(
    compilers: Sequence[ProvisioningCompiler],
    siting: Mapping[str, str],
    weights: Optional[Sequence[float]] = None,
    sizing_bounds: Optional[Mapping[str, Sequence[float]]] = None,
    unserved_penalty_x: float = 10.0,
    blocked_sites: Optional[Sequence[Optional[int]]] = None,
    unserved_energy_budget: Optional[Sequence[Optional[float]]] = None,
    normalize_weights: bool = True,
) -> Tuple[RowFormLP, EnsembleLayout]:
    """Assemble the (stochastic or contingency) ensemble LP without solving.

    ``sizing_bounds`` clamps the shared sizing columns to a given plan
    (``{site: (capacity_kw, solar_kw, wind_kw, battery_kwh)}``), turning the
    solve into a fixed-first-stage evaluation.

    ``blocked_sites`` gives, per draw, the index (into sorted siting order)
    of a site whose entire epoch block is forced to zero — an N-1 outage of
    that site in that draw — or ``None`` for an unfaulted draw.  Every
    epoch-column lower bound is zero, so zeroing the block is always
    feasible and also keeps a dark site from earning export credits.

    ``unserved_energy_budget`` gives, per draw, an upper bound on unserved
    energy ``sum_t hours_t * unserved_t`` (kWh over the year), or ``None``
    to leave that draw's unserved merely priced.

    ``normalize_weights=False`` keeps the given draw weights as-is, which
    the contingency LP needs: its nominal draw must carry weight exactly 1.0
    against the once-paid sizing cost, with contingency recourse added at a
    small extra weight rather than re-normalized away.
    """
    if not compilers:
        raise ValueError("the stochastic LP needs at least one draw")
    if not siting:
        raise ValueError("the stochastic LP needs at least one sited location")
    D = len(compilers)
    if weights is None:
        w = np.full(D, 1.0 / D)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (D,) or np.any(w <= 0):
            raise ValueError("draw weights must be positive, one per draw")
        if normalize_weights:
            w = w / w.sum()
    if blocked_sites is not None and len(blocked_sites) != D:
        raise ValueError("blocked_sites needs one entry (or None) per draw")
    if unserved_energy_budget is not None and len(unserved_energy_budget) != D:
        raise ValueError("unserved_energy_budget needs one entry (or None) per draw")

    names = list(siting)
    S = len(names)
    base_problem = compilers[0].problem
    T = base_problem.num_epochs
    weights_hours = np.asarray(base_problem.epochs.epoch_weights_hours(), dtype=float)
    has_green = base_problem.params.min_green_fraction > 0
    per_epoch = base_problem.green_enforcement is GreenEnforcement.PER_EPOCH
    green_count = (T if per_epoch else 1) if has_green else 0

    skeletons = [
        [compiler.site_skeleton(name, size_class) for name, size_class in siting.items()]
        for compiler in compilers
    ]
    nvars_site = len(skeletons[0][0].lower)
    E = nvars_site - _NUM_SIZING
    epoch_base = _NUM_SIZING * S          # first epoch column
    unserved_base = epoch_base + D * S * E  # first unserved column
    ncols = unserved_base + D * T
    site_costs = [[_site_cost_vector(sk) for sk in draw] for draw in skeletons]
    unserved_cost = _unserved_cost(site_costs[0], T, unserved_penalty_x)

    def remap(local_cols: np.ndarray, d: int, s: int) -> np.ndarray:
        sizing = local_cols < _NUM_SIZING
        return np.where(
            sizing,
            _NUM_SIZING * s + local_cols,
            epoch_base + (d * S + s) * E + (local_cols - _NUM_SIZING),
        )

    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    vals_parts: List[np.ndarray] = []
    rhs_parts: List[np.ndarray] = []
    le_parts: List[np.ndarray] = []
    ge_parts: List[np.ndarray] = []
    t_idx = np.arange(T, dtype=np.int64)
    compute_local = _NUM_SIZING + t_idx  # compute is the first per-epoch family
    row_offset = 0
    for d in range(D):
        for s, skeleton in enumerate(skeletons[d]):
            rows_parts.append(skeleton.tri_rows + row_offset)
            cols_parts.append(remap(skeleton.tri_cols, d, s))
            vals_parts.append(skeleton.tri_vals)
            rhs_parts.append(skeleton.rhs)
            le_parts.append(skeleton.le_mask)
            ge_parts.append(skeleton.ge_mask)
            row_offset += skeleton.num_rows
        # total capacity per epoch: sum(compute) + unserved >= demand_d
        for s in range(S):
            rows_parts.append(t_idx + row_offset)
            cols_parts.append(remap(compute_local, d, s))
            vals_parts.append(np.ones(T))
        rows_parts.append(t_idx + row_offset)
        cols_parts.append(unserved_base + d * T + t_idx)
        vals_parts.append(np.ones(T))
        rhs_parts.append(np.full(T, compilers[d].problem.params.total_capacity_kw))
        le_parts.append(np.zeros(T, dtype=bool))
        ge_parts.append(np.ones(T, dtype=bool))
        row_offset += T
        if has_green:
            for s, skeleton in enumerate(skeletons[d]):
                rows_parts.append(skeleton.green_rows + row_offset)
                cols_parts.append(remap(skeleton.green_cols, d, s))
                vals_parts.append(skeleton.green_vals)
            rhs_parts.append(np.zeros(green_count))
            le_parts.append(np.zeros(green_count, dtype=bool))
            ge_parts.append(np.ones(green_count, dtype=bool))
            row_offset += green_count
    if unserved_energy_budget is not None:
        # One LE row per budgeted draw: sum_t hours_t * unserved_{d,t} <= B_d.
        for d, budget in enumerate(unserved_energy_budget):
            if budget is None:
                continue
            rows_parts.append(np.full(T, row_offset, dtype=np.int64))
            cols_parts.append(unserved_base + d * T + t_idx)
            vals_parts.append(weights_hours.copy())
            rhs_parts.append(np.array([float(budget)]))
            le_parts.append(np.ones(1, dtype=bool))
            ge_parts.append(np.zeros(1, dtype=bool))
            row_offset += 1
    nrows = row_offset

    matrix = sparse.coo_matrix(
        (
            np.concatenate(vals_parts),
            (np.concatenate(rows_parts), np.concatenate(cols_parts)),
        ),
        shape=(nrows, ncols),
    ).tocsc()
    matrix.sort_indices()
    rhs = np.concatenate(rhs_parts)
    le_mask = np.concatenate(le_parts)
    ge_mask = np.concatenate(ge_parts)

    lower = np.zeros(ncols)
    upper = np.full(ncols, np.inf)
    cost = np.zeros(ncols)
    fixed_cost = 0.0
    for s, name in enumerate(names):
        skeleton0 = skeletons[0][s]
        sizing_slice = slice(_NUM_SIZING * s, _NUM_SIZING * (s + 1))
        if sizing_bounds is not None:
            fixed = np.asarray(sizing_bounds[name], dtype=float)
            if fixed.shape != (_NUM_SIZING,):
                raise ValueError(f"sizing bounds for {name!r} need 4 values")
            lower[sizing_slice] = fixed
            upper[sizing_slice] = fixed
        else:
            lower[sizing_slice] = skeleton0.lower[:_NUM_SIZING]
            upper[sizing_slice] = skeleton0.upper[:_NUM_SIZING]
        # Sizing is a first-stage cost, paid once (identical across draws —
        # only weather/demand are perturbed, never prices).
        cost[sizing_slice] = site_costs[0][s][:_NUM_SIZING]
        fixed_cost += skeletons[0][s].fixed_cost
        for d in range(D):
            start = epoch_base + (d * S + s) * E
            epoch_slice = slice(start, start + E)
            lower[epoch_slice] = skeletons[d][s].lower[_NUM_SIZING:]
            upper[epoch_slice] = skeletons[d][s].upper[_NUM_SIZING:]
            cost[epoch_slice] = w[d] * site_costs[d][s][_NUM_SIZING:]
    if blocked_sites is not None:
        # A faulted site's whole epoch block goes dark: no compute, no brown
        # burn, no battery cycling, no export revenue.  Epoch lower bounds
        # are all zero, so the zero block is always feasible.
        for d, s_blocked in enumerate(blocked_sites):
            if s_blocked is None:
                continue
            if not 0 <= int(s_blocked) < S:
                raise ValueError(f"blocked site index {s_blocked!r} out of range")
            start = epoch_base + (d * S + int(s_blocked)) * E
            upper[start : start + E] = 0.0
    for d in range(D):
        u_slice = slice(unserved_base + d * T, unserved_base + (d + 1) * T)
        cost[u_slice] = w[d] * unserved_cost

    row_form = RowFormLP(
        cost=cost,
        a_indptr=matrix.indptr,
        a_indices=matrix.indices,
        a_data=matrix.data,
        shape=(nrows, ncols),
        row_lower=np.where(le_mask, -np.inf, rhs),
        row_upper=np.where(ge_mask, np.inf, rhs),
        lower=lower,
        upper=upper,
        integrality=np.zeros(ncols, dtype=np.int64),
        maximise=False,
        objective_constant=fixed_cost,
    )
    layout = EnsembleLayout(
        names=tuple(names),
        num_draws=D,
        num_epochs=T,
        epoch_width=E,
        epoch_base=epoch_base,
        unserved_base=unserved_base,
        num_cols=ncols,
        num_rows=nrows,
        fixed_cost=fixed_cost,
        site_costs=site_costs,
        unserved_cost=unserved_cost,
        weights_hours=weights_hours,
    )
    return row_form, layout


def extract_ensemble_solution(
    x: np.ndarray,
    layout: EnsembleLayout,
    objective: float,
    iterations: int = 0,
    solver: str = "",
) -> StochasticSolution:
    """Read a solved column vector back through an :class:`EnsembleLayout`."""
    S, D, T, E = layout.num_sites, layout.num_draws, layout.num_epochs, layout.epoch_width
    sizing: Dict[str, Dict[str, float]] = {}
    sizing_cost = 0.0
    for s, name in enumerate(layout.names):
        block = x[_NUM_SIZING * s : _NUM_SIZING * (s + 1)]
        sizing[name] = {
            "capacity_kw": float(block[0]),
            "solar_kw": float(block[1]),
            "wind_kw": float(block[2]),
            "battery_kwh": float(block[3]),
        }
        sizing_cost += float(np.dot(layout.site_costs[0][s][:_NUM_SIZING], block))
    per_draw = np.empty(D)
    per_draw_unserved = np.empty(D)
    per_draw_energy = np.empty(D)
    for d in range(D):
        epoch_cost = 0.0
        for s in range(S):
            start = layout.epoch_base + (d * S + s) * E
            epoch_cost += float(
                np.dot(layout.site_costs[d][s][_NUM_SIZING:], x[start : start + E])
            )
        u_slice = slice(layout.unserved_base + d * T, layout.unserved_base + (d + 1) * T)
        unserved_d = float(np.dot(layout.unserved_cost, x[u_slice]))
        per_draw_unserved[d] = unserved_d
        per_draw_energy[d] = float(np.dot(layout.weights_hours, x[u_slice]))
        per_draw[d] = layout.fixed_cost + sizing_cost + epoch_cost + unserved_d

    return StochasticSolution(
        objective=float(objective),
        sizing=sizing,
        per_draw_costs=per_draw,
        per_draw_unserved_cost=per_draw_unserved,
        per_draw_unserved_energy=per_draw_energy,
        num_cols=layout.num_cols,
        num_rows=layout.num_rows,
        iterations=int(iterations),
        solver=solver,
    )


def solve_ensemble_lp(
    compilers: Sequence[ProvisioningCompiler],
    siting: Mapping[str, str],
    options: Optional[SolverOptions] = None,
    weights: Optional[Sequence[float]] = None,
    sizing_bounds: Optional[Mapping[str, Sequence[float]]] = None,
    unserved_penalty_x: float = 10.0,
    blocked_sites: Optional[Sequence[Optional[int]]] = None,
    unserved_energy_budget: Optional[Sequence[Optional[float]]] = None,
    normalize_weights: bool = True,
) -> StochasticSolution:
    """Build and solve the stochastic LP over one compiler per draw.

    See :func:`build_ensemble_row_form` for the meaning of every knob; this
    wrapper assembles, solves (HiGHS when available, scipy otherwise) and
    reads the solution back.
    """
    options = options or SolverOptions()
    row_form, layout = build_ensemble_row_form(
        compilers,
        siting,
        weights=weights,
        sizing_bounds=sizing_bounds,
        unserved_penalty_x=unserved_penalty_x,
        blocked_sites=blocked_sites,
        unserved_energy_budget=unserved_energy_budget,
        normalize_weights=normalize_weights,
    )
    result = _solve_row_form(row_form, options)
    return extract_ensemble_solution(
        result.x,
        layout,
        objective=float(result.objective),
        iterations=int(result.iterations),
        solver=result.solver,
    )


def _sizing_tuples(sizing: Mapping[str, Mapping[str, float]]) -> Dict[str, Tuple[float, ...]]:
    return {
        name: (
            float(block["capacity_kw"]),
            float(block["solar_kw"]),
            float(block["wind_kw"]),
            float(block["battery_kwh"]),
        )
        for name, block in sizing.items()
    }


def plan_siting_and_sizing(plan) -> Tuple[Dict[str, str], Dict[str, Tuple[float, ...]]]:
    """Siting and sizing of a solved network plan, in sorted site order."""
    siting: Dict[str, str] = {}
    sizing: Dict[str, Tuple[float, ...]] = {}
    for dc in sorted(plan.datacenters, key=lambda d: d.name):
        siting[dc.name] = dc.size_class
        sizing[dc.name] = (
            float(dc.capacity_kw),
            float(dc.solar_kw),
            float(dc.wind_kw),
            float(dc.battery_kwh),
        )
    return siting, sizing


def ensemble_report(
    problem: SitingProblem,
    siting: Mapping[str, str],
    sizing: Mapping[str, Sequence[float]],
    config: EnsembleConfig,
    options: Optional[SolverOptions] = None,
) -> Dict[str, object]:
    """Evaluate a deterministic plan against an ensemble of off-nominal years.

    Per draw the plan's sizing is re-priced on the perturbed year (fixed
    first stage, free recourse) and compared with that year's free-sizing
    optimum; the gap is the plan's regret on that year.  In ``stochastic``
    mode the joint scenario LP is solved as well, giving the sizing a
    clairvoyant-of-the-distribution planner would pick and the expected cost
    it achieves.  Returns a JSON-ready record.
    """
    options = options or SolverOptions()
    compilers = [
        ProvisioningCompiler(perturbed_problem(problem, config, draw))
        for draw in range(config.draws)
    ]
    plan_costs = np.empty(config.draws)
    plan_unserved = np.empty(config.draws)
    optimum_costs = np.empty(config.draws)
    for d, compiler in enumerate(compilers):
        fixed = solve_ensemble_lp(
            [compiler],
            siting,
            options=options,
            sizing_bounds=sizing,
            unserved_penalty_x=config.unserved_penalty_x,
        )
        free = solve_ensemble_lp(
            [compiler],
            siting,
            options=options,
            unserved_penalty_x=config.unserved_penalty_x,
        )
        plan_costs[d] = fixed.per_draw_costs[0]
        plan_unserved[d] = fixed.per_draw_unserved_cost[0]
        optimum_costs[d] = free.per_draw_costs[0]
    regrets = plan_costs - optimum_costs

    report: Dict[str, object] = {
        "draws": int(config.draws),
        "mode": config.mode,
        "seed": int(config.seed),
        "alpha": float(config.alpha),
        "weather_noise": float(config.weather_noise),
        "demand_noise": float(config.demand_noise),
        "expected_cost": float(plan_costs.mean()),
        "cvar_cost": cvar(plan_costs, config.alpha),
        "regret_mean": float(regrets.mean()),
        "regret_max": float(regrets.max()),
        "regret_mean_pct": float(100.0 * (regrets / optimum_costs).mean()),
        "draws_with_unserved": int(np.count_nonzero(plan_unserved > 1e-6)),
        "per_draw_cost": [float(c) for c in plan_costs],
        "per_draw_optimum": [float(c) for c in optimum_costs],
        "per_draw_regret": [float(c) for c in regrets],
    }
    if config.mode == "stochastic":
        joint = solve_ensemble_lp(
            compilers,
            siting,
            options=options,
            unserved_penalty_x=config.unserved_penalty_x,
        )
        expected_det = float(plan_costs.mean())
        report["stochastic"] = {
            "expected_cost": float(joint.objective),
            "cvar_cost": cvar(joint.per_draw_costs, config.alpha),
            "sizing": joint.sizing,
            "per_draw_cost": [float(c) for c in joint.per_draw_costs],
            "num_cols": int(joint.num_cols),
            "num_rows": int(joint.num_rows),
            "iterations": int(joint.iterations),
            "solver": joint.solver,
        }
        report["stochastic_expected_cost"] = float(joint.objective)
        report["stochastic_cvar_cost"] = report["stochastic"]["cvar_cost"]
        report["stochastic_saving_pct"] = (
            float(100.0 * (expected_det - joint.objective) / expected_det)
            if expected_det > 0
            else 0.0
        )
    return report
