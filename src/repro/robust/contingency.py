"""N-1 survivable provisioning: contingency LP, batched evaluation, report.

Power-systems planning sizes a grid so it survives the loss of any single
component (the *N-1 criterion*).  Applied to a green-datacenter federation:
one shared first-stage sizing must keep unserved demand within a
``survivability_epsilon`` energy budget under every single-site outage.

The LP reuses the joint-stochastic block machinery
(:func:`repro.robust.stochastic.build_ensemble_row_form`): ``S + 1``
"draws" over one unperturbed compiler — draw 0 is the nominal year at
weight 1.0, draw ``c`` (``c >= 1``) is the year with site ``c - 1`` dark
(its whole epoch block forced to zero via ``blocked_sites``) and its
unserved energy capped at ``epsilon * total_capacity_kw * hours_per_year``
via ``unserved_energy_budget``.  Contingency recourse enters the objective
at a small ``contingency_weight`` (unnormalized, so the nominal cost trade
against sizing is undistorted): the sizing pays for survivability through
the budget *constraints*, not through an expectation over outages.

Fixed-sizing evaluation of a plan against every contingency batches the
per-contingency row forms into one block-diagonal mega-LP via
:func:`repro.lpsolver.batch.stack_block_diagonal` — the same pricing trick
the two-stage filter uses — and is differential-tested against brute-force
per-contingency solves.

N-1 sizing can cross the small-datacenter class threshold that the siting
fixed for the deterministic plan; when the contingency LP is infeasible
under the plan's size classes it is retried once with every site upgraded
to ``large`` (``size_classes_upgraded`` flags this in the result).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.provisioning import ProvisioningCompiler
from repro.lpsolver import SolverOptions, SolverStatusError
from repro.lpsolver.batch import stack_block_diagonal
from repro.robust.stochastic import (
    _sizing_tuples,
    _solve_row_form,
    build_ensemble_row_form,
    extract_ensemble_solution,
    solve_ensemble_lp,
)

#: Unserved-energy slack below this fraction of the budget counts as zero
#: when deciding whether a contingency violates its epsilon bound.
_VIOLATION_REL_TOL = 1e-6


@dataclass(frozen=True)
class ContingencyConfig:
    """Declarative knobs of the N-1 survivability study (JSON scalars only)."""

    #: Per-contingency unserved-energy budget, as a fraction of the annual
    #: demand energy ``total_capacity_kw * hours_per_year``.
    survivability_epsilon: float = 0.05
    #: Objective weight of the summed contingency recourse (kept small: the
    #: budget rows, not the expectation, enforce survivability).
    contingency_weight: float = 1e-3
    #: Unserved-demand price multiple of the dearest brown coefficient.
    unserved_penalty_x: float = 10.0
    #: Replay-study outage window (used by the operator wire-through).
    outage_start_step: int = 6
    outage_duration_steps: int = 12

    def __post_init__(self) -> None:
        if not 0.0 < self.survivability_epsilon <= 1.0:
            raise ValueError("survivability_epsilon must be in (0, 1]")
        if self.contingency_weight <= 0:
            raise ValueError("contingency_weight must be positive")
        if self.unserved_penalty_x <= 0:
            raise ValueError("unserved_penalty_x must be positive")
        if self.outage_start_step < 0:
            raise ValueError("outage_start_step must be >= 0")
        if self.outage_duration_steps <= 0:
            raise ValueError("outage_duration_steps must be positive")


@dataclass
class ContingencySolution:
    """Outcome of one N-1 survivability solve."""

    sizing: Dict[str, Dict[str, float]]   #: shared first-stage decision
    objective: float                      #: weighted LP objective
    nominal_cost: float                   #: unweighted cost of the nominal year
    per_contingency_costs: np.ndarray     #: unweighted cost, site c dark
    per_contingency_unserved_kwh: np.ndarray  #: unserved energy, site c dark
    budget_unserved_kwh: float            #: epsilon budget in kWh/year
    site_names: Tuple[str, ...]
    num_cols: int
    num_rows: int
    iterations: int
    solver: str
    size_classes_upgraded: bool = False

    @property
    def worst_unserved_kwh(self) -> float:
        return float(self.per_contingency_unserved_kwh.max())


def _annual_budget_kwh(compiler: ProvisioningCompiler, epsilon: float) -> float:
    problem = compiler.problem
    hours = float(np.sum(problem.epochs.epoch_weights_hours()))
    return float(epsilon * problem.params.total_capacity_kw * hours)


def _upgraded(siting: Mapping[str, str]) -> Dict[str, str]:
    return {name: "large" for name in siting}


def solve_contingency_lp(
    compiler: ProvisioningCompiler,
    siting: Mapping[str, str],
    config: Optional[ContingencyConfig] = None,
    options: Optional[SolverOptions] = None,
    sizing_bounds: Optional[Mapping[str, Sequence[float]]] = None,
) -> ContingencySolution:
    """Size the sited federation so every single-site outage stays in budget.

    One joint LP: shared sizing columns, a nominal epoch block at weight
    1.0 plus one blocked epoch block per site, each with an unserved-energy
    budget row.  With ``sizing_bounds`` the first stage is clamped, which
    turns the solve into a feasibility check of a given plan.
    """
    config = config or ContingencyConfig()
    options = options or SolverOptions()
    names = list(siting)
    S = len(names)
    budget = _annual_budget_kwh(compiler, config.survivability_epsilon)
    kwargs = dict(
        options=options,
        weights=[1.0] + [config.contingency_weight / S] * S,
        normalize_weights=False,
        sizing_bounds=sizing_bounds,
        unserved_penalty_x=config.unserved_penalty_x,
        blocked_sites=[None] + list(range(S)),
        unserved_energy_budget=[None] + [budget] * S,
    )
    compilers = [compiler] * (S + 1)
    upgraded = False
    try:
        joint = solve_ensemble_lp(compilers, siting, **kwargs)
    except SolverStatusError:
        if all(size_class != "small" for size_class in siting.values()):
            raise
        # The plan's small-class threshold caps a site the N-1 sizing must
        # grow; retry with every site priced as a large datacenter.
        siting = _upgraded(siting)
        joint = solve_ensemble_lp(compilers, siting, **kwargs)
        upgraded = True
    return ContingencySolution(
        sizing=joint.sizing,
        objective=joint.objective,
        nominal_cost=float(joint.per_draw_costs[0]),
        per_contingency_costs=joint.per_draw_costs[1:].copy(),
        per_contingency_unserved_kwh=joint.per_draw_unserved_energy[1:].copy(),
        budget_unserved_kwh=budget,
        site_names=tuple(names),
        num_cols=joint.num_cols,
        num_rows=joint.num_rows,
        iterations=joint.iterations,
        solver=joint.solver,
        size_classes_upgraded=upgraded,
    )


def evaluate_contingencies(
    compiler: ProvisioningCompiler,
    siting: Mapping[str, str],
    sizing: Mapping[str, Sequence[float]],
    options: Optional[SolverOptions] = None,
    unserved_penalty_x: float = 10.0,
    batched: bool = True,
) -> Dict[str, np.ndarray]:
    """Re-price a fixed sizing under the nominal year and every N-1 outage.

    No budget rows here — a deterministic plan may well violate epsilon,
    and the point is to *measure* by how much.  Returns arrays of length
    ``S + 1`` (index 0 nominal, index ``c`` with site ``c - 1`` dark):
    ``costs`` (unserved priced in) and ``unserved_kwh``.

    ``batched=True`` stacks the independent fixed-sizing blocks into one
    block-diagonal LP; ``batched=False`` is the brute-force differential
    oracle, one solve per contingency.
    """
    options = options or SolverOptions()
    S = len(siting)
    cases: List[Optional[int]] = [None] + list(range(S))
    if not batched:
        costs = np.empty(S + 1)
        unserved = np.empty(S + 1)
        for i, case in enumerate(cases):
            single = solve_ensemble_lp(
                [compiler],
                siting,
                options=options,
                sizing_bounds=sizing,
                unserved_penalty_x=unserved_penalty_x,
                blocked_sites=[case],
            )
            costs[i] = single.per_draw_costs[0]
            unserved[i] = single.per_draw_unserved_energy[0]
        return {"costs": costs, "unserved_kwh": unserved}

    blocks = []
    layouts = []
    for case in cases:
        row_form, layout = build_ensemble_row_form(
            [compiler],
            siting,
            sizing_bounds=sizing,
            unserved_penalty_x=unserved_penalty_x,
            blocked_sites=[case],
        )
        blocks.append(row_form)
        layouts.append(layout)
    stacked, col_offsets, _ = stack_block_diagonal(blocks)
    result = _solve_row_form(stacked, options)
    costs = np.empty(S + 1)
    unserved = np.empty(S + 1)
    for i, (block, layout) in enumerate(zip(blocks, layouts)):
        x = result.x[col_offsets[i] : col_offsets[i + 1]]
        objective = float(np.dot(block.cost, x)) + block.objective_constant
        sol = extract_ensemble_solution(x, layout, objective=objective, solver=result.solver)
        costs[i] = sol.per_draw_costs[0]
        unserved[i] = sol.per_draw_unserved_energy[0]
    return {"costs": costs, "unserved_kwh": unserved}


def contingency_report(
    compiler: ProvisioningCompiler,
    siting: Mapping[str, str],
    det_sizing: Mapping[str, Sequence[float]],
    config: Optional[ContingencyConfig] = None,
    options: Optional[SolverOptions] = None,
) -> Dict[str, object]:
    """Compare a deterministic sizing against the N-1 survivable sizing.

    Solves the joint contingency LP for the survivable sizing, then
    re-prices both sizings under every single-site outage (batched
    block-diagonal evaluation, no budget) to report worst-case contingency
    cost, a per-site criticality ranking and unserved-vs-epsilon margins.
    JSON-ready.
    """
    config = config or ContingencyConfig()
    options = options or SolverOptions()
    names = list(siting)
    n1 = solve_contingency_lp(compiler, siting, config=config, options=options)
    n1_siting = _upgraded(siting) if n1.size_classes_upgraded else siting
    n1_sizing = _sizing_tuples(n1.sizing)
    det_eval = evaluate_contingencies(
        compiler, siting, det_sizing, options=options,
        unserved_penalty_x=config.unserved_penalty_x,
    )
    n1_eval = evaluate_contingencies(
        compiler, n1_siting, n1_sizing, options=options,
        unserved_penalty_x=config.unserved_penalty_x,
    )
    budget = n1.budget_unserved_kwh
    tol = _VIOLATION_REL_TOL * budget + 1e-3
    det_costs, det_unserved = det_eval["costs"][1:], det_eval["unserved_kwh"][1:]
    n1_costs, n1_unserved = n1_eval["costs"][1:], n1_eval["unserved_kwh"][1:]
    det_nominal = float(det_eval["costs"][0])
    n1_nominal = float(n1_eval["costs"][0])

    # Criticality: which site's loss hurts the deterministic plan most.
    order = sorted(
        range(len(names)),
        key=lambda s: (-det_unserved[s], -det_costs[s], names[s]),
    )
    criticality = [
        {
            "site": names[s],
            "det_unserved_kwh": float(det_unserved[s]),
            "det_cost": float(det_costs[s]),
            "n1_unserved_kwh": float(n1_unserved[s]),
            "n1_cost": float(n1_costs[s]),
            "margin_kwh": float(budget - n1_unserved[s]),
        }
        for s in order
    ]
    worst_det = int(np.argmax(det_unserved))
    worst_n1 = int(np.argmax(n1_unserved))
    return {
        "epsilon": float(config.survivability_epsilon),
        "budget_unserved_kwh": float(budget),
        "contingency_weight": float(config.contingency_weight),
        "num_sites": len(names),
        "site_names": list(names),
        "size_classes_upgraded": bool(n1.size_classes_upgraded),
        "joint_lp": {
            "num_cols": int(n1.num_cols),
            "num_rows": int(n1.num_rows),
            "iterations": int(n1.iterations),
            "solver": n1.solver,
        },
        "n1_sizing": n1.sizing,
        "det_nominal_cost": det_nominal,
        "n1_nominal_cost": n1_nominal,
        "cost_premium_pct": (
            float(100.0 * (n1_nominal - det_nominal) / det_nominal)
            if det_nominal > 0
            else 0.0
        ),
        "worst_case": {
            "det": {
                "site": names[worst_det],
                "cost": float(det_costs[worst_det]),
                "unserved_kwh": float(det_unserved[worst_det]),
            },
            "n1": {
                "site": names[worst_n1],
                "cost": float(n1_costs[worst_n1]),
                "unserved_kwh": float(n1_unserved[worst_n1]),
            },
        },
        "criticality": criticality,
        "det_violations": int(np.count_nonzero(det_unserved > budget + tol)),
        "n1_violations": int(np.count_nonzero(n1_unserved > budget + tol)),
    }


def plan_with_sizing(plan, sizing: Mapping[str, Mapping[str, float]]):
    """A copy of a network plan with each site's sizing fields replaced.

    The per-epoch operating series of the original plan are kept as-is —
    the operator re-dispatches from scratch anyway; only the sizing fields
    (capacity, solar, wind, battery) matter downstream.
    """
    datacenters = []
    for dc in plan.datacenters:
        block = sizing.get(dc.name)
        if block is None:
            datacenters.append(dc)
            continue
        datacenters.append(
            dataclasses.replace(
                dc,
                capacity_kw=float(block["capacity_kw"]),
                solar_kw=float(block["solar_kw"]),
                wind_kw=float(block["wind_kw"]),
                battery_kwh=float(block["battery_kwh"]),
            )
        )
    return dataclasses.replace(plan, datacenters=datacenters)
