"""Deterministic weather-year and demand ensembles.

A draw perturbs the base :class:`~repro.core.problem.SitingProblem` with
multiplicative noise from :func:`~repro.operator.forecast.deterministic_noise`
— the same counter-based SplitMix64 stream the operator's noisy-oracle
forecasters use.  Every factor is a pure function of ``(seed, key, index)``,
so the ensemble is bit-identical across serial, thread and process
executors, and across re-runs: there is no RNG state to share or advance.

Per draw:

* every location's ``solar_alpha`` / ``wind_beta`` series is scaled by a
  per-epoch factor (an off-nominal weather year), and
* the framework's ``total_capacity_kw`` is scaled by one per-draw factor
  (a mis-estimated demand level).

The demand perturbation is deliberately a scalar: the deterministic
provisioning LP models demand as a flat per-epoch floor, so a scalar keeps
the per-draw problems expressible by the exact same compiler the nominal
solve uses — which is what lets the stochastic LP reuse cached site
skeletons and the SAA path reuse ``solve_provisioning`` unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.problem import SitingProblem
from repro.operator.forecast import deterministic_noise

#: Ensemble evaluation modes: ``saa`` evaluates per-draw LPs only (sample
#: average approximation), ``stochastic`` additionally solves the joint
#: scenario LP with shared sizing columns.
ENSEMBLE_MODES = ("saa", "stochastic")


@dataclass(frozen=True)
class EnsembleConfig:
    """Knobs of one ensemble study (all JSON scalars, spec-embeddable)."""

    draws: int = 8                  #: ensemble size
    weather_noise: float = 0.15     #: per-epoch multiplicative std on solar/wind
    demand_noise: float = 0.05      #: per-draw multiplicative std on total demand
    seed: int = 0                   #: noise stream seed
    alpha: float = 0.9              #: CVaR tail level (mean of worst 1-alpha share)
    mode: str = "saa"               #: "saa" or "stochastic"
    #: Unserved-demand recourse price, as a multiple of the most expensive
    #: per-epoch brown-energy coefficient — dimensionless so it tracks the
    #: cost model's internal scaling (mirrors the operator's 10x SLA penalty).
    unserved_penalty_x: float = 10.0

    def __post_init__(self) -> None:
        if self.draws < 1:
            raise ValueError("an ensemble needs at least one draw")
        if self.weather_noise < 0 or self.demand_noise < 0:
            raise ValueError("noise levels cannot be negative")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("the CVaR level must lie in (0, 1)")
        if self.mode not in ENSEMBLE_MODES:
            raise ValueError(f"unknown ensemble mode {self.mode!r}; expected {ENSEMBLE_MODES}")
        if self.unserved_penalty_x <= 0:
            raise ValueError("the unserved-demand penalty multiple must be positive")


def weather_factors(config: EnsembleConfig, draw: int, key: str, num_epochs: int) -> np.ndarray:
    """Per-epoch multiplicative weather factors of one (draw, series)."""
    return deterministic_noise(
        config.seed,
        f"ensemble:{key}:{draw}",
        np.arange(num_epochs, dtype=np.int64),
        config.weather_noise,
    )


def demand_factor(config: EnsembleConfig, draw: int) -> float:
    """Scalar demand-level factor of one draw."""
    return float(
        deterministic_noise(
            config.seed,
            "ensemble:demand",
            np.array([draw], dtype=np.int64),
            config.demand_noise,
        )[0]
    )


def perturbed_problem(problem: SitingProblem, config: EnsembleConfig, draw: int) -> SitingProblem:
    """The siting problem as draw ``draw`` of the ensemble sees it."""
    T = problem.num_epochs
    profiles = []
    for profile in problem.profiles:
        profiles.append(
            dataclasses.replace(
                profile,
                solar_alpha=profile.solar_alpha * weather_factors(
                    config, draw, f"solar:{profile.name}", T
                ),
                wind_beta=profile.wind_beta * weather_factors(
                    config, draw, f"wind:{profile.name}", T
                ),
            )
        )
    params = problem.params.with_updates(
        total_capacity_kw=problem.params.total_capacity_kw * demand_factor(config, draw)
    )
    return dataclasses.replace(problem, profiles=profiles, params=params)


def cvar(costs: Sequence[float], alpha: float) -> float:
    """Conditional value-at-risk: mean of the worst ``1 - alpha`` tail.

    With few draws the tail is the ceiling of ``(1 - alpha) * n`` samples
    (at least one), matching the usual discrete-scenario estimator.
    """
    values = np.sort(np.asarray(costs, dtype=float))
    if values.size == 0:
        raise ValueError("CVaR of an empty cost sample")
    tail = max(1, int(np.ceil((1.0 - alpha) * values.size)))
    return float(values[-tail:].mean())
