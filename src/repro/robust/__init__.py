"""Robustness layer: plan against ensembles instead of one synthetic year.

Every paper figure optimizes against exactly one weather/demand trace.  This
package quantifies (and optionally hardens against) that fragility:

* :mod:`repro.robust.ensemble` draws weather-year and demand ensembles from
  the same counter-based deterministic noise streams the operator's
  forecasters use, so a ``(seed, draw)`` pair names one off-nominal year
  reproducibly across executors and processes.
* :mod:`repro.robust.stochastic` builds the scenario-based stochastic LP —
  sizing columns shared across draws, epoch blocks replicated per draw, an
  SLA-priced unserved-demand recourse per draw — plus the cheaper
  sample-average-approximation (SAA) evaluation path, and reports expected
  cost, CVaR@α and the regret of the deterministic plan under off-nominal
  years.
* :mod:`repro.robust.contingency` applies the N-1 criterion: one shared
  sizing whose unserved energy stays within a ``survivability_epsilon``
  budget under every single-site outage, with batched block-diagonal
  evaluation of fixed sizings and a criticality-ranked contingency report.

Scenario integration: a non-empty ``ensemble`` block on a
:class:`~repro.scenarios.spec.ScenarioSpec` makes the experiment runner
attach an ensemble report to every plan/operate record; a non-empty
``contingency`` block attaches the N-1 report (and, on operate runs, a
replay-level survivability study); ``repro stress`` runs both from the CLI.
"""

from repro.robust.contingency import (
    ContingencyConfig,
    ContingencySolution,
    contingency_report,
    evaluate_contingencies,
    plan_with_sizing,
    solve_contingency_lp,
)
from repro.robust.ensemble import (
    EnsembleConfig,
    cvar,
    demand_factor,
    perturbed_problem,
    weather_factors,
)
from repro.robust.stochastic import (
    StochasticSolution,
    ensemble_report,
    solve_ensemble_lp,
)

__all__ = [
    "ContingencyConfig",
    "ContingencySolution",
    "EnsembleConfig",
    "StochasticSolution",
    "contingency_report",
    "cvar",
    "demand_factor",
    "ensemble_report",
    "evaluate_contingencies",
    "perturbed_problem",
    "plan_with_sizing",
    "solve_contingency_lp",
    "solve_ensemble_lp",
    "weather_factors",
]
