"""Data generators for the paper's tables and the Fig. 7 cost breakdown."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.problem import EnergySources, StorageMode
from repro.core.solution import NetworkPlan
from repro.core.tool import PlacementTool

#: The locations Table II highlights, with the configuration they illustrate.
TABLE2_LOCATIONS = {
    "Kiev, Ukraine": "brown",
    "Harare, Zimbabwe": "solar",
    "Nairobi, Kenya": "solar",
    "Mount Washington, NH, USA": "wind",
    "Burke Lakefront, OH, USA": "wind",
}


def table2_good_locations(
    tool: PlacementTool,
    capacity_kw: float = 25_000.0,
    green_fraction: float = 0.5,
    locations: Optional[Dict[str, str]] = None,
) -> List[Dict[str, object]]:
    """Attributes and single-DC costs of the Table II locations."""
    locations = dict(locations or TABLE2_LOCATIONS)
    rows: List[Dict[str, object]] = []
    for name, kind in locations.items():
        if kind == "brown":
            fraction, sources = 0.0, EnergySources.NONE
        elif kind == "solar":
            fraction, sources = green_fraction, EnergySources.SOLAR_ONLY
        else:
            fraction, sources = green_fraction, EnergySources.WIND_ONLY
        costs = tool.single_site_costs(
            capacity_kw=capacity_kw,
            min_green_fraction=fraction,
            sources=sources,
            storage=StorageMode.NET_METERING,
            names=[name],
        )
        row = costs[0].table_row()
        row["dc_type"] = kind
        rows.append(row)
    return rows


def table3_no_storage_network(plan: NetworkPlan) -> List[Dict[str, object]]:
    """Per-datacenter provisioning of the 100 % green / no-storage network (Table III)."""
    rows: List[Dict[str, object]] = []
    for dc in sorted(plan.datacenters, key=lambda d: d.name):
        rows.append(
            {
                "location": dc.name,
                "it_capacity_mw": dc.capacity_kw / 1000.0,
                "solar_mw": dc.solar_kw / 1000.0,
                "wind_mw": dc.wind_kw / 1000.0,
            }
        )
    return rows


def case_study_breakdown(plan: NetworkPlan) -> List[Dict[str, object]]:
    """Cost breakdown per datacenter and component (Fig. 7 / Section III-C)."""
    rows: List[Dict[str, object]] = []
    for dc in sorted(plan.datacenters, key=lambda d: -d.capacity_kw):
        row: Dict[str, object] = {"location": dc.name}
        for component, value in dc.monthly_costs.items():
            row[component] = value / 1e6
        row["total_musd"] = dc.total_monthly_cost / 1e6
        rows.append(row)
    total_row: Dict[str, object] = {"location": "TOTAL"}
    breakdown = plan.cost_breakdown()
    for component, value in breakdown.items():
        total_row[component] = value / 1e6
    total_row["total_musd"] = plan.total_monthly_cost / 1e6
    rows.append(total_row)
    return rows


def operator_regret_table(results) -> List[Dict[str, object]]:
    """Tidy regret rows of an ``operate`` scenario sweep.

    ``results`` is the :class:`~repro.scenarios.results.ResultSet` of an
    operate-workflow sweep (e.g. ``operate-forecast``); each row summarises
    one point: the forecast configuration, the realized operating costs of
    the forecast-driven and oracle policies, and the regret between them.
    """
    operated = results.filter(
        lambda point: point.record.get("workflow") == "operate"
        and bool(point.record.get("feasible"))
    )
    return operated.rows(
        record_fields=(
            "load_forecast",
            "energy_forecast",
            "forecast_error",
            "forecast_cost_usd",
            "oracle_cost_usd",
            "regret_cost_usd",
            "regret_cost_pct",
            "regret_brown_kwh",
            "sla_violation_steps",
            "warm_start_rate",
        )
    )


def robustness_table(results) -> List[Dict[str, object]]:
    """Tidy ensemble-robustness rows of a sweep with ``ensemble`` blocks.

    ``results`` is the :class:`~repro.scenarios.results.ResultSet` of any
    plan/operate sweep whose specs carried a non-empty ``ensemble`` block;
    each row summarises how one point's deterministic plan fares across the
    ensemble — expected cost, the CVaR tail, and its regret against per-draw
    clairvoyant sizing (plus the joint stochastic sizing when the mode asked
    for it).
    """
    scored = results.filter(lambda point: "robustness" in point.record)
    return scored.rows(
        record_fields=(
            "ensemble_expected_cost",
            "ensemble_cvar_cost",
            "ensemble_regret_mean",
            "ensemble_regret_max",
            "stochastic_expected_cost",
            "stochastic_saving_pct",
        )
    )


def fragility_table(results) -> List[Dict[str, object]]:
    """Tidy fault-injection rows of an operate sweep with ``faults`` blocks.

    Each row scores one point's faulted replay against its nominal replay:
    cost blowup, unserved demand, SLA violations, and how hard the solver
    resilience ladder (slide retry -> cold rebuild) had to work.
    """
    stressed = results.filter(lambda point: "stress" in point.record)
    return stressed.rows(
        record_fields=(
            "stress_cost_usd",
            "stress_cost_blowup_pct",
            "stress_unserved_kwh",
            "stress_sla_violation_steps",
            "stress_slide_retries",
            "stress_fallback_rebuilds",
            "stress_blackout_steps",
        )
    )


def survivability_table(results) -> List[Dict[str, object]]:
    """Tidy N-1 survivability rows of a sweep with ``contingency`` blocks.

    Each row compares one point's deterministic sizing against its N-1
    survivable sizing: the cost premium survivability charges vs the
    worst-case unserved energy it buys down, and whether each sizing stays
    within the epsilon budget under every single-site outage (the planner's
    violation counts; on operate sweeps also the replay-level verdicts).
    """
    hardened = results.filter(lambda point: "contingency" in point.record)
    return hardened.rows(
        record_fields=(
            "n1_cost_premium_pct",
            "det_worst_unserved_kwh",
            "n1_worst_unserved_kwh",
            "det_violations",
            "n1_violations",
            "survivability_within_epsilon",
            "survivability_unserved_reduction_kwh",
        )
    )


def network_summary_row(label: str, plan: Optional[NetworkPlan]) -> Dict[str, object]:
    """One summary row used by several benchmarks (cost, capacity, green %)."""
    if plan is None:
        return {
            "scenario": label,
            "monthly_cost_musd": float("nan"),
            "num_datacenters": 0,
            "capacity_mw": float("nan"),
            "green_pct": float("nan"),
        }
    return {
        "scenario": label,
        "monthly_cost_musd": plan.total_monthly_cost / 1e6,
        "num_datacenters": plan.num_datacenters,
        "capacity_mw": plan.total_capacity_kw / 1000.0,
        "green_pct": 100.0 * plan.green_fraction,
    }
