"""Plain-text reporting helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    formatted_rows: List[List[str]] = []
    for row in rows:
        formatted_rows.append([_format_cell(row.get(column, "")) for column in columns])
    widths = [
        max(len(str(column)), max(len(cells[i]) for cells in formatted_rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(cells[i].ljust(widths[i]) for i in range(len(columns)))
        for cells in formatted_rows
    ]
    return "\n".join([header, separator, *body])


def series_to_rows(series: Mapping[str, Iterable[float]], x_name: str, x_values: Iterable) -> List[Dict[str, object]]:
    """Zip named y-series with an x-axis into row dictionaries."""
    x_values = list(x_values)
    columns = {name: list(values) for name, values in series.items()}
    for name, values in columns.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} has {len(values)} points but x has {len(x_values)}")
    rows: List[Dict[str, object]] = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_name: x}
        for name, values in columns.items():
            row[name] = values[index]
        rows.append(row)
    return rows


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)
