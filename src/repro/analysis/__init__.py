"""Experiment drivers that regenerate every table and figure of the paper.

Each public function returns plain Python data (dictionaries, lists, numpy
arrays) describing one figure or table; the benchmark harness under
``benchmarks/`` calls these functions and prints the same rows/series the
paper reports, and the test-suite asserts the qualitative shape (who wins, by
roughly what factor, where the crossovers fall).
"""

from repro.analysis import figures, tables, reporting
from repro.analysis.figures import (
    figure3_capacity_factor_cdf,
    figure4_pue_curve,
    figure5_pue_vs_capacity_factor,
    figure6_cost_cdf,
    figure8_cost_vs_green,
    figure11_capacity_vs_green,
    figure13_migration_sweep,
    figure15_follow_the_renewables,
)
from repro.analysis.tables import (
    case_study_breakdown,
    fragility_table,
    operator_regret_table,
    robustness_table,
    survivability_table,
    table2_good_locations,
    table3_no_storage_network,
)
from repro.analysis.reporting import format_table, series_to_rows

__all__ = [
    "case_study_breakdown",
    "figure11_capacity_vs_green",
    "figure13_migration_sweep",
    "figure15_follow_the_renewables",
    "figure3_capacity_factor_cdf",
    "figure4_pue_curve",
    "figure5_pue_vs_capacity_factor",
    "figure6_cost_cdf",
    "figure8_cost_vs_green",
    "figures",
    "format_table",
    "fragility_table",
    "operator_regret_table",
    "reporting",
    "robustness_table",
    "series_to_rows",
    "survivability_table",
    "table2_good_locations",
    "table3_no_storage_network",
    "tables",
]
