"""Data generators for every figure of the paper's evaluation."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.heuristic import HeuristicSolution, SearchSettings
from repro.core.problem import EnergySources, StorageMode
from repro.core.solution import NetworkPlan
from repro.core.tool import PlacementTool
from repro.energy.profiles import LocationProfile
from repro.energy.pue import PUEModel
from repro.greennebula.emulation import EmulatedCloud, EmulationConfig

#: Source mixes plotted in Figs. 8-13 (the paper's three curves).
SOURCE_CURVES = {
    "wind": EnergySources.WIND_ONLY,
    "solar": EnergySources.SOLAR_ONLY,
    "wind_and_or_solar": EnergySources.SOLAR_AND_WIND,
}

#: Green-energy percentages on the x-axis of Figs. 8-12.
GREEN_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


# -- Figures 3-5: input-data characterisation --------------------------------------------


def figure3_capacity_factor_cdf(profiles: Sequence[LocationProfile]) -> Dict[str, np.ndarray]:
    """Cumulative solar and wind capacity factors across locations (Fig. 3)."""
    if not profiles:
        raise ValueError("at least one location profile is required")
    solar = np.sort([p.solar_capacity_factor for p in profiles])
    wind = np.sort([p.wind_capacity_factor for p in profiles])
    percentile = np.linspace(0.0, 100.0, len(profiles))
    return {"locations_pct": percentile, "solar_cf": solar, "wind_cf": wind}


def figure4_pue_curve(model: Optional[PUEModel] = None) -> Dict[str, np.ndarray]:
    """PUE as a function of external temperature (Fig. 4)."""
    model = model or PUEModel()
    temperatures, pues = model.curve(15.0, 45.0, 1.0)
    return {"temperature_c": temperatures, "pue": pues}


def figure5_pue_vs_capacity_factor(profiles: Sequence[LocationProfile]) -> Dict[str, np.ndarray]:
    """Average PUE against solar and wind capacity factors (Fig. 5)."""
    if not profiles:
        raise ValueError("at least one location profile is required")
    return {
        "solar_cf": np.array([p.solar_capacity_factor for p in profiles]),
        "wind_cf": np.array([p.wind_capacity_factor for p in profiles]),
        "avg_pue": np.array([p.average_pue for p in profiles]),
    }


# -- Figure 6: single-datacenter cost distribution ----------------------------------------


def figure6_cost_cdf(
    tool: PlacementTool,
    capacity_kw: float = 25_000.0,
    green_fraction: float = 0.5,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Per-location cost of one datacenter: brown vs 50 % solar vs 50 % wind (Fig. 6)."""
    configurations = {
        "brown": (0.0, EnergySources.NONE),
        "solar": (green_fraction, EnergySources.SOLAR_ONLY),
        "wind": (green_fraction, EnergySources.WIND_ONLY),
    }
    result: Dict[str, np.ndarray] = {}
    for label, (fraction, sources) in configurations.items():
        costs = tool.single_site_costs(
            capacity_kw=capacity_kw,
            min_green_fraction=fraction,
            sources=sources,
            storage=StorageMode.NET_METERING,
            names=names,
        )
        feasible = sorted(c.monthly_cost for c in costs if c.feasible)
        result[label] = np.array(feasible)
    result["locations_pct"] = np.linspace(
        0.0, 100.0, max(len(v) for k, v in result.items() if k != "locations_pct")
    )
    return result


# -- Figures 8-12: network cost / capacity vs desired green percentage ------------------------


def figure8_cost_vs_green(
    tool: PlacementTool,
    storage: StorageMode = StorageMode.NET_METERING,
    green_fractions: Sequence[float] = GREEN_FRACTIONS,
    total_capacity_kw: float = 50_000.0,
    settings: Optional[SearchSettings] = None,
    sources: Optional[Mapping[str, EnergySources]] = None,
) -> Dict[str, Dict[float, HeuristicSolution]]:
    """Cost vs green percentage for each source mix (Figs. 8, 9 and 10).

    ``storage`` selects between the three figures: net metering (Fig. 8),
    batteries (Fig. 9) and no storage (Fig. 10).  The returned structure maps
    source-mix label -> green fraction -> heuristic solution; use
    :func:`solution_costs` / :func:`figure11_capacity_vs_green` to flatten it.
    """
    sources = dict(sources or SOURCE_CURVES)
    results: Dict[str, Dict[float, HeuristicSolution]] = {}
    for label, mix in sources.items():
        results[label] = tool.green_percentage_sweep(
            green_fractions,
            total_capacity_kw=total_capacity_kw,
            sources=mix,
            storage=storage,
            settings=settings,
        )
    return results


def solution_costs(results: Mapping[str, Mapping[float, HeuristicSolution]]) -> Dict[str, List[float]]:
    """Monthly costs (in million dollars) of a Figs. 8-10 sweep."""
    return {
        label: [sweep[fraction].monthly_cost / 1e6 for fraction in sorted(sweep)]
        for label, sweep in results.items()
    }


def figure11_capacity_vs_green(
    results: Mapping[str, Mapping[float, HeuristicSolution]]
) -> Dict[str, List[float]]:
    """Total provisioned compute capacity (MW) of a sweep (Figs. 11 and 12)."""
    capacities: Dict[str, List[float]] = {}
    for label, sweep in results.items():
        capacities[label] = [
            (sweep[fraction].plan.total_capacity_kw / 1000.0) if sweep[fraction].plan else float("nan")
            for fraction in sorted(sweep)
        ]
    return capacities


# -- Figure 13: migration-overhead sensitivity ------------------------------------------------------


def figure13_migration_sweep(
    tool: PlacementTool,
    migration_factors: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    total_capacity_kw: float = 50_000.0,
    green_fraction: float = 1.0,
    storage: StorageMode = StorageMode.NONE,
    settings: Optional[SearchSettings] = None,
    sources: Optional[Mapping[str, EnergySources]] = None,
) -> Dict[str, Dict[float, HeuristicSolution]]:
    """Cost of the 100 % green / no-storage network vs migration overhead (Fig. 13)."""
    sources = dict(sources or SOURCE_CURVES)
    results: Dict[str, Dict[float, HeuristicSolution]] = {}
    for label, mix in sources.items():
        per_factor: Dict[float, HeuristicSolution] = {}
        for factor in migration_factors:
            per_factor[factor] = tool.plan_network(
                total_capacity_kw=total_capacity_kw,
                min_green_fraction=green_fraction,
                sources=mix,
                storage=storage,
                migration_factor=factor,
                settings=settings,
            )
        results[label] = per_factor
    return results


# -- Figure 15: follow-the-renewables emulation ----------------------------------------------------------


def figure15_follow_the_renewables(
    plan: NetworkPlan,
    duration_hours: int = 24,
    num_vms: int = 9,
    initial_datacenter: Optional[str] = None,
    config: Optional[EmulationConfig] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Per-datacenter hourly series of the GreenNebula emulation (Fig. 15).

    Returns ``{datacenter: {series_name: hourly values}}`` with the series the
    paper plots: compute load, PUE overhead, migration overhead, green energy
    available and brown power, all in kW of the emulated (scaled-down) fleet.
    """
    config = config or EmulationConfig(
        num_vms=num_vms,
        duration_hours=duration_hours,
        initial_datacenter=initial_datacenter,
    )
    cloud = EmulatedCloud.from_network_plan(plan, config)
    cloud.run()
    series: Dict[str, Dict[str, List[float]]] = {}
    for record in cloud.trace.of_kind("datacenter"):
        per_dc = series.setdefault(
            record["datacenter"],
            {
                "hour": [],
                "load_kw": [],
                "pue_overhead_kw": [],
                "migration_kw": [],
                "green_available_kw": [],
                "brown_kw": [],
            },
        )
        per_dc["hour"].append(record["time"])
        per_dc["load_kw"].append(record["load_kw"])
        per_dc["pue_overhead_kw"].append(record["pue_overhead_kw"])
        per_dc["migration_kw"].append(record["migration_kw"])
        per_dc["green_available_kw"].append(record["green_available_kw"])
        per_dc["brown_kw"].append(record["brown_kw"])
    return series
