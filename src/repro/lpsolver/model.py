"""The :class:`Model` container for LP/MILP problems.

A model owns variables (with bounds and kinds), constraints, and an
objective.  Constraints come in two flavours that can be mixed freely:

* scalar :class:`~repro.lpsolver.expressions.Constraint` objects built with
  the readable object API (``x + 2 * y >= 4``), and
* :class:`~repro.lpsolver.blocks.LinearConstraintBlock` families ingested in
  batch through :meth:`Model.add_linear_block` as sparse COO triplets, which
  is how the vectorized provisioning builder emits whole per-epoch constraint
  families at once.

Compilation produces :mod:`scipy.sparse` matrices directly — either the
``A_ub``/``A_eq`` split consumed by ``scipy.optimize.linprog``/``milp``
(:meth:`Model.to_matrices`) or the single row-bounded form
``row_lower <= A x <= row_upper`` consumed by the direct HiGHS backend
(:meth:`Model.to_row_form`).  The model can also check candidate solutions
for feasibility, which the heuristic solver uses to validate provisioning
plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.lpsolver.blocks import LinearConstraintBlock, make_block
from repro.lpsolver.expressions import (
    Constraint,
    ConstraintSense,
    ExpressionLike,
    LinearExpression,
    Variable,
    VariableKind,
)
from repro.lpsolver.result import SolveResult


class ModelError(ValueError):
    """Raised for malformed models (duplicate names, bad bounds, ...)."""


class Model:
    """A linear (or mixed-integer linear) optimisation model.

    Parameters
    ----------
    name:
        Human-readable model name (used in error messages and benchmarks).
    sense:
        ``"min"`` or ``"max"``.
    """

    def __init__(self, name: str = "model", sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ModelError(f"unknown optimisation sense {sense!r}")
        self.name = name
        self.sense = sense
        # Variables live in parallel arrays; Variable handles are materialised
        # lazily so bulk registration does not pay per-object costs.
        self._var_names: List[str] = []
        self._lower: List[float] = []
        self._upper: List[float] = []
        self._kinds: Dict[int, VariableKind] = {}  # only non-continuous entries
        self._handles: List[Optional[Variable]] = []
        self._names: Dict[str, int] = {}
        self.constraints: List[Constraint] = []
        self.blocks: List[LinearConstraintBlock] = []
        self.objective: LinearExpression = LinearExpression()

    # -- variables -------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
        kind: VariableKind = VariableKind.CONTINUOUS,
    ) -> Variable:
        """Register a new decision variable and return its handle."""
        if name in self._names:
            raise ModelError(f"variable {name!r} already exists in model {self.name!r}")
        if kind is VariableKind.BINARY:
            lower, upper = 0.0, 1.0
        if lower > upper:
            raise ModelError(f"variable {name!r} has lower bound {lower} > upper bound {upper}")
        index = len(self._var_names)
        variable = Variable(name=name, index=index, kind=kind)
        self._var_names.append(name)
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        if kind is not VariableKind.CONTINUOUS:
            self._kinds[index] = kind
        self._handles.append(variable)
        self._names[name] = index
        return variable

    def add_variable_array(
        self,
        names: Sequence[str],
        lower: Union[float, Sequence[float], np.ndarray] = 0.0,
        upper: Union[float, Sequence[float], np.ndarray] = float("inf"),
    ) -> np.ndarray:
        """Register a batch of continuous variables; return their index array.

        This is the fast path used by the vectorized model builders: no
        :class:`Variable` objects are created up front (handles materialise
        lazily on :meth:`variable`/:attr:`variables` access) and bounds may be
        given as scalars or per-variable arrays.
        """
        count = len(names)
        lower_arr = np.broadcast_to(np.asarray(lower, dtype=float), (count,))
        upper_arr = np.broadcast_to(np.asarray(upper, dtype=float), (count,))
        if np.any(lower_arr > upper_arr):
            bad = int(np.argmax(lower_arr > upper_arr))
            raise ModelError(
                f"variable {names[bad]!r} has lower bound {lower_arr[bad]} > "
                f"upper bound {upper_arr[bad]}"
            )
        # Validate the whole batch before touching any model state, so a
        # rejected batch leaves the model exactly as it was.
        name_map = self._names
        if len(set(names)) != count:
            raise ModelError(f"duplicate names within the variable batch in model {self.name!r}")
        for name in names:
            if name in name_map:
                raise ModelError(f"variable {name!r} already exists in model {self.name!r}")
        start = len(self._var_names)
        for offset, name in enumerate(names):
            name_map[name] = start + offset
        self._var_names.extend(names)
        self._lower.extend(lower_arr.tolist())
        self._upper.extend(upper_arr.tolist())
        self._handles.extend([None] * count)
        return np.arange(start, start + count, dtype=np.int64)

    def add_binary(self, name: str) -> Variable:
        """Shorthand for a 0/1 variable."""
        return self.add_variable(name, kind=VariableKind.BINARY)

    def add_integer(self, name: str, lower: float = 0.0, upper: float = float("inf")) -> Variable:
        """Shorthand for an integer variable."""
        return self.add_variable(name, lower=lower, upper=upper, kind=VariableKind.INTEGER)

    def _handle(self, index: int) -> Variable:
        handle = self._handles[index]
        if handle is None:
            handle = Variable(
                name=self._var_names[index],
                index=index,
                kind=self._kinds.get(index, VariableKind.CONTINUOUS),
            )
            self._handles[index] = handle
        return handle

    def variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._handle(self._names[name])
        except KeyError:
            raise ModelError(f"no variable named {name!r} in model {self.name!r}") from None

    @property
    def variables(self) -> List[Variable]:
        return [self._handle(index) for index in range(len(self._var_names))]

    @property
    def num_variables(self) -> int:
        return len(self._var_names)

    @property
    def num_constraints(self) -> int:
        """Total constraint rows: scalar constraints plus block rows."""
        return len(self.constraints) + sum(block.num_rows for block in self.blocks)

    def bounds(self, variable: Union[Variable, int]) -> Tuple[float, float]:
        """Return ``(lower, upper)`` bounds of a variable (or variable index)."""
        index = variable.index if isinstance(variable, Variable) else int(variable)
        return self._lower[index], self._upper[index]

    def set_bounds(
        self,
        variable: Union[Variable, int],
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> None:
        """Tighten or relax the bounds of an existing variable."""
        index = variable.index if isinstance(variable, Variable) else int(variable)
        if lower is not None:
            self._lower[index] = float(lower)
        if upper is not None:
            self._upper[index] = float(upper)
        if self._lower[index] > self._upper[index]:
            raise ModelError(
                f"variable {self._var_names[index]!r} has lower bound "
                f"{self._lower[index]} > upper bound {self._upper[index]}"
            )

    def fix(self, variable: Union[Variable, int], value: float) -> None:
        """Fix a variable to a constant by collapsing its bounds."""
        self.set_bounds(variable, lower=value, upper=value)

    @property
    def is_mixed_integer(self) -> bool:
        """True when any variable is integer or binary."""
        return bool(self._kinds)

    # -- constraints and objective ----------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint, skipping trivially satisfied constant constraints."""
        if not isinstance(constraint, Constraint):
            raise ModelError(f"expected a Constraint, got {constraint!r}")
        if name:
            constraint.name = name
        if constraint.expression.is_constant():
            if constraint.is_trivially_feasible():
                return constraint
            raise ModelError(
                f"constraint {constraint.name or constraint!r} is constant and infeasible"
            )
        self.constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    def add_linear_block(
        self,
        rows: Union[Sequence[int], np.ndarray],
        cols: Union[Sequence[int], np.ndarray],
        vals: Union[Sequence[float], np.ndarray],
        sense: ConstraintSense,
        rhs: Union[Sequence[float], np.ndarray],
        name: str = "",
        validate: bool = True,
    ) -> LinearConstraintBlock:
        """Ingest a whole family of constraints as sparse COO triplets.

        ``rows`` are block-local (0-based); the block contributes
        ``len(rhs)`` constraint rows, all with the same ``sense``.  This is
        the batched counterpart of :meth:`add_constraint` and the backbone of
        the vectorized provisioning builder.  ``validate=False`` skips triplet
        validation for pre-validated skeleton caches.
        """
        block = make_block(
            rows, cols, vals, sense, rhs, name=name,
            num_variables=self.num_variables, validate=validate,
        )
        self.blocks.append(block)
        return block

    def set_objective(self, expression: ExpressionLike) -> None:
        """Set the objective expression (interpreted with the model's sense)."""
        self.objective = LinearExpression.from_value(expression)

    # -- compilation to matrix form ----------------------------------------------
    def _gather_triplets(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Collect (rows, cols, vals, senses, rhs) across scalar constraints and blocks.

        Returns flat triplet arrays with *global* row numbering (scalar
        constraints first, then blocks in insertion order), a per-row sense
        array, and the per-row right-hand side.
        """
        row_chunks: List[np.ndarray] = []
        col_chunks: List[np.ndarray] = []
        val_chunks: List[np.ndarray] = []
        senses: List[ConstraintSense] = []
        rhs_chunks: List[np.ndarray] = []
        row_offset = 0
        if self.constraints:
            scalar_rows: List[int] = []
            scalar_cols: List[int] = []
            scalar_vals: List[float] = []
            scalar_rhs = np.empty(len(self.constraints))
            for row, constraint in enumerate(self.constraints):
                coeffs = constraint.expression.coefficients
                scalar_rows.extend([row] * len(coeffs))
                scalar_cols.extend(coeffs.keys())
                scalar_vals.extend(coeffs.values())
                scalar_rhs[row] = constraint.rhs
                senses.append(constraint.sense)
            row_chunks.append(np.asarray(scalar_rows, dtype=np.int64))
            col_chunks.append(np.asarray(scalar_cols, dtype=np.int64))
            val_chunks.append(np.asarray(scalar_vals, dtype=np.float64))
            rhs_chunks.append(scalar_rhs)
            row_offset = len(self.constraints)
        for block in self.blocks:
            row_chunks.append(block.rows + row_offset)
            col_chunks.append(block.cols)
            val_chunks.append(block.vals)
            rhs_chunks.append(block.rhs)
            senses.extend([block.sense] * block.num_rows)
            row_offset += block.num_rows
        if not rhs_chunks:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i, np.empty(0), np.empty(0, dtype=object), np.empty(0)
        rows = np.concatenate(row_chunks)
        cols = np.concatenate(col_chunks)
        vals = np.concatenate(val_chunks)
        rhs = np.concatenate(rhs_chunks)
        sense_arr = np.array([s.value for s in senses], dtype=object)
        return rows, cols, vals, sense_arr, rhs

    def _objective_arrays(self) -> np.ndarray:
        cost = np.zeros(self.num_variables)
        if self.objective.coefficients:
            indices = np.fromiter(
                self.objective.coefficients.keys(), dtype=np.int64,
                count=len(self.objective.coefficients),
            )
            values = np.fromiter(
                self.objective.coefficients.values(), dtype=np.float64,
                count=len(self.objective.coefficients),
            )
            cost[indices] = values
        if self.sense == "max":
            cost = -cost
        return cost

    def _integrality(self) -> np.ndarray:
        integrality = np.zeros(self.num_variables, dtype=np.int64)
        for index in self._kinds:
            integrality[index] = 1
        return integrality

    def to_matrices(self) -> "CompiledModel":
        """Compile to the ``A_ub``/``A_eq`` split consumed by SciPy backends.

        Constraint matrices are assembled as :class:`scipy.sparse.csr_matrix`
        directly from COO triplets — no dense per-row intermediate is ever
        built.  ``>=`` rows are negated into ``<=`` rows as before.
        """
        n = self.num_variables
        rows, cols, vals, senses, rhs = self._gather_triplets()

        le_mask = senses == ConstraintSense.LESS_EQUAL.value
        ge_mask = senses == ConstraintSense.GREATER_EQUAL.value
        eq_mask = senses == ConstraintSense.EQUAL.value
        ub_mask = le_mask | ge_mask

        a_ub = b_ub = a_eq = b_eq = None
        if np.any(ub_mask):
            # Map original row numbers onto compact 0..m-1 numbering, flipping
            # the sign of >= rows so everything reads  A_ub x <= b_ub.
            ub_rows = np.flatnonzero(ub_mask)
            renumber = np.full(len(senses), -1, dtype=np.int64)
            renumber[ub_rows] = np.arange(len(ub_rows))
            entry_mask = ub_mask[rows]
            sign = np.where(ge_mask[rows[entry_mask]], -1.0, 1.0)
            a_ub = sparse.csr_matrix(
                (vals[entry_mask] * sign, (renumber[rows[entry_mask]], cols[entry_mask])),
                shape=(len(ub_rows), n),
            )
            b_ub = np.where(ge_mask[ub_rows], -rhs[ub_rows], rhs[ub_rows])
        if np.any(eq_mask):
            eq_rows = np.flatnonzero(eq_mask)
            renumber = np.full(len(senses), -1, dtype=np.int64)
            renumber[eq_rows] = np.arange(len(eq_rows))
            entry_mask = eq_mask[rows]
            a_eq = sparse.csr_matrix(
                (vals[entry_mask], (renumber[rows[entry_mask]], cols[entry_mask])),
                shape=(len(eq_rows), n),
            )
            b_eq = rhs[eq_rows]

        return CompiledModel(
            cost=self._objective_arrays(),
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            lower=np.array(self._lower),
            upper=np.array(self._upper),
            integrality=self._integrality(),
            maximise=self.sense == "max",
            objective_constant=self.objective.constant,
        )

    def to_row_form(self) -> "RowFormLP":
        """Compile to the row-bounded form ``row_lower <= A x <= row_upper``.

        This is the native input format of HiGHS: one CSC matrix with per-row
        lower/upper bounds instead of the ``A_ub``/``A_eq`` split, so no row
        ever needs to be negated or duplicated.  Used by the direct backend in
        :mod:`repro.lpsolver.highs_backend`.
        """
        n = self.num_variables
        rows, cols, vals, senses, rhs = self._gather_triplets()
        m = len(senses)
        matrix = sparse.csc_matrix((vals, (rows, cols)), shape=(m, n))
        row_lower = np.where(senses == ConstraintSense.LESS_EQUAL.value, -np.inf, rhs)
        row_upper = np.where(senses == ConstraintSense.GREATER_EQUAL.value, np.inf, rhs)
        return RowFormLP(
            cost=self._objective_arrays(),
            a_indptr=matrix.indptr,
            a_indices=matrix.indices,
            a_data=matrix.data,
            shape=(m, n),
            row_lower=row_lower,
            row_upper=row_upper,
            lower=np.array(self._lower),
            upper=np.array(self._upper),
            integrality=self._integrality(),
            maximise=self.sense == "max",
            objective_constant=self.objective.constant,
        )

    # -- solving and checking ------------------------------------------------------
    def solve(
        self, options: Optional["SolverOptions"] = None, context: Optional[object] = None
    ) -> SolveResult:
        """Solve the model with the direct HiGHS or SciPy backends.

        ``context`` may be a
        :class:`~repro.lpsolver.highs_backend.HighsSolveContext` to reuse the
        previous optimal basis across structurally identical solves.
        """
        from repro.lpsolver.solvers import solve_model

        return solve_model(self, options, context=context)

    def check_solution(self, values: Mapping[int, float], tolerance: float = 1e-6) -> List[str]:
        """Return a list of violated constraint/bound descriptions (empty if feasible)."""
        violations: List[str] = []
        n = self.num_variables
        x = np.zeros(n)
        for index, value in values.items():
            if 0 <= index < n:  # tolerate stray indices, as the per-variable lookup did
                x[index] = value
        for index in range(n):
            if x[index] < self._lower[index] - tolerance or x[index] > self._upper[index] + tolerance:
                violations.append(
                    f"variable {self._var_names[index]} = {x[index]:.6g} outside "
                    f"[{self._lower[index]:.6g}, {self._upper[index]:.6g}]"
                )
        for constraint in self.constraints:
            violation = constraint.violation(values)
            if violation > tolerance:
                label = constraint.name or repr(constraint)
                violations.append(f"constraint {label} violated by {violation:.6g}")
        for block in self.blocks:
            for row in block.violations(x, tolerance):
                label = f"{block.name or 'block'}[{int(row)}]"
                violations.append(f"constraint {label} violated")
        return violations

    def objective_value(self, values: Mapping[int, float]) -> float:
        """Evaluate the objective expression for a candidate solution."""
        return self.objective.evaluate(values)

    def __repr__(self) -> str:
        kind = "MILP" if self.is_mixed_integer else "LP"
        return (
            f"Model({self.name!r}, {kind}, {self.num_variables} variables, "
            f"{self.num_constraints} constraints)"
        )


@dataclass
class CompiledModel:
    """Matrix form of a model, ready for ``linprog``/``milp``.

    ``a_ub``/``a_eq`` are :class:`scipy.sparse.csr_matrix` (or ``None`` when
    the model has no rows of that kind).
    """

    cost: np.ndarray
    a_ub: Optional[sparse.csr_matrix]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[sparse.csr_matrix]
    b_eq: Optional[np.ndarray]
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    maximise: bool
    objective_constant: float


@dataclass
class RowFormLP:
    """Row-bounded compilation ``row_lower <= A @ x <= row_upper``.

    The native HiGHS input form: the constraint matrix is carried as raw CSC
    arrays (``a_indptr``/``a_indices``/``a_data`` with ``shape = (rows,
    cols)``) so they can be handed to ``HighsLp`` without conversion or
    re-validation.  ``cost`` is already negated for maximisation problems
    (mirrors :class:`CompiledModel`).
    """

    cost: np.ndarray
    a_indptr: np.ndarray
    a_indices: np.ndarray
    a_data: np.ndarray
    shape: Tuple[int, int]
    row_lower: np.ndarray
    row_upper: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    maximise: bool
    objective_constant: float

    @property
    def matrix(self) -> sparse.csc_matrix:
        """The constraint matrix as a scipy CSC matrix (built on demand)."""
        return sparse.csc_matrix(
            (self.a_data, self.a_indices, self.a_indptr), shape=self.shape
        )

    @property
    def num_variables(self) -> int:
        return int(self.shape[1])

    @property
    def num_rows(self) -> int:
        return int(self.shape[0])
