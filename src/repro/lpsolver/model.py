"""The :class:`Model` container for LP/MILP problems.

A model owns variables (with bounds and kinds), constraints, and an
objective.  It can compile itself into the matrix form consumed by SciPy's
HiGHS solvers and it can check candidate solutions for feasibility, which
the heuristic solver uses to validate provisioning plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.lpsolver.expressions import (
    Constraint,
    ConstraintSense,
    ExpressionLike,
    LinearExpression,
    Variable,
    VariableKind,
)
from repro.lpsolver.result import SolveResult


class ModelError(ValueError):
    """Raised for malformed models (duplicate names, bad bounds, ...)."""


@dataclass
class _VariableRecord:
    variable: Variable
    lower: float
    upper: float


class Model:
    """A linear (or mixed-integer linear) optimisation model.

    Parameters
    ----------
    name:
        Human-readable model name (used in error messages and benchmarks).
    sense:
        ``"min"`` or ``"max"``.
    """

    def __init__(self, name: str = "model", sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ModelError(f"unknown optimisation sense {sense!r}")
        self.name = name
        self.sense = sense
        self._records: List[_VariableRecord] = []
        self._names: Dict[str, Variable] = {}
        self.constraints: List[Constraint] = []
        self.objective: LinearExpression = LinearExpression()

    # -- variables -------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
        kind: VariableKind = VariableKind.CONTINUOUS,
    ) -> Variable:
        """Register a new decision variable and return its handle."""
        if name in self._names:
            raise ModelError(f"variable {name!r} already exists in model {self.name!r}")
        if kind is VariableKind.BINARY:
            lower, upper = 0.0, 1.0
        if lower > upper:
            raise ModelError(f"variable {name!r} has lower bound {lower} > upper bound {upper}")
        variable = Variable(name=name, index=len(self._records), kind=kind)
        self._records.append(_VariableRecord(variable, float(lower), float(upper)))
        self._names[name] = variable
        return variable

    def add_binary(self, name: str) -> Variable:
        """Shorthand for a 0/1 variable."""
        return self.add_variable(name, kind=VariableKind.BINARY)

    def add_integer(self, name: str, lower: float = 0.0, upper: float = float("inf")) -> Variable:
        """Shorthand for an integer variable."""
        return self.add_variable(name, lower=lower, upper=upper, kind=VariableKind.INTEGER)

    def variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._names[name]
        except KeyError:
            raise ModelError(f"no variable named {name!r} in model {self.name!r}") from None

    @property
    def variables(self) -> List[Variable]:
        return [record.variable for record in self._records]

    @property
    def num_variables(self) -> int:
        return len(self._records)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def bounds(self, variable: Variable) -> Tuple[float, float]:
        """Return ``(lower, upper)`` bounds of a variable."""
        record = self._records[variable.index]
        return record.lower, record.upper

    def set_bounds(
        self,
        variable: Variable,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> None:
        """Tighten or relax the bounds of an existing variable."""
        record = self._records[variable.index]
        if lower is not None:
            record.lower = float(lower)
        if upper is not None:
            record.upper = float(upper)
        if record.lower > record.upper:
            raise ModelError(
                f"variable {variable.name!r} has lower bound {record.lower} > upper bound {record.upper}"
            )

    def fix(self, variable: Variable, value: float) -> None:
        """Fix a variable to a constant by collapsing its bounds."""
        self.set_bounds(variable, lower=value, upper=value)

    @property
    def is_mixed_integer(self) -> bool:
        """True when any variable is integer or binary."""
        return any(r.variable.kind is not VariableKind.CONTINUOUS for r in self._records)

    # -- constraints and objective ----------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint, skipping trivially satisfied constant constraints."""
        if not isinstance(constraint, Constraint):
            raise ModelError(f"expected a Constraint, got {constraint!r}")
        if name:
            constraint.name = name
        if constraint.expression.is_constant():
            if constraint.is_trivially_feasible():
                return constraint
            raise ModelError(
                f"constraint {constraint.name or constraint!r} is constant and infeasible"
            )
        self.constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    def set_objective(self, expression: ExpressionLike) -> None:
        """Set the objective expression (interpreted with the model's sense)."""
        self.objective = LinearExpression.from_value(expression)

    # -- compilation to matrix form ----------------------------------------------
    def to_matrices(self) -> "CompiledModel":
        """Compile to the arrays consumed by ``scipy.optimize`` backends."""
        n = self.num_variables
        cost = np.zeros(n)
        for index, coeff in self.objective.coefficients.items():
            cost[index] = coeff
        if self.sense == "max":
            cost = -cost

        lower = np.array([record.lower for record in self._records])
        upper = np.array([record.upper for record in self._records])
        integrality = np.array(
            [0 if r.variable.kind is VariableKind.CONTINUOUS else 1 for r in self._records]
        )

        ub_rows: List[Tuple[Dict[int, float], float]] = []
        eq_rows: List[Tuple[Dict[int, float], float]] = []
        for constraint in self.constraints:
            coeffs = dict(constraint.coefficient_items())
            rhs = constraint.rhs
            if constraint.sense is ConstraintSense.LESS_EQUAL:
                ub_rows.append((coeffs, rhs))
            elif constraint.sense is ConstraintSense.GREATER_EQUAL:
                ub_rows.append(({i: -c for i, c in coeffs.items()}, -rhs))
            else:
                eq_rows.append((coeffs, rhs))

        a_ub, b_ub = _rows_to_arrays(ub_rows, n)
        a_eq, b_eq = _rows_to_arrays(eq_rows, n)
        return CompiledModel(
            cost=cost,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            lower=lower,
            upper=upper,
            integrality=integrality,
            maximise=self.sense == "max",
            objective_constant=self.objective.constant,
        )

    # -- solving and checking ------------------------------------------------------
    def solve(self, options: Optional["SolverOptions"] = None) -> SolveResult:
        """Solve the model with the SciPy HiGHS backends."""
        from repro.lpsolver.solvers import solve_model

        return solve_model(self, options)

    def check_solution(self, values: Mapping[int, float], tolerance: float = 1e-6) -> List[str]:
        """Return a list of violated constraint/bound descriptions (empty if feasible)."""
        violations: List[str] = []
        for record in self._records:
            value = values.get(record.variable.index, 0.0)
            if value < record.lower - tolerance or value > record.upper + tolerance:
                violations.append(
                    f"variable {record.variable.name} = {value:.6g} outside "
                    f"[{record.lower:.6g}, {record.upper:.6g}]"
                )
        for constraint in self.constraints:
            violation = constraint.violation(values)
            if violation > tolerance:
                label = constraint.name or repr(constraint)
                violations.append(f"constraint {label} violated by {violation:.6g}")
        return violations

    def objective_value(self, values: Mapping[int, float]) -> float:
        """Evaluate the objective expression for a candidate solution."""
        return self.objective.evaluate(values)

    def __repr__(self) -> str:
        kind = "MILP" if self.is_mixed_integer else "LP"
        return (
            f"Model({self.name!r}, {kind}, {self.num_variables} variables, "
            f"{self.num_constraints} constraints)"
        )


@dataclass
class CompiledModel:
    """Matrix form of a model, ready for ``linprog``/``milp``."""

    cost: np.ndarray
    a_ub: Optional[np.ndarray]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[np.ndarray]
    b_eq: Optional[np.ndarray]
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    maximise: bool
    objective_constant: float


def _rows_to_arrays(
    rows: Sequence[Tuple[Dict[int, float], float]], n_variables: int
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Convert sparse rows into dense coefficient matrices for SciPy."""
    if not rows:
        return None, None
    matrix = np.zeros((len(rows), n_variables))
    rhs = np.zeros(len(rows))
    for row_index, (coeffs, bound) in enumerate(rows):
        for var_index, coeff in coeffs.items():
            matrix[row_index, var_index] = coeff
        rhs[row_index] = bound
    return matrix, rhs
