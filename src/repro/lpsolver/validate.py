"""Structural LP validation behind the ``REPRO_VALIDATE=1`` environment knob.

The incremental machinery (in-place :class:`MutableHighsModel` splices,
block-diagonal stacking, compiled-skeleton instantiation) trades re-validation
for speed: HiGHS is handed raw CSC arrays with no checking, so a malformed
model — a NaN cost smuggled in by an uninitialised profile, a crossed bound
after a resize edit, duplicate COO coordinates from a buggy skeleton rewrite,
a basis projection whose length drifted from the model after a ranged
delete — produces silently-wrong optima rather than errors.

This module makes every such hand-off auditable.  With ``REPRO_VALIDATE=1``
in the environment the three structural hand-off points validate their
models and raise :class:`LPValidationError` listing *all* violations:

* :meth:`MutableHighsModel.load` / :meth:`MutableHighsModel.solve` — the cold
  row-form load, and the dimension/basis bookkeeping after any splice
  sequence (every solve follows the splices that produced it);
* :func:`repro.lpsolver.batch.stack_block_diagonal` — the stacked mega-LP and
  its block boundary offsets;
* :meth:`ProvisioningCompiler.compile_row_form` — every compiled-skeleton
  instantiation.

Validation is O(nnz) numpy per call and entirely skipped (one dict lookup)
when the knob is off, so production paths pay nothing; the differential test
suite run under ``REPRO_VALIDATE=1`` doubles as an invariant audit of every
splice and stack it exercises.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lpsolver.model import RowFormLP

__all__ = [
    "LPValidationError",
    "validation_enabled",
    "validate_row_form",
    "validate_block_offsets",
    "validate_mutable_model",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class LPValidationError(AssertionError):
    """A structural invariant of an LP hand-off was violated.

    Subclasses ``AssertionError`` deliberately: a violation is a programming
    error in model assembly, never a data-dependent runtime condition, and
    must not be swallowed by the solver-resilience retry ladders (which catch
    :class:`~repro.lpsolver.result.SolverStatusError`, not assertions).
    """

    def __init__(self, label: str, violations: List[str]) -> None:
        self.label = label
        self.violations = list(violations)
        details = "\n  - ".join(violations)
        super().__init__(f"LP validation failed for {label}:\n  - {details}")


def validation_enabled() -> bool:
    """True when ``REPRO_VALIDATE`` is set to a truthy value.

    Read from the environment on every call (not cached) so tests can toggle
    validation with ``monkeypatch.setenv``; the lookup is a few hundred
    nanoseconds against millisecond-scale solves.
    """
    return os.environ.get("REPRO_VALIDATE", "").strip().lower() in _TRUTHY


def _check_finite(name: str, values: np.ndarray, violations: List[str], *, allow_inf: bool) -> None:
    values = np.asarray(values)
    if values.size == 0:
        return
    if allow_inf:
        if np.isnan(values).any():
            where = int(np.flatnonzero(np.isnan(values))[0])
            violations.append(f"{name} contains NaN (first at index {where})")
    elif not np.isfinite(values).all():
        bad = ~np.isfinite(values)
        where = int(np.flatnonzero(bad)[0])
        kind = "NaN" if np.isnan(values[bad]).any() else "Inf"
        violations.append(f"{name} contains {kind} (first at index {where})")


def row_form_violations(row_form: "RowFormLP", *, check_empty_rows: bool = True) -> List[str]:
    """All structural violations of one row-form LP (empty when sound).

    ``check_empty_rows=False`` is for staged assembly: the incremental
    evaluator legitimately loads a zero-column model holding only coupling
    rows and splices site blocks in afterwards, so empty rows are checked at
    solve time (:func:`validate_mutable_model`) instead of load time.
    """
    violations: List[str] = []
    num_rows, num_cols = (int(row_form.shape[0]), int(row_form.shape[1]))

    cost = np.asarray(row_form.cost)
    lower = np.asarray(row_form.lower)
    upper = np.asarray(row_form.upper)
    row_lower = np.asarray(row_form.row_lower)
    row_upper = np.asarray(row_form.row_upper)
    indptr = np.asarray(row_form.a_indptr)
    indices = np.asarray(row_form.a_indices)
    data = np.asarray(row_form.a_data)

    # -- array lengths agree with the declared shape --------------------------
    for name, array, expect in (
        ("cost", cost, num_cols),
        ("lower", lower, num_cols),
        ("upper", upper, num_cols),
        ("row_lower", row_lower, num_rows),
        ("row_upper", row_upper, num_rows),
    ):
        if len(array) != expect:
            violations.append(f"{name} has length {len(array)}, expected {expect}")
    if len(indptr) != num_cols + 1:
        violations.append(f"a_indptr has length {len(indptr)}, expected {num_cols + 1}")
    if len(indices) != len(data):
        violations.append(
            f"a_indices ({len(indices)}) and a_data ({len(data)}) lengths differ"
        )

    # -- finiteness ------------------------------------------------------------
    _check_finite("cost", cost, violations, allow_inf=False)
    _check_finite("a_data", data, violations, allow_inf=False)
    _check_finite("lower", lower, violations, allow_inf=True)
    _check_finite("upper", upper, violations, allow_inf=True)
    _check_finite("row_lower", row_lower, violations, allow_inf=True)
    _check_finite("row_upper", row_upper, violations, allow_inf=True)

    # -- crossed bounds ---------------------------------------------------------
    if len(lower) == len(upper):
        crossed = lower > upper
        if crossed.any():
            where = int(np.flatnonzero(crossed)[0])
            violations.append(
                f"crossed column bounds lb>ub at column {where} "
                f"({lower[where]!r} > {upper[where]!r})"
            )
    if len(row_lower) == len(row_upper):
        crossed = row_lower > row_upper
        if crossed.any():
            where = int(np.flatnonzero(crossed)[0])
            violations.append(
                f"crossed row bounds lb>ub at row {where} "
                f"({row_lower[where]!r} > {row_upper[where]!r})"
            )

    # -- CSC structure ----------------------------------------------------------
    structure_ok = len(indptr) == num_cols + 1 and len(indices) == len(data)
    if structure_ok:
        if len(indptr) and indptr[0] != 0:
            violations.append(f"a_indptr must start at 0, got {int(indptr[0])}")
            structure_ok = False
        if len(indptr) and indptr[-1] != len(data):
            violations.append(
                f"a_indptr must end at nnz={len(data)}, got {int(indptr[-1])}"
            )
            structure_ok = False
        if np.any(np.diff(indptr) < 0):
            violations.append("a_indptr is not monotonically non-decreasing")
            structure_ok = False
    if structure_ok and len(indices):
        if indices.min() < 0 or indices.max() >= num_rows:
            violations.append(
                f"a_indices outside [0, {num_rows}): "
                f"min {int(indices.min())}, max {int(indices.max())}"
            )
            structure_ok = False

    # -- duplicate COO coordinates ----------------------------------------------
    if structure_ok and len(indices):
        entry_cols = np.repeat(np.arange(num_cols, dtype=np.int64), np.diff(indptr))
        keys = entry_cols * np.int64(max(num_rows, 1)) + indices.astype(np.int64)
        unique = np.unique(keys)
        if len(unique) != len(keys):
            sorted_keys = np.sort(keys)
            dup = sorted_keys[np.flatnonzero(np.diff(sorted_keys) == 0)[0]]
            violations.append(
                f"duplicate COO coordinate (row {int(dup % max(num_rows, 1))}, "
                f"col {int(dup // max(num_rows, 1))}): "
                "HiGHS sums duplicates, silently changing the model"
            )

    # -- empty rows / orphan columns --------------------------------------------
    if structure_ok and check_empty_rows:
        row_nnz = np.bincount(indices.astype(np.int64), minlength=num_rows) if num_rows else np.zeros(0, dtype=np.int64)
        empty = np.flatnonzero(row_nnz == 0)
        if len(empty) and len(row_lower) == num_rows and len(row_upper) == num_rows:
            violations.extend(_empty_row_violations(empty, row_lower, row_upper))
        col_nnz = np.diff(indptr) if len(indptr) == num_cols + 1 else None
        if (
            col_nnz is not None
            and len(cost) == num_cols
            and len(lower) == num_cols
            and len(upper) == num_cols
        ):
            # Orphan columns (no matrix entries) pinned at a point are by
            # design here: the uniform per-site blocks keep every variable
            # family present and fix unused ones to lb=ub=0 so that siting
            # moves stay pure range splices.  What is *never* legitimate is
            # an orphan whose cost pushes it toward an infinite bound — the
            # LP is unbounded by construction (cost is minimise-oriented:
            # RowFormLP negates for maximisation).
            orphan = (col_nnz == 0) & (
                ((cost < 0.0) & ~np.isfinite(upper)) | ((cost > 0.0) & ~np.isfinite(lower))
            )
            if orphan.any():
                where = int(np.flatnonzero(orphan)[0])
                violations.append(
                    f"orphan column {where} with no matrix entries and cost "
                    f"{cost[where]!r} toward an infinite bound (unbounded by "
                    "construction)"
                )
    return violations


def _empty_row_violations(
    empty: np.ndarray, row_lower: np.ndarray, row_upper: np.ndarray
) -> List[str]:
    """Violations for rows with no matrix entries.

    An empty row constrains 0: bounds excluding 0 make the whole LP
    infeasible by construction; bounds including 0 are dead weight that no
    assembly path here should ever emit.
    """
    infeasible = empty[(row_lower[empty] > 0.0) | (row_upper[empty] < 0.0)]
    if len(infeasible):
        return [
            f"empty row {int(infeasible[0])} with bounds excluding 0 "
            "(infeasible by construction)"
        ]
    return [
        f"{len(empty)} empty row(s) (first: {int(empty[0])}) with no matrix entries"
    ]


def validate_row_form(
    row_form: "RowFormLP", label: str = "row-form LP", *, check_empty_rows: bool = True
) -> None:
    """Raise :class:`LPValidationError` when ``row_form`` is malformed."""
    violations = row_form_violations(row_form, check_empty_rows=check_empty_rows)
    if violations:
        raise LPValidationError(label, violations)


def validate_block_offsets(
    stacked: "RowFormLP",
    col_offsets: np.ndarray,
    row_offsets: np.ndarray,
    num_blocks: int,
    label: str = "block-diagonal stack",
) -> None:
    """Validate a stacked LP plus its block boundaries.

    Beyond per-model soundness this asserts the block-diagonal contract that
    lets per-block objectives be read back from solution slices: boundary
    offsets are monotone, cover the stacked dimensions exactly, and no matrix
    entry of a block's columns escapes the block's row range.
    """
    violations = row_form_violations(stacked)
    col_offsets = np.asarray(col_offsets)
    row_offsets = np.asarray(row_offsets)
    if len(col_offsets) != num_blocks + 1 or len(row_offsets) != num_blocks + 1:
        violations.append(
            f"offset arrays must have {num_blocks + 1} entries, got "
            f"{len(col_offsets)}/{len(row_offsets)}"
        )
    else:
        if col_offsets[0] != 0 or col_offsets[-1] != stacked.shape[1]:
            violations.append("col_offsets do not cover the stacked columns")
        if row_offsets[0] != 0 or row_offsets[-1] != stacked.shape[0]:
            violations.append("row_offsets do not cover the stacked rows")
        if np.any(np.diff(col_offsets) < 0) or np.any(np.diff(row_offsets) < 0):
            violations.append("block offsets are not monotone")
        elif len(stacked.a_indices):
            indptr = np.asarray(stacked.a_indptr)
            indices = np.asarray(stacked.a_indices)
            if len(indptr) == stacked.shape[1] + 1 and indptr[-1] == len(indices):
                entry_cols = np.repeat(
                    np.arange(stacked.shape[1], dtype=np.int64), np.diff(indptr)
                )
                # Block index of each entry's column and row; they must agree.
                col_block = np.searchsorted(col_offsets, entry_cols, side="right") - 1
                row_block = np.searchsorted(row_offsets, indices, side="right") - 1
                escaped = col_block != row_block
                if escaped.any():
                    where = int(np.flatnonzero(escaped)[0])
                    violations.append(
                        f"matrix entry at (row {int(indices[where])}, col "
                        f"{int(entry_cols[where])}) crosses block boundaries — "
                        "the stack is not block-diagonal"
                    )
    if violations:
        raise LPValidationError(label, violations)


def validate_mutable_model(model: Any, label: str = "mutable HiGHS model") -> None:
    """Validate a :class:`MutableHighsModel`'s dimension/basis bookkeeping.

    Called on solve entry, i.e. after any sequence of in-place splices:

    * the tracked ``num_cols``/``num_rows`` must match what HiGHS actually
      holds (a drift means a splice miscounted an add/delete range);
    * the projected basis status arrays, when materialised, must match the
      tracked dimensions (a mismatch means padding after an add/delete range
      was skipped or mis-sized — installing such a basis corrupts the warm
      start silently, because HiGHS "repairs" it);
    * the spliced model's costs/bounds/values must be NaN-free with no
      crossed bounds, and every row whose bounds exclude 0 must have matrix
      entries — staged rows (loaded empty, filled by later ``add_cols``) must
      be covered by the time anything solves.
    """
    violations: List[str] = []
    highs = getattr(model, "_highs", None)
    actual_cols: Optional[int] = None
    actual_rows: Optional[int] = None
    if highs is not None:
        get_cols = getattr(highs, "getNumCol", None)
        get_rows = getattr(highs, "getNumRow", None)
        if callable(get_cols) and callable(get_rows):
            actual_cols = int(get_cols())
            actual_rows = int(get_rows())
    if actual_cols is not None and actual_cols != model.num_cols:
        violations.append(
            f"tracked num_cols={model.num_cols} but HiGHS holds {actual_cols} columns"
        )
    if actual_rows is not None and actual_rows != model.num_rows:
        violations.append(
            f"tracked num_rows={model.num_rows} but HiGHS holds {actual_rows} rows"
        )
    col_status = getattr(model, "_col_status", None)
    row_status = getattr(model, "_row_status", None)
    if col_status is not None and len(col_status) != model.num_cols:
        violations.append(
            f"projected basis has {len(col_status)} column statuses for "
            f"{model.num_cols} columns (basis padding after a splice drifted)"
        )
    if row_status is not None and len(row_status) != model.num_rows:
        violations.append(
            f"projected basis has {len(row_status)} row statuses for "
            f"{model.num_rows} rows (basis padding after a splice drifted)"
        )
    get_lp = getattr(highs, "getLp", None) if highs is not None else None
    if callable(get_lp):
        violations.extend(_live_lp_violations(get_lp()))
    if violations:
        raise LPValidationError(label, violations)


def _live_lp_violations(lp: Any) -> List[str]:
    """Structural violations of the LP HiGHS currently holds (post-splice)."""
    violations: List[str] = []
    num_rows = int(lp.num_row_)
    cost = np.asarray(lp.col_cost_, dtype=float)
    lower = np.asarray(lp.col_lower_, dtype=float)
    upper = np.asarray(lp.col_upper_, dtype=float)
    row_lower = np.asarray(lp.row_lower_, dtype=float)
    row_upper = np.asarray(lp.row_upper_, dtype=float)
    values = np.asarray(lp.a_matrix_.value_, dtype=float)
    _check_finite("spliced cost", cost, violations, allow_inf=False)
    _check_finite("spliced a_data", values, violations, allow_inf=False)
    _check_finite("spliced lower", lower, violations, allow_inf=True)
    _check_finite("spliced upper", upper, violations, allow_inf=True)
    _check_finite("spliced row_lower", row_lower, violations, allow_inf=True)
    _check_finite("spliced row_upper", row_upper, violations, allow_inf=True)
    if len(lower) == len(upper) and (lower > upper).any():
        where = int(np.flatnonzero(lower > upper)[0])
        violations.append(
            f"spliced crossed column bounds lb>ub at column {where} "
            f"({lower[where]!r} > {upper[where]!r})"
        )
    if len(row_lower) == len(row_upper) and (row_lower > row_upper).any():
        where = int(np.flatnonzero(row_lower > row_upper)[0])
        violations.append(
            f"spliced crossed row bounds lb>ub at row {where} "
            f"({row_lower[where]!r} > {row_upper[where]!r})"
        )
    # Row coverage: the matrix may be held row- or column-wise after edits.
    starts = np.asarray(lp.a_matrix_.start_, dtype=np.int64)
    indices = np.asarray(lp.a_matrix_.index_, dtype=np.int64)
    matrix_format = getattr(lp.a_matrix_, "format_", None)
    row_nnz: Optional[np.ndarray] = None
    if "Row" in str(getattr(matrix_format, "name", matrix_format)):
        if len(starts) == num_rows + 1:
            row_nnz = np.diff(starts)
    elif num_rows:
        row_nnz = np.bincount(indices, minlength=num_rows)
    if row_nnz is not None and len(row_lower) == num_rows and len(row_upper) == num_rows:
        empty = np.flatnonzero(row_nnz == 0)
        infeasible = empty[(row_lower[empty] > 0.0) | (row_upper[empty] < 0.0)]
        if len(infeasible):
            violations.append(
                f"spliced empty row {int(infeasible[0])} with bounds excluding 0 "
                "(a staged or spliced row was never filled)"
            )
    return violations
