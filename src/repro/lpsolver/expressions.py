"""Variables, linear expressions and constraints for the LP/MILP layer.

The representation is deliberately simple: a :class:`LinearExpression` is a
mapping from variable index to coefficient plus a constant term.  All the
arithmetic operators needed to write readable model-building code are
supported (``+``, ``-``, ``*`` by scalars, ``/`` by scalars, ``sum()``),
and comparison operators build :class:`Constraint` objects.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Union

Number = Union[int, float]


class VariableKind(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LESS_EQUAL = "<="
    GREATER_EQUAL = ">="
    EQUAL = "=="


@dataclass(frozen=True)
class Variable:
    """A decision variable registered in a :class:`~repro.lpsolver.model.Model`.

    Variables are immutable handles; their bounds and kind live in the model
    that created them.  They behave as linear expressions in arithmetic.
    """

    name: str
    index: int
    kind: VariableKind = VariableKind.CONTINUOUS

    def to_expression(self) -> "LinearExpression":
        """Return this variable as a single-term linear expression."""
        return LinearExpression({self.index: 1.0}, 0.0)

    # -- arithmetic delegating to LinearExpression ---------------------------
    def __add__(self, other: "ExpressionLike") -> "LinearExpression":
        return self.to_expression() + other

    def __radd__(self, other: "ExpressionLike") -> "LinearExpression":
        return self.to_expression() + other

    def __sub__(self, other: "ExpressionLike") -> "LinearExpression":
        return self.to_expression() - other

    def __rsub__(self, other: "ExpressionLike") -> "LinearExpression":
        return (-self.to_expression()) + other

    def __mul__(self, factor: Number) -> "LinearExpression":
        return self.to_expression() * factor

    def __rmul__(self, factor: Number) -> "LinearExpression":
        return self.to_expression() * factor

    def __truediv__(self, divisor: Number) -> "LinearExpression":
        return self.to_expression() / divisor

    def __neg__(self) -> "LinearExpression":
        return -self.to_expression()

    def __le__(self, other: "ExpressionLike") -> "Constraint":
        return self.to_expression() <= other

    def __ge__(self, other: "ExpressionLike") -> "Constraint":
        return self.to_expression() >= other

    def __eq__(self, other: object) -> object:  # type: ignore[override]
        if isinstance(other, (Variable, LinearExpression, int, float)):
            return self.to_expression() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.index))

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, index={self.index}, kind={self.kind.value})"


ExpressionLike = Union["LinearExpression", Variable, Number]


class LinearExpression:
    """An affine expression ``sum(coeff[i] * x_i) + constant``."""

    __slots__ = ("coefficients", "constant")

    def __init__(
        self,
        coefficients: Mapping[int, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self.coefficients: Dict[int, float] = dict(coefficients or {})
        self.constant = float(constant)

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def from_value(value: ExpressionLike) -> "LinearExpression":
        """Coerce a variable, number or expression into a LinearExpression."""
        if isinstance(value, LinearExpression):
            return value.copy()
        if isinstance(value, Variable):
            return value.to_expression()
        if isinstance(value, (int, float)):
            if math.isnan(value):
                raise ValueError("cannot build a linear expression from NaN")
            return LinearExpression({}, float(value))
        raise TypeError(f"cannot interpret {value!r} as a linear expression")

    @staticmethod
    def sum(terms: Iterable[ExpressionLike]) -> "LinearExpression":
        """Sum an iterable of expression-like values efficiently."""
        total = LinearExpression()
        for term in terms:
            total._iadd(LinearExpression.from_value(term), 1.0)
        return total

    def copy(self) -> "LinearExpression":
        return LinearExpression(self.coefficients, self.constant)

    # -- internal in-place accumulation ---------------------------------------
    def _iadd(self, other: "LinearExpression", sign: float) -> None:
        for index, coeff in other.coefficients.items():
            new = self.coefficients.get(index, 0.0) + sign * coeff
            if new == 0.0:  # reprolint: ok(FLT001) sparsity bookkeeping on exact input coefficients
                self.coefficients.pop(index, None)
            else:
                self.coefficients[index] = new
        self.constant += sign * other.constant

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other: ExpressionLike) -> "LinearExpression":
        if (type(other) is float or type(other) is int) and other == other:
            # Fast path: adding a plain (non-NaN) number only shifts the constant.
            return LinearExpression(self.coefficients, self.constant + other)
        result = self.copy()
        result._iadd(LinearExpression.from_value(other), 1.0)
        return result

    def __radd__(self, other: ExpressionLike) -> "LinearExpression":
        return self.__add__(other)

    def __sub__(self, other: ExpressionLike) -> "LinearExpression":
        if (type(other) is float or type(other) is int) and other == other:
            return LinearExpression(self.coefficients, self.constant - other)
        result = self.copy()
        result._iadd(LinearExpression.from_value(other), -1.0)
        return result

    def __rsub__(self, other: ExpressionLike) -> "LinearExpression":
        result = -self
        result._iadd(LinearExpression.from_value(other), 1.0)
        return result

    def __mul__(self, factor: Number) -> "LinearExpression":
        if not isinstance(factor, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        scaled = {i: c * factor for i, c in self.coefficients.items() if c * factor != 0.0}  # reprolint: ok(FLT001) sparsity bookkeeping on exact input coefficients
        return LinearExpression(scaled, self.constant * factor)

    def __rmul__(self, factor: Number) -> "LinearExpression":
        return self.__mul__(factor)

    def __truediv__(self, divisor: Number) -> "LinearExpression":
        if divisor == 0:
            raise ZeroDivisionError("division of a linear expression by zero")
        return self.__mul__(1.0 / divisor)

    def __neg__(self) -> "LinearExpression":
        return self.__mul__(-1.0)

    # -- comparisons build constraints -----------------------------------------
    def __le__(self, other: ExpressionLike) -> "Constraint":
        return Constraint(self - other, ConstraintSense.LESS_EQUAL)

    def __ge__(self, other: ExpressionLike) -> "Constraint":
        return Constraint(self - other, ConstraintSense.GREATER_EQUAL)

    def __eq__(self, other: object) -> object:  # type: ignore[override]
        if isinstance(other, (LinearExpression, Variable, int, float)):
            return Constraint(self - other, ConstraintSense.EQUAL)
        return NotImplemented

    def __hash__(self) -> int:  # expressions are mutable; identity hash
        return id(self)

    # -- evaluation -------------------------------------------------------------
    def evaluate(self, values: Mapping[int, float]) -> float:
        """Evaluate the expression given variable values keyed by index."""
        total = self.constant
        for index, coeff in self.coefficients.items():
            total += coeff * values.get(index, 0.0)
        return total

    def is_constant(self) -> bool:
        return not self.coefficients

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coefficients.items()))
        if not terms:
            return f"LinearExpression({self.constant:g})"
        if self.constant:
            return f"LinearExpression({terms} + {self.constant:g})"
        return f"LinearExpression({terms})"


@dataclass
class Constraint:
    """A linear constraint ``expression (<=, >=, ==) 0``.

    The right-hand side is folded into the expression's constant term when the
    constraint is created through comparison operators, i.e. ``a <= b`` becomes
    ``(a - b) <= 0``.
    """

    expression: LinearExpression
    sense: ConstraintSense
    name: str = field(default="")

    def named(self, name: str) -> "Constraint":
        """Return the same constraint with a human-readable name attached."""
        self.name = name
        return self

    @property
    def rhs(self) -> float:
        """Right-hand side once the constant term is moved across."""
        return -self.expression.constant

    def coefficient_items(self) -> Iterable[tuple[int, float]]:
        """Iterate over ``(variable_index, coefficient)`` pairs."""
        return self.expression.coefficients.items()

    def is_trivially_feasible(self) -> bool:
        """True when the constraint has no variables and already holds."""
        if not self.expression.is_constant():
            return False
        value = self.expression.constant
        if self.sense is ConstraintSense.LESS_EQUAL:
            return value <= 1e-9
        if self.sense is ConstraintSense.GREATER_EQUAL:
            return value >= -1e-9
        return abs(value) <= 1e-9

    def violation(self, values: Mapping[int, float]) -> float:
        """Amount by which the constraint is violated for ``values`` (>= 0)."""
        value = self.expression.evaluate(values)
        if self.sense is ConstraintSense.LESS_EQUAL:
            return max(0.0, value)
        if self.sense is ConstraintSense.GREATER_EQUAL:
            return max(0.0, -value)
        return abs(value)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Constraint({self.expression!r} {self.sense.value} 0{label})"
