"""Linear and mixed-integer linear programming modelling layer.

The siting/provisioning framework of the paper is expressed as a MILP
(Fig. 1) and, after the heuristic fixes the siting decision, as a sequence
of LPs.  The original authors used an off-the-shelf commercial solver; this
subpackage provides the substrate we use instead: a small, typed modelling
language (variables, linear expressions, constraints, objective) that is
compiled to sparse matrices and solved with SciPy's HiGHS backends
(``scipy.optimize.linprog`` for pure LPs, ``scipy.optimize.milp`` when any
variable is integer or boolean).

Typical usage::

    from repro.lpsolver import Model

    model = Model("example", sense="min")
    x = model.add_variable("x", lower=0.0)
    y = model.add_variable("y", lower=0.0)
    model.add_constraint(x + 2 * y >= 4, name="demand")
    model.set_objective(3 * x + 5 * y)
    result = model.solve()
    assert result.is_optimal
    print(result.value(x), result.value(y), result.objective)
"""

from repro.lpsolver.expressions import (
    Constraint,
    ConstraintSense,
    LinearExpression,
    Variable,
    VariableKind,
)
from repro.lpsolver.model import Model, ModelError
from repro.lpsolver.result import SolveResult, SolveStatus
from repro.lpsolver.solvers import SolverOptions, solve_model

__all__ = [
    "Constraint",
    "ConstraintSense",
    "LinearExpression",
    "Model",
    "ModelError",
    "SolveResult",
    "SolveStatus",
    "SolverOptions",
    "Variable",
    "VariableKind",
    "solve_model",
]
