"""Linear and mixed-integer linear programming modelling layer.

The siting/provisioning framework of the paper is expressed as a MILP
(Fig. 1) and, after the heuristic fixes the siting decision, as a sequence
of LPs.  The original authors used an off-the-shelf commercial solver; this
subpackage provides the substrate we use instead: a small, typed modelling
language (variables, linear expressions, constraints, objective) compiled
directly to :mod:`scipy.sparse` matrices.

Two constraint-building styles compose freely:

* the readable object API (``x + 2 * y >= 4``) for small models, and
* the vectorized block API — :meth:`Model.add_variable_array` plus
  :meth:`Model.add_linear_block` with COO triplet arrays — which ingests a
  whole per-epoch constraint family in one call and is what keeps the
  provisioning hot path out of Python-level dict arithmetic.

Continuous LPs are solved by the direct HiGHS backend
(:mod:`repro.lpsolver.highs_backend`), which feeds the compiled
:class:`RowFormLP` straight into SciPy's bundled HiGHS bindings and supports
basis warm-starting across structurally identical solves via
:class:`HighsSolveContext`.  ``SolverOptions(backend="linprog")`` forces the
``scipy.optimize.linprog`` wrapper (used for differential testing), and
models with integer variables go to ``scipy.optimize.milp``.

Typical usage::

    from repro.lpsolver import Model

    model = Model("example", sense="min")
    x = model.add_variable("x", lower=0.0)
    y = model.add_variable("y", lower=0.0)
    model.add_constraint(x + 2 * y >= 4, name="demand")
    model.set_objective(3 * x + 5 * y)
    result = model.solve()
    assert result.is_optimal
    print(result.value(x), result.value(y), result.objective)

Batched usage (one constraint family, many rows)::

    import numpy as np
    from repro.lpsolver import ConstraintSense, Model

    model = Model("batched", sense="min")
    idx = model.add_variable_array([f"x[{t}]" for t in range(96)])
    model.add_linear_block(
        rows=np.arange(96), cols=idx, vals=np.ones(96),
        sense=ConstraintSense.GREATER_EQUAL, rhs=np.full(96, 2.0),
        name="floor",
    )
"""

from repro.lpsolver.blocks import LinearConstraintBlock
from repro.lpsolver.expressions import (
    Constraint,
    ConstraintSense,
    LinearExpression,
    Variable,
    VariableKind,
)
from repro.lpsolver.batch import stack_block_diagonal
from repro.lpsolver.highs_backend import HighsSolveContext
from repro.lpsolver.model import CompiledModel, Model, ModelError, RowFormLP
from repro.lpsolver.result import SolveResult, SolveStatus, SolverStatusError
from repro.lpsolver.solvers import SolverOptions, solve_model
from repro.lpsolver.validate import (
    LPValidationError,
    validate_row_form,
    validation_enabled,
)

__all__ = [
    "CompiledModel",
    "Constraint",
    "ConstraintSense",
    "HighsSolveContext",
    "LPValidationError",
    "LinearConstraintBlock",
    "LinearExpression",
    "Model",
    "ModelError",
    "RowFormLP",
    "SolveResult",
    "SolveStatus",
    "SolverOptions",
    "SolverStatusError",
    "Variable",
    "VariableKind",
    "solve_model",
    "stack_block_diagonal",
    "validate_row_form",
    "validation_enabled",
]
