"""Direct HiGHS backend for continuous LPs.

``scipy.optimize.linprog`` adds several milliseconds of validation and
conversion overhead per call, which dominates when the siting heuristic
solves thousands of small provisioning LPs.  SciPy ships the HiGHS python
bindings it uses internally (``scipy.optimize._highspy``); this module feeds
a :class:`~repro.lpsolver.model.RowFormLP` straight into a ``HighsLp`` —
CSC arrays, row bounds and column bounds, no dense intermediates and no
input re-validation.

The backend is optional: when the bundled bindings are missing (old SciPy),
:data:`AVAILABLE` is False and :func:`repro.lpsolver.solvers.solve_model`
falls back to ``linprog`` transparently.

Warm starts
-----------
A :class:`HighsSolveContext` keeps the HiGHS instance and the optimal basis
of the previous solve.  When the next LP has the same shape — e.g. the
location filter pricing the *same* single-site model structure at every
candidate location — the stored basis is installed before ``run`` and the
dual simplex typically re-converges in a handful of iterations (~2x faster
end-to-end on the pricing sweep).  A context must only ever be used from one
thread at a time; concurrent sweeps should create one context per worker.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.lpsolver.model import RowFormLP
from repro.lpsolver.result import SolveResult, SolveStatus

try:  # pragma: no cover - exercised implicitly by every solve
    import scipy.optimize._highspy._core as _core
    from scipy.optimize._highspy import _highs_options as _options_mod

    AVAILABLE = True
except Exception:  # pragma: no cover - old/api-shifted scipy
    _core = None
    _options_mod = None
    AVAILABLE = False


class HighsSolveContext:
    """Reusable HiGHS instance with basis carry-over between solves.

    Reusing the basis is only attempted when the new LP has exactly the same
    number of columns and rows as the previous one; otherwise the solver
    starts cold.  The objective value of a warm-started solve is identical to
    a cold solve (the LP optimum is unique in value), only the time to reach
    it changes.
    """

    def __init__(self) -> None:
        if not AVAILABLE:  # pragma: no cover - guarded by callers
            raise RuntimeError("the direct HiGHS backend is not available in this SciPy")
        self._highs = _core._Highs()
        self._highs.setOptionValue("output_flag", False)
        self._basis = None
        self._shape: Optional[Tuple[int, int]] = None

    def take_basis(self, shape: Tuple[int, int]):
        """Return the stored basis when it matches ``shape``, else None."""
        if self._basis is not None and self._shape == shape:
            return self._basis
        return None

    def store_basis(self, shape: Tuple[int, int], basis) -> None:
        self._basis = basis
        self._shape = shape


if AVAILABLE:
    _STATUS_MAP = {
        _core.HighsModelStatus.kOptimal: SolveStatus.OPTIMAL,
        _core.HighsModelStatus.kInfeasible: SolveStatus.INFEASIBLE,
        _core.HighsModelStatus.kUnbounded: SolveStatus.UNBOUNDED,
        _core.HighsModelStatus.kUnboundedOrInfeasible: SolveStatus.UNBOUNDED,
        _core.HighsModelStatus.kTimeLimit: SolveStatus.ITERATION_LIMIT,
        _core.HighsModelStatus.kIterationLimit: SolveStatus.ITERATION_LIMIT,
    }
else:  # pragma: no cover
    _STATUS_MAP = {}


def _build_lp(row_form: RowFormLP):
    lp = _core.HighsLp()
    num_row, num_col = row_form.shape
    lp.num_col_ = num_col
    lp.num_row_ = num_row
    lp.col_cost_ = row_form.cost
    lp.col_lower_ = row_form.lower
    lp.col_upper_ = row_form.upper
    lp.row_lower_ = row_form.row_lower
    lp.row_upper_ = row_form.row_upper
    lp.a_matrix_.num_col_ = num_col
    lp.a_matrix_.num_row_ = num_row
    lp.a_matrix_.format_ = _core.MatrixFormat.kColwise
    lp.a_matrix_.start_ = row_form.a_indptr
    lp.a_matrix_.index_ = row_form.a_indices
    lp.a_matrix_.value_ = row_form.a_data
    return lp


def solve_row_form(
    row_form: RowFormLP,
    options: "SolverOptions",
    context: Optional[HighsSolveContext] = None,
) -> SolveResult:
    """Solve a continuous LP in row form with HiGHS directly.

    Integrality declarations are ignored (callers route MILPs to
    ``scipy.optimize.milp``; the heuristic deliberately solves relaxations).
    """
    highs = context._highs if context is not None else _core._Highs()
    if context is None:
        highs.setOptionValue("output_flag", False)
    # Contexts are reused across calls that may carry different options, so
    # every option is (re)set explicitly — nothing may leak between solves.
    highs.setOptionValue("presolve", "choose" if options.presolve else "off")
    highs.setOptionValue(
        "time_limit", float(options.time_limit) if options.time_limit is not None else float("inf")
    )

    shape = (row_form.num_variables, row_form.num_rows)
    highs.passModel(_build_lp(row_form))
    if context is not None:
        basis = context.take_basis(shape)
        if basis is not None:
            highs.setBasis(basis)
    highs.run()

    raw_status = highs.getModelStatus()
    status = _STATUS_MAP.get(raw_status, SolveStatus.ERROR)
    message = highs.modelStatusToString(raw_status)
    iterations = int(getattr(highs.getInfo(), "simplex_iteration_count", 0) or 0)

    if status is SolveStatus.OPTIMAL:
        x = np.asarray(highs.getSolution().col_value, dtype=float)
        raw = float(highs.getObjectiveValue())
        objective = (-raw if row_form.maximise else raw) + row_form.objective_constant
        if context is not None:
            context.store_basis(shape, highs.getBasis())
    else:
        x = None
        objective = float("nan")
    return SolveResult(
        status=status,
        objective=objective,
        message=message,
        solver="highs-direct",
        iterations=iterations,
        x=x,
    )
