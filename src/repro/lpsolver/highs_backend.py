"""Direct HiGHS backend for continuous LPs.

``scipy.optimize.linprog`` adds several milliseconds of validation and
conversion overhead per call, which dominates when the siting heuristic
solves thousands of small provisioning LPs.  SciPy ships the HiGHS python
bindings it uses internally (``scipy.optimize._highspy``); this module feeds
a :class:`~repro.lpsolver.model.RowFormLP` straight into a ``HighsLp`` —
CSC arrays, row bounds and column bounds, no dense intermediates and no
input re-validation.

The backend is optional: when the bundled bindings are missing (old SciPy),
:data:`AVAILABLE` is False and :func:`repro.lpsolver.solvers.solve_model`
falls back to ``linprog`` transparently.

Warm starts
-----------
A :class:`HighsSolveContext` keeps the HiGHS instance and the optimal basis
of the previous solve.  When the next LP has the same shape — e.g. the
location filter pricing the *same* single-site model structure at every
candidate location — the stored basis is installed before ``run`` and the
dual simplex typically re-converges in a handful of iterations (~2x faster
end-to-end on the pricing sweep).  A context must only ever be used from one
thread at a time; concurrent sweeps should create one context per worker.

In-place mutation
-----------------
:class:`MutableHighsModel` goes one step further: instead of re-passing the
whole LP for every solve (``passModel`` throws away the scaled matrix and the
simplex factorisation, a fixed ~1 ms on the provisioning LPs), the loaded
model is *edited* between solves through HiGHS's modification API — add or
delete column and row ranges, change costs, bounds and single coefficients.
The previous optimal basis is carried across structural edits by explicit
padding/projection: retained columns and rows keep their statuses, new
columns enter nonbasic at a finite bound and new rows enter with a basic
slack.  When deletions make the projected basis non-square it is installed
as an "alien" basis that HiGHS repairs, which is still far cheaper than a
cold start.  The siting search uses this to express its add/remove/swap
moves as deltas on one persistent per-chain model.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.lpsolver import validate as _validate
from repro.lpsolver.model import RowFormLP
from repro.lpsolver.result import SolveResult, SolveStatus, SolverStatusError  # noqa: F401

try:  # pragma: no cover - exercised implicitly by every solve
    import scipy.optimize._highspy._core as _core
    from scipy.optimize._highspy import _highs_options as _options_mod

    AVAILABLE = True
except Exception:  # pragma: no cover - old/api-shifted scipy
    _core = None
    _options_mod = None
    AVAILABLE = False


class HighsSolveContext:
    """Reusable HiGHS instance with basis carry-over between solves.

    Reusing the basis is only attempted when the new LP has exactly the same
    number of columns and rows as the previous one; otherwise the solver
    starts cold.  The objective value of a warm-started solve is identical to
    a cold solve (the LP optimum is unique in value), only the time to reach
    it changes.
    """

    def __init__(self) -> None:
        if not AVAILABLE:  # pragma: no cover - guarded by callers
            raise RuntimeError("the direct HiGHS backend is not available in this SciPy")
        self._highs = _core._Highs()
        self._highs.setOptionValue("output_flag", False)
        self._basis = None
        self._shape: Optional[Tuple[int, int]] = None

    def take_basis(self, shape: Tuple[int, int]) -> Optional[Any]:
        """Return the stored basis when it matches ``shape``, else None."""
        if self._basis is not None and self._shape == shape:
            return self._basis
        return None

    def store_basis(self, shape: Tuple[int, int], basis: Any) -> None:
        self._basis = basis
        self._shape = shape


if AVAILABLE:
    _STATUS_MAP = {
        _core.HighsModelStatus.kOptimal: SolveStatus.OPTIMAL,
        _core.HighsModelStatus.kInfeasible: SolveStatus.INFEASIBLE,
        _core.HighsModelStatus.kUnbounded: SolveStatus.UNBOUNDED,
        _core.HighsModelStatus.kUnboundedOrInfeasible: SolveStatus.UNBOUNDED,
        _core.HighsModelStatus.kTimeLimit: SolveStatus.ITERATION_LIMIT,
        _core.HighsModelStatus.kIterationLimit: SolveStatus.ITERATION_LIMIT,
    }
    #: Basis statuses indexed by their integer value, for fast int -> enum
    #: conversion when (re)installing a projected basis.
    _BASIS_STATUSES = sorted(
        _core.HighsBasisStatus.__members__.values(), key=lambda s: int(s)
    )
    _BASIC = int(_core.HighsBasisStatus.kBasic)
    _LOWER = int(_core.HighsBasisStatus.kLower)
    _UPPER = int(_core.HighsBasisStatus.kUpper)
    _ZERO = int(_core.HighsBasisStatus.kZero)
else:  # pragma: no cover
    _STATUS_MAP = {}
    _BASIS_STATUSES = []
    _BASIC = _LOWER = _UPPER = _ZERO = 0


def _build_lp(row_form: RowFormLP) -> Any:
    lp = _core.HighsLp()
    num_row, num_col = row_form.shape
    lp.num_col_ = num_col
    lp.num_row_ = num_row
    lp.col_cost_ = row_form.cost
    lp.col_lower_ = row_form.lower
    lp.col_upper_ = row_form.upper
    lp.row_lower_ = row_form.row_lower
    lp.row_upper_ = row_form.row_upper
    lp.a_matrix_.num_col_ = num_col
    lp.a_matrix_.num_row_ = num_row
    lp.a_matrix_.format_ = _core.MatrixFormat.kColwise
    lp.a_matrix_.start_ = row_form.a_indptr
    lp.a_matrix_.index_ = row_form.a_indices
    lp.a_matrix_.value_ = row_form.a_data
    return lp


def solve_row_form(
    row_form: RowFormLP,
    options: "SolverOptions",
    context: Optional[HighsSolveContext] = None,
    check: bool = False,
) -> SolveResult:
    """Solve a continuous LP in row form with HiGHS directly.

    Integrality declarations are ignored (callers route MILPs to
    ``scipy.optimize.milp``; the heuristic deliberately solves relaxations).

    With ``check=True`` a non-optimal status raises
    :class:`~repro.lpsolver.result.SolverStatusError` instead of returning a
    ``nan`` objective — for callers that cannot tolerate silently acting on a
    failed solve.  The siting search keeps ``check=False``: infeasible
    candidate sitings are a legitimate outcome there, not an error.
    """
    highs = context._highs if context is not None else _core._Highs()
    if context is None:
        highs.setOptionValue("output_flag", False)
    # Contexts are reused across calls that may carry different options, so
    # every option is (re)set explicitly — nothing may leak between solves.
    highs.setOptionValue("presolve", "choose" if options.presolve else "off")
    highs.setOptionValue(
        "time_limit", float(options.time_limit) if options.time_limit is not None else float("inf")
    )

    shape = (row_form.num_variables, row_form.num_rows)
    highs.passModel(_build_lp(row_form))
    if context is not None:
        basis = context.take_basis(shape)
        if basis is not None:
            highs.setBasis(basis)
    highs.run()

    raw_status = highs.getModelStatus()
    status = _STATUS_MAP.get(raw_status, SolveStatus.ERROR)
    message = highs.modelStatusToString(raw_status)
    iterations = int(getattr(highs.getInfo(), "simplex_iteration_count", 0) or 0)

    if status is SolveStatus.OPTIMAL:
        x = np.asarray(highs.getSolution().col_value, dtype=float)
        raw = float(highs.getObjectiveValue())
        objective = (-raw if row_form.maximise else raw) + row_form.objective_constant
        if context is not None:
            context.store_basis(shape, highs.getBasis())
    else:
        x = None
        objective = float("nan")
    result = SolveResult(
        status=status,
        objective=objective,
        message=message,
        solver="highs-direct",
        iterations=iterations,
        x=x,
    )
    return result.raise_for_status() if check else result


class MutableHighsModel:
    """One HiGHS instance whose loaded LP is mutated in place between solves.

    The model starts from :meth:`load` (a cold ``passModel``) and is then
    edited through :meth:`add_cols`/:meth:`add_rows`/:meth:`delete_cols`/
    :meth:`delete_rows`/:meth:`change_col_costs`/:meth:`change_col_bounds`/
    :meth:`change_row_bounds`.  Between solves the previous optimal basis is
    projected onto the mutated dimensions and re-installed, so the simplex
    warm-starts even across structural changes:

    * retained columns and rows keep their basis statuses,
    * new columns enter nonbasic at a finite bound (``kZero`` when free),
    * new rows enter with their slack basic,
    * when deletions removed basic columns (or nonbasic rows) the projection
      is no longer a square basis; it is installed with ``alien=True`` and
      HiGHS repairs it, which still preserves most of the basis information.

    Instances are not thread-safe: one mutable model per annealing chain.
    """

    def __init__(self) -> None:
        if not AVAILABLE:  # pragma: no cover - guarded by callers
            raise RuntimeError("the direct HiGHS backend is not available in this SciPy")
        self._highs = _core._Highs()
        self._highs.setOptionValue("output_flag", False)
        self.num_cols = 0
        self.num_rows = 0
        # The basis travels in two forms.  ``_basis_obj`` is the native
        # HighsBasis of the last optimal solve (or one restored by the
        # caller): installing it costs nothing in Python.  ``_col_status``/
        # ``_row_status`` are int arrays used only to *project* the basis
        # across structural edits — they are derived lazily from the native
        # object on the first edit, padded/filtered as columns and rows come
        # and go, and converted back (the slow path) only when a projected
        # basis actually has to be installed.
        self._basis_obj = None
        self._projection_dirty = False
        self._col_status: Optional[np.ndarray] = None
        self._row_status: Optional[np.ndarray] = None

    def _ensure_status_arrays(self) -> bool:
        """Materialise the int status arrays from the native basis object."""
        if self._col_status is not None and self._row_status is not None:
            return True
        if self._basis_obj is None:
            return False
        self._col_status = np.fromiter(
            (int(s) for s in self._basis_obj.col_status), dtype=np.int32
        )
        self._row_status = np.fromiter(
            (int(s) for s in self._basis_obj.row_status), dtype=np.int32
        )
        return True

    # -- structural edits -------------------------------------------------------
    def load(self, row_form: RowFormLP) -> None:
        """Replace the loaded model wholesale (cold start)."""
        if _validate.validation_enabled():
            # Empty rows are legal here: the incremental evaluator loads the
            # coupling rows empty and splices site columns in afterwards.
            # Solve entry re-checks coverage on the live model.
            _validate.validate_row_form(
                row_form, "MutableHighsModel.load", check_empty_rows=False
            )
        self._highs.passModel(_build_lp(row_form))
        self.num_rows, self.num_cols = row_form.shape
        self._basis_obj = None
        self._projection_dirty = False
        self._col_status = None
        self._row_status = None

    def add_cols(
        self,
        cost: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        starts: np.ndarray,
        row_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Append columns; matrix entries may reference any existing row."""
        count = len(cost)
        self._highs.addCols(
            count,
            np.ascontiguousarray(cost, dtype=np.float64),
            np.ascontiguousarray(lower, dtype=np.float64),
            np.ascontiguousarray(upper, dtype=np.float64),
            len(values),
            np.ascontiguousarray(starts, dtype=np.int32),
            np.ascontiguousarray(row_indices, dtype=np.int32),
            np.ascontiguousarray(values, dtype=np.float64),
        )
        if self._ensure_status_arrays():
            # Nonbasic at a finite bound; free columns sit at zero.
            padding = np.where(
                np.isfinite(lower), _LOWER, np.where(np.isfinite(upper), _UPPER, _ZERO)
            ).astype(np.int32)
            self._col_status = np.concatenate([self._col_status, padding])
            self._projection_dirty = True
        self.num_cols += count

    def add_rows(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        starts: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Append rows; matrix entries may reference any existing column."""
        count = len(lower)
        self._highs.addRows(
            count,
            np.ascontiguousarray(lower, dtype=np.float64),
            np.ascontiguousarray(upper, dtype=np.float64),
            len(values),
            np.ascontiguousarray(starts, dtype=np.int32),
            np.ascontiguousarray(col_indices, dtype=np.int32),
            np.ascontiguousarray(values, dtype=np.float64),
        )
        if self._ensure_status_arrays():
            padding = np.full(count, _BASIC, dtype=np.int32)
            self._row_status = np.concatenate([self._row_status, padding])
            self._projection_dirty = True
        self.num_rows += count

    def delete_cols(self, indices: np.ndarray) -> None:
        indices = np.ascontiguousarray(np.sort(indices), dtype=np.int32)
        self._highs.deleteCols(len(indices), indices)
        if self._ensure_status_arrays():
            self._col_status = np.delete(self._col_status, indices)
            self._projection_dirty = True
        self.num_cols -= len(indices)

    def delete_rows(self, indices: np.ndarray) -> None:
        indices = np.ascontiguousarray(np.sort(indices), dtype=np.int32)
        self._highs.deleteRows(len(indices), indices)
        if self._ensure_status_arrays():
            self._row_status = np.delete(self._row_status, indices)
            self._projection_dirty = True
        self.num_rows -= len(indices)

    # -- value edits ------------------------------------------------------------
    def change_col_costs(self, indices: np.ndarray, costs: np.ndarray) -> None:
        self._highs.changeColsCost(
            len(indices),
            np.ascontiguousarray(indices, dtype=np.int32),
            np.ascontiguousarray(costs, dtype=np.float64),
        )

    def change_col_bounds(
        self, indices: np.ndarray, lower: np.ndarray, upper: np.ndarray
    ) -> None:
        self._highs.changeColsBounds(
            len(indices),
            np.ascontiguousarray(indices, dtype=np.int32),
            np.ascontiguousarray(lower, dtype=np.float64),
            np.ascontiguousarray(upper, dtype=np.float64),
        )

    def change_row_bounds(self, index: int, lower: float, upper: float) -> None:
        self._highs.changeRowBounds(int(index), float(lower), float(upper))

    def change_coeff(self, row: int, col: int, value: float) -> None:
        self._highs.changeCoeff(int(row), int(col), float(value))

    # -- basis transfer ----------------------------------------------------------
    def capture_block_status(
        self, col_start: int, col_stop: int, row_start: int, row_stop: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Int basis statuses of a column/row block, or None when cold.

        Callers use this to remember the statuses of a block about to be
        deleted (a leaving site, an expiring horizon step) so they can be
        transplanted onto a structurally identical replacement block with
        :meth:`overlay_block_status` — the "per-block basis memory" idea.
        """
        if not self._ensure_status_arrays():
            return None
        return (
            self._col_status[col_start:col_stop].copy(),
            self._row_status[row_start:row_stop].copy(),
        )

    def overlay_block_status(
        self,
        col_start: int,
        col_status: np.ndarray,
        row_start: int,
        row_status: np.ndarray,
    ) -> None:
        """Overwrite the projected statuses of a block with captured ones.

        The overlay usually makes the projected basis non-square (the
        transplanted block brings its own basic columns), so it is installed
        as an alien basis that HiGHS repairs — the point is preserving the
        block-local structure of the basis, not its exact squareness.
        """
        if not self._ensure_status_arrays():
            return
        self._col_status[col_start : col_start + len(col_status)] = col_status
        self._row_status[row_start : row_start + len(row_status)] = row_status
        self._projection_dirty = True

    def basis_snapshot(self) -> Optional[Any]:
        """The native basis of the last optimal solve (None when cold)."""
        return self._basis_obj if not self._projection_dirty else None

    def restore_basis(self, basis: Any) -> None:
        """Adopt a stored native basis (e.g. from an earlier same-shape model).

        The basis must match the model's current dimensions; the caller
        guarantees compatibility (site blocks are structurally identical, so
        a same-shape basis transfers across different location mixes the same
        way :class:`HighsSolveContext` reuses bases across the pricing
        sweep).  Installing a native object costs nothing in Python, unlike
        the projected-array path.
        """
        if len(basis.col_status) == self.num_cols and len(basis.row_status) == self.num_rows:
            self._basis_obj = basis
            self._projection_dirty = False
            self._col_status = None
            self._row_status = None

    def clear_basis(self) -> None:
        """Drop every carried basis so the next solve starts cold.

        The resilience ladder uses this between a failed warm solve and its
        retry: a corrupted or badly-repaired alien basis is the most likely
        culprit for a spurious non-optimal status, and clearing it is far
        cheaper than rebuilding the whole model.
        """
        self._basis_obj = None
        self._projection_dirty = False
        self._col_status = None
        self._row_status = None
        clear = getattr(self._highs, "clearSolver", None)
        if clear is not None:
            clear()

    # -- solving ----------------------------------------------------------------
    def install_basis(self) -> None:
        """Install the carried basis: native when clean, projected when edited.

        After structural edits the projected arrays are converted back to a
        HighsBasis; when deletions removed basic columns (or nonbasic rows)
        the projection is no longer square and is installed as *alien* so
        HiGHS repairs it instead of rejecting it.
        """
        if not self._projection_dirty:
            if self._basis_obj is not None:
                self._highs.setBasis(self._basis_obj)
            return
        if (
            self._col_status is None
            or self._row_status is None
            or len(self._col_status) != self.num_cols
            or len(self._row_status) != self.num_rows
        ):  # pragma: no cover - projection drifted; fall back to cold
            self._basis_obj = None
            self._projection_dirty = False
            self._col_status = None
            self._row_status = None
            return
        basis = _core.HighsBasis()
        basis.col_status = [_BASIS_STATUSES[s] for s in self._col_status]
        basis.row_status = [_BASIS_STATUSES[s] for s in self._row_status]
        basic_total = int(np.count_nonzero(self._col_status == _BASIC)) + int(
            np.count_nonzero(self._row_status == _BASIC)
        )
        basis.valid = True
        basis.alien = basic_total != self.num_rows
        self._highs.setBasis(basis)

    def solve(self, options: "SolverOptions", check: bool = False) -> SolveResult:
        """Solve the currently loaded model, warm-starting when possible.

        With ``check=True`` a non-optimal status raises
        :class:`~repro.lpsolver.result.SolverStatusError` (status, message and
        iteration count attached) instead of handing back a ``nan`` objective.
        """
        if _validate.validation_enabled():
            # Solve entry audits the whole splice sequence that led here:
            # dimension bookkeeping vs the actual HiGHS model, and basis
            # padding/projection lengths after ranged adds/deletes.
            _validate.validate_mutable_model(self, "MutableHighsModel.solve")
        self._highs.setOptionValue("presolve", "choose" if options.presolve else "off")
        self._highs.setOptionValue(
            "time_limit",
            float(options.time_limit) if options.time_limit is not None else float("inf"),
        )
        self.install_basis()
        self._highs.run()
        raw_status = self._highs.getModelStatus()
        status = _STATUS_MAP.get(raw_status, SolveStatus.ERROR)
        message = self._highs.modelStatusToString(raw_status)
        iterations = int(getattr(self._highs.getInfo(), "simplex_iteration_count", 0) or 0)
        if status is SolveStatus.OPTIMAL:
            x = np.asarray(self._highs.getSolution().col_value, dtype=float)
            objective = float(self._highs.getObjectiveValue())
            self._basis_obj = self._highs.getBasis()
            self._projection_dirty = False
            self._col_status = None
            self._row_status = None
        else:
            x = None
            objective = float("nan")
        result = SolveResult(
            status=status,
            objective=objective,
            message=message,
            solver="highs-mutable",
            iterations=iterations,
            x=x,
        )
        return result.raise_for_status() if check else result
