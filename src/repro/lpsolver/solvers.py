"""Solver backends for the LP/MILP modelling layer.

Continuous models are routed to the direct HiGHS backend
(:mod:`repro.lpsolver.highs_backend`) when available, falling back to
``scipy.optimize.linprog``; models with integer variables go to
``scipy.optimize.milp``.  Constraint matrices stay sparse end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from repro.lpsolver import highs_backend
from repro.lpsolver.model import CompiledModel, Model
from repro.lpsolver.result import SolveResult, SolveStatus


@dataclass
class SolverOptions:
    """Knobs shared across the HiGHS/linprog/milp backends.

    Attributes
    ----------
    time_limit:
        Wall-clock limit in seconds (``None`` = no limit).
    mip_gap:
        Relative optimality gap accepted by the MILP backend.
    presolve:
        Whether to let HiGHS presolve the problem.
    force_continuous:
        Solve the LP relaxation even when the model declares integer variables.
        Used by the heuristic solver, which fixes the integer siting decisions
        itself and only needs the continuous provisioning sub-problem.
    backend:
        ``"auto"`` (direct HiGHS when available, else linprog),
        ``"highs-direct"`` (require the direct backend) or ``"linprog"``
        (force the scipy.optimize.linprog wrapper; useful for differential
        testing of the two code paths).
    """

    time_limit: Optional[float] = None
    mip_gap: float = 1e-4
    presolve: bool = True
    force_continuous: bool = False
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.backend not in ("auto", "highs-direct", "linprog"):
            raise ValueError(f"unknown solver backend {self.backend!r}")


_LINPROG_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}

_MILP_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_model(
    model: Model,
    options: Optional[SolverOptions] = None,
    context: Optional["highs_backend.HighsSolveContext"] = None,
) -> SolveResult:
    """Solve ``model`` and return a :class:`SolveResult`.

    ``context`` (a :class:`~repro.lpsolver.highs_backend.HighsSolveContext`)
    enables basis reuse across structurally identical continuous solves; it is
    ignored by the linprog/milp fallbacks.
    """
    options = options or SolverOptions()
    use_milp = model.is_mixed_integer and not options.force_continuous
    if use_milp:
        return _solve_milp(model.to_matrices(), options)
    if options.backend == "highs-direct" and not highs_backend.AVAILABLE:
        raise RuntimeError("the direct HiGHS backend is unavailable in this SciPy build")
    if options.backend in ("auto", "highs-direct") and highs_backend.AVAILABLE:
        return highs_backend.solve_row_form(model.to_row_form(), options, context)
    return _solve_linprog(model.to_matrices(), options)


def _finalise(
    compiled: CompiledModel,
    status: SolveStatus,
    x: Optional[np.ndarray],
    message: str,
    solver: str,
    iterations: int,
) -> SolveResult:
    if status is SolveStatus.OPTIMAL and x is not None:
        raw = float(np.dot(compiled.cost, x))
        objective = (-raw if compiled.maximise else raw) + compiled.objective_constant
        x = np.asarray(x, dtype=float)
    else:
        objective = float("nan")
        x = None
    return SolveResult(
        status=status,
        objective=objective,
        message=message,
        solver=solver,
        iterations=iterations,
        x=x,
    )


def _solve_linprog(compiled: CompiledModel, options: SolverOptions) -> SolveResult:
    bounds = np.column_stack([compiled.lower, compiled.upper])
    result = optimize.linprog(
        c=compiled.cost,
        A_ub=compiled.a_ub,
        b_ub=compiled.b_ub,
        A_eq=compiled.a_eq,
        b_eq=compiled.b_eq,
        bounds=bounds,
        method="highs",
        options={"presolve": options.presolve},
    )
    status = _LINPROG_STATUS.get(result.status, SolveStatus.ERROR)
    iterations = int(getattr(result, "nit", 0) or 0)
    x = result.x if result.x is not None else None
    return _finalise(compiled, status, x, str(result.message), "linprog", iterations)


def _solve_milp(compiled: CompiledModel, options: SolverOptions) -> SolveResult:
    constraints = []
    if compiled.a_ub is not None:
        constraints.append(
            optimize.LinearConstraint(compiled.a_ub, -np.inf, compiled.b_ub)
        )
    if compiled.a_eq is not None:
        constraints.append(
            optimize.LinearConstraint(compiled.a_eq, compiled.b_eq, compiled.b_eq)
        )
    milp_options = {"presolve": options.presolve, "mip_rel_gap": options.mip_gap}
    if options.time_limit is not None:
        milp_options["time_limit"] = options.time_limit
    result = optimize.milp(
        c=compiled.cost,
        constraints=constraints or None,
        bounds=optimize.Bounds(compiled.lower, compiled.upper),
        integrality=compiled.integrality,
        options=milp_options,
    )
    status = _MILP_STATUS.get(result.status, SolveStatus.ERROR)
    x = result.x if result.x is not None else None
    return _finalise(compiled, status, x, str(result.message), "milp", 0)
