"""Batched ("block") constraint ingestion for the LP/MILP layer.

The object API in :mod:`repro.lpsolver.expressions` is convenient for small
models, but building thousands of structurally identical per-epoch
constraints through Python-level dict arithmetic dominates the solve loop of
the siting heuristic.  A :class:`LinearConstraintBlock` instead carries a
whole *family* of constraints (one per epoch, say) as sparse COO triplets —
``A[rows[k], cols[k]] = vals[k]`` with one sense and a right-hand-side vector
— so the model can be compiled to :mod:`scipy.sparse` matrices without ever
materialising per-row Python objects.

Blocks are created through :meth:`repro.lpsolver.model.Model.add_linear_block`
and consumed by ``Model.to_matrices``/``Model.to_row_form``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.lpsolver.expressions import ConstraintSense


@dataclass
class LinearConstraintBlock:
    """A family of linear constraints in sparse COO (triplet) form.

    Row ``i`` of the block reads ``sum_k vals[k] * x[cols[k]] (sense) rhs[i]``
    over the triplets with ``rows[k] == i``.  Rows are numbered ``0..n-1``
    locally; the owning model offsets them during compilation.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    sense: ConstraintSense
    rhs: np.ndarray
    name: str = ""

    @property
    def num_rows(self) -> int:
        return int(self.rhs.shape[0])

    @property
    def num_entries(self) -> int:
        return int(self.vals.shape[0])

    def violations(self, x: np.ndarray, tolerance: float) -> np.ndarray:
        """Indices of block rows violated by the point ``x`` (for checking)."""
        values = np.bincount(
            self.rows, weights=self.vals * x[self.cols], minlength=self.num_rows
        )
        if self.sense is ConstraintSense.LESS_EQUAL:
            bad = values > self.rhs + tolerance
        elif self.sense is ConstraintSense.GREATER_EQUAL:
            bad = values < self.rhs - tolerance
        else:
            bad = np.abs(values - self.rhs) > tolerance
        return np.flatnonzero(bad)


def make_block(
    rows: Sequence[int] | np.ndarray,
    cols: Sequence[int] | np.ndarray,
    vals: Sequence[float] | np.ndarray,
    sense: ConstraintSense,
    rhs: Sequence[float] | np.ndarray,
    name: str = "",
    num_variables: Optional[int] = None,
    validate: bool = True,
) -> LinearConstraintBlock:
    """Validate triplets and build a :class:`LinearConstraintBlock`.

    With ``validate=True`` (the default for user-supplied triplets), zero
    coefficients are dropped so blocks stay as sparse as the equivalent
    object-API constraints (whose dict representation never stores zeros).
    ``validate=False`` is the trusted fast path for pre-validated skeleton
    caches; it keeps explicit zeros, which lets structurally identical models
    (same shape, different coefficient values) share one sparsity pattern.
    """
    rows = np.asarray(rows, dtype=np.int64).ravel()
    cols = np.asarray(cols, dtype=np.int64).ravel()
    vals = np.asarray(vals, dtype=np.float64).ravel()
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    if validate:
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows, cols and vals must have identical lengths")
        if not isinstance(sense, ConstraintSense):
            raise ValueError(f"unknown constraint sense {sense!r}")
        if rows.size and rows.min() < 0:
            raise ValueError("block row indices cannot be negative")
        if rhs.ndim != 1 or rhs.size == 0:
            raise ValueError("a block needs at least one right-hand-side entry")
        if rows.size and rows.max() >= rhs.size:
            raise ValueError(
                f"block row index {int(rows.max())} outside the {rhs.size} rhs entries"
            )
        if cols.size:
            if cols.min() < 0:
                raise ValueError("block column indices cannot be negative")
            if num_variables is not None and cols.max() >= num_variables:
                raise ValueError(
                    f"block column index {int(cols.max())} outside the "
                    f"{num_variables} model variables"
                )
        if not np.all(np.isfinite(vals)):
            raise ValueError("block coefficients must be finite")
        if not np.all(np.isfinite(rhs)):
            raise ValueError("block right-hand sides must be finite")
        keep = vals != 0.0  # reprolint: ok(FLT001) drops structurally-zero input entries, not solver output
        if not np.all(keep):
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
    return LinearConstraintBlock(rows=rows, cols=cols, vals=vals, sense=sense, rhs=rhs, name=name)
