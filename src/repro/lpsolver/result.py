"""Solve results for the LP/MILP layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.lpsolver.expressions import LinearExpression, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solver invocation."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"


@dataclass
class SolveResult:
    """The outcome of solving a :class:`~repro.lpsolver.model.Model`.

    Attributes
    ----------
    status:
        Solver status classification.
    objective:
        Objective value (``nan`` when not optimal).
    values:
        Mapping from variable index to optimal value.
    message:
        Backend diagnostic message.
    solver:
        Which backend produced the result (``"linprog"`` or ``"milp"``).
    iterations:
        Iteration count reported by the backend, if any.
    """

    status: SolveStatus
    objective: float
    values: Dict[int, float] = field(default_factory=dict)
    message: str = ""
    solver: str = ""
    iterations: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def value(self, item: Variable | LinearExpression) -> float:
        """Value of a variable or linear expression at the optimum."""
        if isinstance(item, Variable):
            return self.values.get(item.index, 0.0)
        if isinstance(item, LinearExpression):
            return item.evaluate(self.values)
        raise TypeError(f"cannot evaluate {item!r} against a solve result")

    def values_by_name(self, variables: Mapping[str, Variable]) -> Dict[str, float]:
        """Return ``{variable name: value}`` for a name->variable mapping."""
        return {name: self.value(var) for name, var in variables.items()}

    def __repr__(self) -> str:
        return (
            f"SolveResult(status={self.status.value}, objective={self.objective:.6g}, "
            f"solver={self.solver!r}, n_values={len(self.values)})"
        )
