"""Solve results for the LP/MILP layer."""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional

import numpy as np

from repro.lpsolver.expressions import LinearExpression, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solver invocation."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"


class SolverStatusError(RuntimeError):
    """A solve that had to be optimal was not.

    Carries the backend's status classification and counters so callers that
    must never act on a ``nan`` objective (the incremental dispatcher, the
    stochastic-ensemble LP) can distinguish an infeasible model from an
    iteration limit or a backend error and react accordingly — retry, cold
    rebuild, or surface the failure with full context.
    """

    def __init__(
        self,
        status: "SolveStatus",
        message: str = "",
        solver: str = "",
        iterations: int = 0,
    ) -> None:
        detail = f" ({message})" if message else ""
        super().__init__(
            f"solver returned status {status.value}{detail} "
            f"[solver={solver or 'unknown'}, iterations={iterations}]"
        )
        self.status = status
        self.solver_message = message
        self.solver = solver
        self.iterations = iterations


class SolveResult:
    """The outcome of solving a :class:`~repro.lpsolver.model.Model`.

    Attributes
    ----------
    status:
        Solver status classification.
    objective:
        Objective value (``nan`` when not optimal).
    values:
        Mapping from variable index to optimal value.  Materialised lazily
        from ``x`` on first access — the solve hot paths only ever read the
        array form.
    message:
        Backend diagnostic message.
    solver:
        Which backend produced the result (``"highs-direct"``, ``"linprog"``
        or ``"milp"``).
    iterations:
        Iteration count reported by the backend, if any.
    x:
        Optimal point as a dense array indexed by variable index (``None``
        when not optimal).  Preferred over ``values`` on hot paths because it
        supports vectorized fancy-indexed extraction.
    """

    __slots__ = ("status", "objective", "message", "solver", "iterations", "x", "_values")

    def __init__(
        self,
        status: SolveStatus,
        objective: float,
        values: Optional[Dict[int, float]] = None,
        message: str = "",
        solver: str = "",
        iterations: int = 0,
        x: Optional[np.ndarray] = None,
    ) -> None:
        self.status = status
        self.objective = objective
        self.message = message
        self.solver = solver
        self.iterations = iterations
        self.x = x
        self._values = values

    @property
    def values(self) -> Dict[int, float]:
        if self._values is None:
            if self.x is None:
                self._values = {}
            else:
                self._values = {index: float(value) for index, value in enumerate(self.x)}
        return self._values

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def raise_for_status(self) -> "SolveResult":
        """Return self when optimal, raise :class:`SolverStatusError` otherwise."""
        if self.status is not SolveStatus.OPTIMAL:
            raise SolverStatusError(
                self.status,
                message=self.message,
                solver=self.solver,
                iterations=self.iterations,
            )
        return self

    def value(self, item: Variable | LinearExpression) -> float:
        """Value of a variable or linear expression at the optimum."""
        if isinstance(item, Variable):
            if self.x is not None and item.index < len(self.x):
                return float(self.x[item.index])
            return self.values.get(item.index, 0.0)
        if isinstance(item, LinearExpression):
            return item.evaluate(self.values)
        raise TypeError(f"cannot evaluate {item!r} against a solve result")

    def value_array(self, indices: np.ndarray) -> np.ndarray:
        """Values of a batch of variables given their index array."""
        if self.x is not None:
            return np.asarray(self.x[indices], dtype=float)
        return np.array([self.values.get(int(i), 0.0) for i in np.ravel(indices)]).reshape(
            np.shape(indices)
        )

    def values_by_name(self, variables: Mapping[str, Variable]) -> Dict[str, float]:
        """Return ``{variable name: value}`` for a name->variable mapping."""
        return {name: self.value(var) for name, var in variables.items()}

    def __repr__(self) -> str:
        return (
            f"SolveResult(status={self.status.value}, objective={self.objective:.6g}, "
            f"solver={self.solver!r}, n_values={len(self.values)})"
        )
