"""Block-diagonal assembly of independent row-form LPs.

Many pricing passes solve *structurally independent* LPs — one per candidate
location — whose per-call overhead (model pass, presolve, simplex start-up)
dominates once the individual problems are small.  Stacking k independent
blocks into one block-diagonal :class:`~repro.lpsolver.model.RowFormLP` lets
a single HiGHS solve replace k solves; because the blocks share no variables
or rows, the stacked optimum decomposes exactly into the per-block optima and
each block's objective can be read back from its slice of the solution
vector.

The stacker is pure array concatenation: CSC blocks are already
column-contiguous, so the stacked matrix is the data arrays appended with row
and nonzero offsets applied.  No scipy sparse intermediates are built.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.lpsolver import validate as _validate
from repro.lpsolver.model import RowFormLP

__all__ = ["stack_block_diagonal"]


def stack_block_diagonal(
    blocks: Sequence[RowFormLP],
) -> Tuple[RowFormLP, np.ndarray, np.ndarray]:
    """Stack independent row-form LPs into one block-diagonal LP.

    Returns ``(stacked, col_offsets, row_offsets)`` where ``col_offsets`` and
    ``row_offsets`` are ``len(blocks) + 1`` cumulative boundaries: block ``i``
    owns columns ``col_offsets[i]:col_offsets[i+1]`` and rows
    ``row_offsets[i]:row_offsets[i+1]`` of the stacked LP.  The stacked
    objective constant is the sum of the blocks' constants; callers that need
    per-block objectives keep the individual constants and evaluate
    ``cost[s:e] @ x[s:e] + constant_i`` over the column slices.

    All blocks must share the same optimisation sense.
    """
    if not blocks:
        raise ValueError("at least one block is required")
    maximise = blocks[0].maximise
    if any(block.maximise != maximise for block in blocks):
        raise ValueError("all blocks must share the same optimisation sense")

    col_counts = np.array([block.shape[1] for block in blocks], dtype=np.int64)
    row_counts = np.array([block.shape[0] for block in blocks], dtype=np.int64)
    nnz_counts = np.array([len(block.a_data) for block in blocks], dtype=np.int64)
    col_offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    row_offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    nnz_offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    np.cumsum(col_counts, out=col_offsets[1:])
    np.cumsum(row_counts, out=row_offsets[1:])
    np.cumsum(nnz_counts, out=nnz_offsets[1:])

    indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    indices_parts: List[np.ndarray] = []
    for index, block in enumerate(blocks):
        indptr_parts.append(
            np.asarray(block.a_indptr[1:], dtype=np.int64) + nnz_offsets[index]
        )
        indices_parts.append(
            np.asarray(block.a_indices, dtype=np.int64) + row_offsets[index]
        )

    stacked = RowFormLP(
        cost=np.concatenate([block.cost for block in blocks]),
        a_indptr=np.concatenate(indptr_parts),
        a_indices=np.concatenate(indices_parts) if indices_parts else np.empty(0, dtype=np.int64),
        a_data=np.concatenate([block.a_data for block in blocks]),
        shape=(int(row_offsets[-1]), int(col_offsets[-1])),
        row_lower=np.concatenate([block.row_lower for block in blocks]),
        row_upper=np.concatenate([block.row_upper for block in blocks]),
        lower=np.concatenate([block.lower for block in blocks]),
        upper=np.concatenate([block.upper for block in blocks]),
        integrality=np.concatenate([block.integrality for block in blocks]),
        maximise=maximise,
        objective_constant=float(sum(block.objective_constant for block in blocks)),
    )
    if _validate.validation_enabled():
        _validate.validate_block_offsets(
            stacked, col_offsets, row_offsets, len(blocks), "stack_block_diagonal"
        )
    return stacked, col_offsets, row_offsets
