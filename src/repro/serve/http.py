"""A minimal stdlib HTTP/1.1 front-end for :class:`PlanServer`.

No third-party web framework (the repo's dependency surface stays numpy +
solver): asyncio streams plus hand-rolled request parsing, enough for
keep-alive JSON POSTs from the load benchmark, the tests and ``curl``.

Endpoints
---------
``POST /plan``
    Body: one request JSON object (see :mod:`repro.serve.protocol`).
    Status mirrors the typed response kind (200 ok, 400 spec errors,
    503 overloaded/draining, 504 waiter timeout, 500 internal).
``GET /metrics``
    The :meth:`PlanServer.metrics_snapshot` document.
``GET /healthz``
    200 ``{"status": "ok"}`` normally, 503 ``{"status": "draining"}`` once a
    drain began — load balancers take the instance out of rotation while
    in-flight work completes.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Set, TextIO, Tuple

from repro.serve.protocol import encode_response, error_response, http_status
from repro.serve.server import PlanServer

#: Request-body bound: a spec is a few KB, so anything near this is abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Header-section bound (also the stream's readuntil limit).
MAX_HEAD_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    """A connection-level protocol violation (answered, then disconnected)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One request off the stream: ``(method, path, headers, body)``.

    Returns ``None`` on a clean EOF between requests (keep-alive close);
    raises :class:`_BadRequest` for anything malformed.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise _BadRequest("bad_request", "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _BadRequest("payload_too_large", "request head too large") from None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest("bad_request", f"malformed request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise _BadRequest("bad_request", f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _BadRequest("bad_request", "content-length is not an integer") from None
    if length < 0:
        raise _BadRequest("bad_request", "negative content-length")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(
            "payload_too_large", f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


async def _dispatch(
    server: PlanServer, method: str, path: str, body: bytes
) -> Tuple[int, Dict[str, Any]]:
    if path == "/plan":
        if method != "POST":
            return 405, error_response("method_not_allowed", "use POST /plan")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            server.metrics.count_error("bad_request")
            return 400, error_response("bad_request", f"body is not valid JSON: {error}")
        response = await server.handle(payload)
        return http_status(response), response
    if method != "GET":
        return 405, error_response("method_not_allowed", f"use GET {path}")
    if path == "/metrics":
        return 200, server.metrics_snapshot()
    if path == "/healthz":
        health = server.health()
        return (503 if server.draining else 200), health
    return 404, error_response("not_found", f"unknown path {path!r}")


async def _write_response(
    writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
) -> None:
    body = (encode_response(payload) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


async def handle_connection(
    server: PlanServer, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one keep-alive connection until EOF, close, or a protocol error."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _BadRequest as error:
                response = error_response(error.kind, error.message)
                await _write_response(writer, http_status(response), response)
                break
            if request is None:
                break
            method, path, headers, body = request
            status, payload = await _dispatch(server, method, path, body)
            await _write_response(writer, status, payload)
            if headers.get("connection", "").lower() == "close":
                break
    except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
        pass  # the client went away mid-request; nothing to answer
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class HttpFrontend:
    """Owns the listening socket and connection tasks of one server."""

    def __init__(
        self, server: PlanServer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._listener: Optional[asyncio.AbstractServer] = None
        self._connections: Set["asyncio.Task[None]"] = set()

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is resolved (port 0 OK)."""
        await self.server.start()
        self._listener = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_HEAD_BYTES
        )
        self.port = self._listener.sockets[0].getsockname()[1]

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await handle_connection(self.server, reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    async def stop(self, grace_s: Optional[float] = None) -> None:
        """Stop accepting, drain the planner, then part with idle connections."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        await self.server.drain(grace_s)
        # In-flight handlers finished with the drain; whatever remains is an
        # idle keep-alive connection parked in readuntil().  Give stragglers
        # one beat to flush, then disconnect them.
        if self._connections:
            await asyncio.wait(set(self._connections), timeout=1.0)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)


async def serve_http(
    server: PlanServer,
    host: str = "127.0.0.1",
    port: int = 8734,
    *,
    stream: Optional[TextIO] = None,
    install_signals: bool = True,
) -> int:
    """Run the HTTP front-end until SIGTERM/SIGINT, then drain gracefully."""
    frontend = HttpFrontend(server, host, port)
    await frontend.start()
    if stream is not None:
        print(
            f"serving on http://{host}:{frontend.port} "
            f"(executor={server.config.executor}, workers={server.worker_count()}, "
            f"queue_limit={server.config.queue_limit})",
            file=stream,
            flush=True,
        )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    try:
        await stop_event.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await frontend.stop()
        if stream is not None:
            print("drained; bye", file=stream, flush=True)
    return 0
