"""Wire protocol of the planning service.

One request is one JSON object: either a bare
:class:`~repro.scenarios.spec.ScenarioSpec` dictionary, or an envelope
``{"id": <str|int>, "spec": {...}}`` when the client wants its responses
matched back to requests (the stdin transport interleaves responses in
completion order).  One response is one JSON object with ``status`` of
``"ok"`` or ``"error"``:

``ok``
    Carries the spec's canonical ``content_hash``, the point ``record``
    (bit-identical to what ``repro sweep`` writes for the same spec),
    ``from_cache`` (served from the on-disk artifact cache), ``dedup``
    (this request attached to an already-in-flight identical solve) and
    ``elapsed_s`` (queue + solve wall time for *this* waiter).
``error``
    Carries a typed ``error`` kind from :data:`ERROR_STATUS` plus a
    human-readable ``message``.  The kind, not the message, is the API.

Responses are encoded with sorted keys (:func:`encode_response`) so equal
records serialize identically — the differential server-vs-direct tests
compare these encodings byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

from repro.scenarios.spec import ScenarioSpec

#: Typed error kinds and the HTTP status each maps to.  The stdin transport
#: carries the kind only; HTTP clients get both.
ERROR_STATUS: Dict[str, int] = {
    "bad_request": 400,
    "spec_error": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "overloaded": 503,
    "draining": 503,
    "timeout": 504,
    "internal": 500,
}

RequestId = Optional[Union[str, int]]


class SpecError(ValueError):
    """The request payload does not describe a valid scenario spec."""


@dataclass(frozen=True)
class PlanRequest:
    """A parsed planning request: an optional client id plus the spec."""

    id: RequestId
    spec: ScenarioSpec


def request_id_of(payload: Any) -> RequestId:
    """Best-effort id extraction for error responses to unparsable requests."""
    if isinstance(payload, Mapping):
        candidate = payload.get("id")
        if isinstance(candidate, (str, int)) and not isinstance(candidate, bool):
            return candidate
    return None


def parse_request(payload: Any) -> PlanRequest:
    """Validate one request payload into a :class:`PlanRequest`.

    Raises :class:`SpecError` for anything the server should answer with a
    ``spec_error`` response: non-object payloads, unknown envelope fields,
    and spec dictionaries :meth:`ScenarioSpec.from_dict` rejects.
    """
    if not isinstance(payload, Mapping):
        raise SpecError("request must be a JSON object")
    request_id: RequestId = None
    spec_payload: Any = payload
    if "spec" in payload:
        unknown = set(payload) - {"id", "spec"}
        if unknown:
            raise SpecError(f"unknown envelope fields {sorted(unknown)}")
        request_id = payload.get("id")
        spec_payload = payload["spec"]
        if request_id is not None and (
            isinstance(request_id, bool) or not isinstance(request_id, (str, int))
        ):
            raise SpecError("request id must be a string or an integer")
    if not isinstance(spec_payload, Mapping):
        raise SpecError("spec must be a JSON object")
    try:
        spec = ScenarioSpec.from_dict(dict(spec_payload))
    except (KeyError, TypeError, ValueError) as error:
        raise SpecError(f"invalid scenario spec: {error}") from None
    return PlanRequest(id=request_id, spec=spec)


def parse_request_line(line: str) -> PlanRequest:
    """Parse one newline-delimited-JSON request line (the stdin transport)."""
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise SpecError(f"invalid JSON: {error}") from None
    return parse_request(payload)


def ok_response(
    request_id: RequestId,
    *,
    content_hash: str,
    record: Mapping[str, Any],
    from_cache: bool,
    dedup: bool,
    elapsed_s: float,
) -> Dict[str, Any]:
    """A successful planning response."""
    return {
        "status": "ok",
        "id": request_id,
        "content_hash": content_hash,
        "from_cache": bool(from_cache),
        "dedup": bool(dedup),
        "elapsed_s": round(float(elapsed_s), 6),
        "record": dict(record),
    }


def error_response(kind: str, message: str, request_id: RequestId = None) -> Dict[str, Any]:
    """A typed error response; ``kind`` must be one of :data:`ERROR_STATUS`."""
    if kind not in ERROR_STATUS:
        raise ValueError(f"unknown error kind {kind!r}; expected one of {sorted(ERROR_STATUS)}")
    return {"status": "error", "id": request_id, "error": kind, "message": message}


def http_status(response: Mapping[str, Any]) -> int:
    """The HTTP status code a response maps to (200 for ``ok``)."""
    if response.get("status") == "ok":
        return 200
    return ERROR_STATUS.get(str(response.get("error")), 500)


def encode_response(response: Mapping[str, Any]) -> str:
    """Canonical one-line JSON encoding (sorted keys, NaN literals allowed,
    matching the artifact cache's serialization of records)."""
    return json.dumps(response, sort_keys=True)
