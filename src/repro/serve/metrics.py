"""In-process metrics for the serve daemon.

Cumulative counters plus a bounded latency reservoir, exposed verbatim as the
``/metrics`` JSON document.  Everything is updated from the event-loop thread
(the server funnels all bookkeeping through coroutines), so no locking is
needed; latencies are ``time.perf_counter`` deltas — the daemon never reads
the wall clock.

Worker processes report their warm-vs-cold cache counters *cumulatively* in
each :func:`~repro.parallel.work.run_serve_point` result; the parent keeps
the latest snapshot per pid, so summing across pids (see
:meth:`ServerMetrics.worker_cache_summary`) never double-counts a worker.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping

#: Latency reservoir size: percentiles cover the most recent window, so a
#: long-lived daemon reports current behaviour, not its cold start forever.
LATENCY_WINDOW = 4096


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (NaN when empty)."""
    if not sorted_values:
        return float("nan")
    rank = int(round(q * (len(sorted_values) - 1)))
    rank = min(len(sorted_values) - 1, max(0, rank))
    return float(sorted_values[rank])


def _rate(hits: int, total: int) -> float:
    return (hits / total) if total else float("nan")


class ServerMetrics:
    """Counters and latency percentiles for one :class:`PlanServer`."""

    def __init__(self) -> None:
        self.requests_total = 0
        self.responses_ok = 0
        self.dedup_hits = 0
        self.artifact_cache_hits = 0
        self.solves_started = 0
        self.solves_completed = 0
        self.process_fallbacks = 0
        self.errors: Dict[str, int] = {}
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._started = time.perf_counter()
        self._worker_stats: Dict[int, Dict[str, Any]] = {}

    # -- updates ---------------------------------------------------------------
    def count_error(self, kind: str) -> None:
        self.errors[kind] = self.errors.get(kind, 0) + 1

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(float(seconds))

    def record_worker_stats(self, stats: Mapping[str, Any]) -> None:
        """Keep the latest cumulative cache counters of one worker (by pid)."""
        pid = int(stats.get("pid", 0))
        self._worker_stats[pid] = dict(stats)

    # -- summaries -------------------------------------------------------------
    def latency_summary(self) -> Dict[str, Any]:
        values = sorted(self._latencies)
        return {
            "count": len(values),
            "p50_s": percentile(values, 0.50),
            "p95_s": percentile(values, 0.95),
            "p99_s": percentile(values, 0.99),
            "max_s": values[-1] if values else float("nan"),
        }

    def worker_cache_summary(self) -> Dict[str, Any]:
        """Warm-vs-cold hit rates summed over all reporting workers.

        ``skeleton_warm_rate`` counts template *derives* as warm: deriving a
        new location's skeleton from the size class's template is the fast
        path the caches exist for, full builds are the cold starts.
        """
        totals: Dict[str, int] = {}
        for stats in self._worker_stats.values():
            runner = stats.get("runner", {})
            if isinstance(runner, Mapping):
                for key, value in runner.items():
                    if isinstance(value, int):
                        totals[key] = totals.get(key, 0) + value
        skeleton_warm = totals.get("skeleton_hits", 0) + totals.get("skeleton_derives", 0)
        skeleton_total = skeleton_warm + totals.get("skeleton_builds", 0)
        artifact_hits = totals.get("artifact_hits", 0)
        artifact_total = artifact_hits + totals.get("artifact_misses", 0)
        problem_hits = totals.get("problem_hits", 0)
        problem_total = problem_hits + totals.get("problem_builds", 0)
        catalog_hits = totals.get("catalog_hits", 0)
        catalog_total = catalog_hits + totals.get("catalog_builds", 0)
        return {
            "workers_reporting": len(self._worker_stats),
            "counters": totals,
            "skeleton_warm_rate": _rate(skeleton_warm, skeleton_total),
            "artifact_hit_rate": _rate(artifact_hits, artifact_total),
            "problem_warm_rate": _rate(problem_hits, problem_total),
            "catalog_warm_rate": _rate(catalog_hits, catalog_total),
        }

    def snapshot(self, *, in_flight: int, waiters: int, draining: bool) -> Dict[str, Any]:
        """The ``/metrics`` document."""
        elapsed = time.perf_counter() - self._started
        return {
            "uptime_s": round(elapsed, 3),
            "requests_total": self.requests_total,
            "responses_ok": self.responses_ok,
            "dedup_hits": self.dedup_hits,
            "artifact_cache_hits": self.artifact_cache_hits,
            "solves_started": self.solves_started,
            "solves_completed": self.solves_completed,
            "process_fallbacks": self.process_fallbacks,
            "errors": dict(self.errors),
            "in_flight": in_flight,
            "waiters": waiters,
            "draining": draining,
            "plans_per_second": (self.responses_ok / elapsed) if elapsed > 0 else 0.0,
            "latency": self.latency_summary(),
            "worker_caches": self.worker_cache_summary(),
        }
