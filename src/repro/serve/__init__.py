"""Planning-as-a-service: the ``repro serve`` daemon.

A long-lived front-end over the experiment runner: requests are
ScenarioSpec JSON, canonicalised and content-hashed so identical in-flight
requests dedup onto one solve, dispatched to a persistent warm worker pool,
and answered with records bit-identical to direct ``repro sweep`` runs.

Layers: :mod:`repro.serve.protocol` (requests, typed errors, canonical
encoding), :mod:`repro.serve.server` (dedup/admission/dispatch/drain),
:mod:`repro.serve.http` (stdlib HTTP/1.1 front-end: ``POST /plan``,
``GET /metrics``, ``GET /healthz``), :mod:`repro.serve.stdio`
(newline-delimited JSON over stdin/stdout), :mod:`repro.serve.metrics`
(counters and latency percentiles).
"""

from repro.serve.protocol import (
    ERROR_STATUS,
    PlanRequest,
    SpecError,
    encode_response,
    error_response,
    http_status,
    ok_response,
    parse_request,
    parse_request_line,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.server import PlanServer, ServeConfig
from repro.serve.http import HttpFrontend, serve_http
from repro.serve.stdio import serve_stdio

__all__ = [
    "ERROR_STATUS",
    "PlanRequest",
    "SpecError",
    "encode_response",
    "error_response",
    "http_status",
    "ok_response",
    "parse_request",
    "parse_request_line",
    "ServerMetrics",
    "PlanServer",
    "ServeConfig",
    "HttpFrontend",
    "serve_http",
    "serve_stdio",
]
