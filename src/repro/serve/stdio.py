"""Newline-delimited-JSON serving over stdin/stdout.

The test (and scripting) transport: one request JSON object per input line,
one response JSON object per output line.  Responses are written in
*completion* order — each line is dispatched as its own task the moment it
is read, so a batch of identical lines piped in together genuinely dedups
onto one in-flight solve — and carry the request's ``id`` so clients can
match them back.

EOF on stdin, SIGTERM or SIGINT all mean the same thing: stop reading,
answer everything already admitted, drain the pool, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Optional, Set, TextIO

from repro.serve.protocol import encode_response, error_response, request_id_of
from repro.serve.server import PlanServer


async def serve_stdio(
    server: PlanServer,
    input_stream: TextIO,
    output_stream: TextIO,
    *,
    install_signals: bool = False,
) -> int:
    """Serve requests line by line until EOF or a termination signal."""
    await server.start()
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    installed = []
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    write_lock = asyncio.Lock()
    pending: Set["asyncio.Task[None]"] = set()

    async def respond(line: str) -> None:
        try:
            payload = json.loads(line)
        except ValueError as error:
            server.metrics.count_error("bad_request")
            response = error_response("bad_request", f"invalid JSON: {error}")
        else:
            response = await server.handle(payload)
            if response.get("id") is None:
                response["id"] = request_id_of(payload)
        async with write_lock:
            output_stream.write(encode_response(response) + "\n")
            output_stream.flush()

    # Reading a pipe blocks; a daemon pump thread keeps the event loop free
    # (and, unlike an executor thread, never blocks interpreter exit when
    # stdin stays open after a SIGTERM).
    lines: "asyncio.Queue[Optional[str]]" = asyncio.Queue()

    def _enqueue(item: Optional[str]) -> None:
        lines.put_nowait(item)

    def pump() -> None:
        try:
            for line in input_stream:
                loop.call_soon_threadsafe(_enqueue, line)
            loop.call_soon_threadsafe(_enqueue, None)
        except (ValueError, OSError, RuntimeError):  # closed stream or loop
            pass

    threading.Thread(target=pump, name="repro-serve-stdin", daemon=True).start()

    while True:
        getter = loop.create_task(lines.get())
        stopper = loop.create_task(stop_event.wait())
        done, not_done = await asyncio.wait(
            {getter, stopper}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in not_done:
            task.cancel()
        if not_done:
            await asyncio.gather(*not_done, return_exceptions=True)
        if getter not in done:  # signalled: stop reading, keep what's admitted
            break
        line = getter.result()
        if line is None:  # EOF
            break
        if line.strip():
            task = loop.create_task(respond(line))
            pending.add(task)
            task.add_done_callback(pending.discard)

    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    for signum in installed:
        loop.remove_signal_handler(signum)
    await server.drain()
    return 0
