"""The planning server: request dedup, warm-pool dispatch, admission control.

:class:`PlanServer` is transport-agnostic — the HTTP front-end
(:mod:`repro.serve.http`) and the newline-delimited-JSON stdin mode
(:mod:`repro.serve.stdio`) both funnel every request through
:meth:`PlanServer.handle`, which implements the whole pipeline:

1. **Parse** the payload into a spec (typed ``spec_error`` on anything
   malformed) and **canonicalise** it to its content hash — the same hash
   the :class:`~repro.scenarios.runner.ExperimentRunner` futures memo and
   the on-disk artifact cache key by, so semantically equal requests
   (e.g. 0 %-green specs with different source lists) collapse.
2. **Dedup**: an identical request already in flight attaches its waiter to
   the existing solve — one solve, N responses — extending the runner's
   in-process futures memo *across* requests and transports.
3. **Admit**: distinct in-flight solves are bounded by ``queue_limit``
   (typed ``overloaded`` response beyond it); each waiter is bounded by
   ``timeout_s`` (typed ``timeout`` response; the solve itself continues, so
   a retry — or a later identical request — can still attach to it).
4. **Dispatch** to a *persistent* pool.  ``executor="process"`` ships a
   :class:`~repro.parallel.work.ServePointTask` to a long-lived
   ``ProcessPoolExecutor`` whose workers keep warm per-process caches
   (compiled skeletons, problems, catalogues, plus the shared on-disk
   artifact cache); a dead pool is rebuilt and the affected request re-run
   inline, so one lost worker degrades the daemon to slower, not failed.
   ``"thread"``/``"serial"`` share one in-parent runner behind a thread
   pool — same records, bit for bit, as every other executor.
5. **Drain** on SIGTERM: stop admitting (typed ``draining`` response), let
   in-flight solves finish within ``drain_grace_s``, shut the pool down.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.parameters import FrameworkParameters
from repro.lpsolver import SolverOptions
from repro.parallel import work as parallel_work
from repro.parallel.executors import (
    EXECUTOR_KINDS,
    available_cpu_count,
    mark_process_worker,
    run_task_inline,
)
from repro.parallel.work import ServePointTask, new_token, run_serve_point
from repro.scenarios.runner import ExperimentRunner
from repro.scenarios.spec import ScenarioSpec
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    SpecError,
    error_response,
    ok_response,
    parse_request,
    request_id_of,
)

#: What one solve returns: the point record, whether the on-disk artifact
#: cache served it, and the solving worker's cumulative cache counters.
SolveOutcome = Tuple[Dict[str, Any], bool, Dict[str, Any]]


@dataclass(frozen=True)
class ServeConfig:
    """Deployment knobs of one :class:`PlanServer`.

    ``queue_limit`` bounds *distinct* in-flight solves — deduped waiters are
    free, so a thundering herd of identical requests never trips admission.
    ``timeout_s`` bounds one waiter, not the solve; ``None`` waits forever.
    """

    executor: str = "thread"
    workers: Optional[int] = None
    queue_limit: int = 64
    timeout_s: Optional[float] = 300.0
    drain_grace_s: float = 30.0
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTOR_KINDS}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None for no timeout)")


class PlanServer:
    """A long-lived planning service over one warm executor pool.

    ``solve_fn`` is a test seam: when given, it replaces the real dispatch
    with ``solve_fn(spec) -> SolveOutcome`` (still run on the pool), so the
    admission/dedup/timeout machinery is testable without LP solves.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        base_params: Optional[FrameworkParameters] = None,
        solver_options: Optional[SolverOptions] = None,
        solve_fn: Optional[Callable[[ScenarioSpec], SolveOutcome]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServerMetrics()
        self.base_params = base_params or FrameworkParameters()
        self.solver_options = solver_options or SolverOptions()
        self._solve_fn = solve_fn
        # Workers key their per-process runner rebuild by this token; one
        # token for the server's lifetime is what keeps them warm.
        self._token = new_token("serve")
        self._inflight: Dict[str, "asyncio.Task[SolveOutcome]"] = {}
        self._waiters = 0
        self._draining = False
        self._started = False
        self._pool: Any = None
        self._runner: Optional[ExperimentRunner] = None

    # -- lifecycle -------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def worker_count(self) -> int:
        if self.config.executor == "serial":
            return 1
        return self.config.workers or available_cpu_count()

    async def start(self) -> None:
        """Create the persistent pool (idempotent; handle() calls it lazily)."""
        if self._started:
            return
        self._started = True
        workers = self.worker_count()
        if self.config.executor == "process":
            self._pool = ProcessPoolExecutor(
                max_workers=workers, initializer=mark_process_worker
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
            self._runner = ExperimentRunner(
                cache_dir=self.config.cache_dir,
                workers=1,
                executor="serial",
                base_params=self.base_params,
                solver_options=self.solver_options,
            )

    async def drain(self, grace_s: Optional[float] = None) -> None:
        """Stop admitting, wait for in-flight solves (bounded), shut the pool."""
        self._draining = True
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        pending = [task for task in self._inflight.values() if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=grace)
        await self._shutdown_pool()

    async def _shutdown_pool(self) -> None:
        pool, self._pool = self._pool, None
        self._runner = None
        self._started = False
        if pool is None:
            return

        def _shutdown() -> None:
            pool.shutdown(wait=True, cancel_futures=True)

        await asyncio.get_running_loop().run_in_executor(None, _shutdown)

    # -- the request pipeline --------------------------------------------------
    async def handle(self, payload: Any) -> Dict[str, Any]:
        """One request in, one response out: the whole admission pipeline."""
        started = time.perf_counter()
        self.metrics.requests_total += 1
        try:
            request = parse_request(payload)
        except SpecError as error:
            self.metrics.count_error("spec_error")
            return error_response("spec_error", str(error), request_id_of(payload))
        if self._draining:
            self.metrics.count_error("draining")
            return error_response(
                "draining", "server is draining; no new work admitted", request.id
            )
        await self.start()

        key = request.spec.content_hash()
        task = self._inflight.get(key)
        dedup = task is not None
        if task is None:
            if len(self._inflight) >= self.config.queue_limit:
                self.metrics.count_error("overloaded")
                return error_response(
                    "overloaded",
                    f"{len(self._inflight)} solves in flight "
                    f"(queue_limit {self.config.queue_limit}); retry later",
                    request.id,
                )
            self.metrics.solves_started += 1
            task = asyncio.get_running_loop().create_task(self._solve(request.spec))
            self._inflight[key] = task
            task.add_done_callback(lambda done, key=key: self._forget(key, done))
        else:
            self.metrics.dedup_hits += 1

        self._waiters += 1
        try:
            # shield(): a waiter timeout must not cancel the shared solve —
            # other waiters (and future identical requests) still want it.
            if self.config.timeout_s is None:
                record, from_cache, stats = await asyncio.shield(task)
            else:
                record, from_cache, stats = await asyncio.wait_for(
                    asyncio.shield(task), self.config.timeout_s
                )
        except asyncio.TimeoutError:
            self.metrics.count_error("timeout")
            return error_response(
                "timeout",
                f"no result within {self.config.timeout_s}s "
                "(the solve continues; an identical retry re-attaches to it)",
                request.id,
            )
        except asyncio.CancelledError:
            raise
        except BaseException as error:
            self.metrics.count_error("internal")
            return error_response(
                "internal", f"{type(error).__name__}: {error}", request.id
            )
        finally:
            self._waiters -= 1

        elapsed = time.perf_counter() - started
        self.metrics.responses_ok += 1
        if from_cache:
            self.metrics.artifact_cache_hits += 1
        self.metrics.observe_latency(elapsed)
        if stats:
            self.metrics.record_worker_stats(stats)
        return ok_response(
            request.id,
            content_hash=key,
            record=record,
            from_cache=from_cache,
            dedup=dedup,
            elapsed_s=elapsed,
        )

    def _forget(self, key: str, task: "asyncio.Task[SolveOutcome]") -> None:
        if self._inflight.get(key) is task:
            del self._inflight[key]
        self.metrics.solves_completed += 1
        if not task.cancelled():
            # Retrieve the exception (if any): when every waiter timed out
            # before the solve failed, nobody else will, and asyncio logs
            # "exception was never retrieved" at shutdown otherwise.
            task.exception()

    async def _solve(self, spec: ScenarioSpec) -> SolveOutcome:
        loop = asyncio.get_running_loop()
        if self._solve_fn is not None:
            return await loop.run_in_executor(self._pool, self._solve_fn, spec)
        if self.config.executor == "process":
            task = ServePointTask(
                token=self._token,
                spec=spec.to_dict(),
                cache_dir=self.config.cache_dir,
                base_params=self.base_params,
                solver_options=self.solver_options,
            )
            try:
                return await loop.run_in_executor(self._pool, run_serve_point, task)
            except BrokenProcessPool:
                # A worker killed by a signal or the OOM killer breaks the
                # whole pool: rebuild it for later requests and run this one
                # inline — degraded to slower, never to failed.
                self.metrics.process_fallbacks += 1
                self._restart_pool()
                return await loop.run_in_executor(
                    None, run_task_inline, run_serve_point, task
                )
        return await loop.run_in_executor(self._pool, self._solve_local, spec)

    def _restart_pool(self) -> None:
        broken, self._pool = self._pool, ProcessPoolExecutor(
            max_workers=self.worker_count(), initializer=mark_process_worker
        )
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)

    def _solve_local(self, spec: ScenarioSpec) -> SolveOutcome:
        runner = self._runner
        if runner is None:  # pragma: no cover - start() precedes dispatch
            raise RuntimeError("server not started")
        point = runner.run_point(spec)
        stats: Dict[str, Any] = {
            "pid": os.getpid(),
            "work_memo": parallel_work.cache_stats(),
            "runner": runner.cache_stats(),
        }
        return point.record, point.from_cache, stats

    # -- observability ---------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` document (deployment knobs included)."""
        if self._runner is not None:
            # Thread/serial pools solve in-parent: report the shared runner's
            # counters through the same worker-stats channel as process mode.
            self.metrics.record_worker_stats(
                {
                    "pid": os.getpid(),
                    "work_memo": parallel_work.cache_stats(),
                    "runner": self._runner.cache_stats(),
                }
            )
        snapshot = self.metrics.snapshot(
            in_flight=len(self._inflight),
            waiters=self._waiters,
            draining=self._draining,
        )
        snapshot["executor"] = self.config.executor
        snapshot["workers"] = self.worker_count()
        snapshot["queue_limit"] = self.config.queue_limit
        snapshot["cache_dir"] = self.config.cache_dir
        return snapshot

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document (503 while draining, 200 otherwise)."""
        return {
            "status": "draining" if self._draining else "ok",
            "in_flight": len(self._inflight),
            "waiters": self._waiters,
            "executor": self.config.executor,
        }
