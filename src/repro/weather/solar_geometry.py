"""Solar-position geometry used by the synthetic TMY generator.

These are the standard engineering approximations (Cooper's declination
formula, hour-angle based elevation, and a simple clear-sky transmittance
model) — accurate enough to produce realistic diurnal and seasonal
irradiance shapes and capacity factors in the 10-23 % range the paper
observes for its locations.
"""

from __future__ import annotations

import math

import numpy as np

SOLAR_CONSTANT_W_M2 = 1361.0


def solar_declination_deg(day_of_year: np.ndarray | float) -> np.ndarray | float:
    """Solar declination in degrees for a day of year (0-based)."""
    day = np.asarray(day_of_year, dtype=float)
    declination = 23.45 * np.sin(2.0 * math.pi * (284.0 + day + 1.0) / 365.0)
    if np.isscalar(day_of_year):
        return float(declination)
    return declination


def solar_elevation_deg(
    latitude_deg: float,
    day_of_year: np.ndarray | float,
    hour_of_day: np.ndarray | float,
) -> np.ndarray | float:
    """Solar elevation angle in degrees (negative below the horizon).

    ``hour_of_day`` is local solar time; solar noon is at 12.0.
    """
    latitude = math.radians(latitude_deg)
    declination = np.radians(solar_declination_deg(day_of_year))
    hour_angle = np.radians(15.0 * (np.asarray(hour_of_day, dtype=float) - 12.0))
    sin_elevation = (
        np.sin(latitude) * np.sin(declination)
        + np.cos(latitude) * np.cos(declination) * np.cos(hour_angle)
    )
    elevation = np.degrees(np.arcsin(np.clip(sin_elevation, -1.0, 1.0)))
    if np.isscalar(day_of_year) and np.isscalar(hour_of_day):
        return float(elevation)
    return elevation


def clear_sky_irradiance(
    latitude_deg: float,
    day_of_year: np.ndarray | float,
    hour_of_day: np.ndarray | float,
    turbidity: float = 0.75,
) -> np.ndarray | float:
    """Clear-sky global horizontal irradiance in W/m^2.

    Uses a simple air-mass transmittance model: GHI = S0 * sin(h) * tau^(1/sin(h)),
    clipped to zero below the horizon.  ``turbidity`` (atmospheric
    transmittance at zenith) defaults to 0.75, a typical mid-latitude value.
    """
    if not 0.0 < turbidity <= 1.0:
        raise ValueError("turbidity must be in (0, 1]")
    elevation = solar_elevation_deg(latitude_deg, day_of_year, hour_of_day)
    elevation_arr = np.asarray(elevation, dtype=float)
    sin_h = np.sin(np.radians(np.clip(elevation_arr, 0.0, 90.0)))
    with np.errstate(divide="ignore", invalid="ignore"):
        transmittance = np.where(sin_h > 1e-3, turbidity ** (1.0 / np.maximum(sin_h, 1e-3)), 0.0)
    ghi = SOLAR_CONSTANT_W_M2 * sin_h * transmittance
    ghi = np.where(elevation_arr > 0.0, ghi, 0.0)
    if np.isscalar(elevation):
        return float(ghi)
    return ghi


def daylight_hours(latitude_deg: float, day_of_year: int) -> float:
    """Approximate day length in hours for a latitude and day of year."""
    declination = math.radians(solar_declination_deg(float(day_of_year)))
    latitude = math.radians(latitude_deg)
    cos_hour_angle = -math.tan(latitude) * math.tan(declination)
    cos_hour_angle = min(1.0, max(-1.0, cos_hour_angle))
    return 2.0 * math.degrees(math.acos(cos_hour_angle)) / 15.0
