"""Deterministic synthetic TMY generation.

Each location is described by a :class:`ClimateProfile`; the
:class:`TMYGenerator` turns a profile into an hourly
:class:`~repro.weather.records.TMYDataset` that is fully deterministic for a
given ``(seed, location name)`` pair, so every run of the test-suite and the
benchmarks sees exactly the same "weather".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.weather.records import DAYS_PER_YEAR, HOURS_PER_DAY, HOURS_PER_YEAR, TMYDataset
from repro.weather.solar_geometry import clear_sky_irradiance


@dataclass(frozen=True)
class ClimateProfile:
    """Climate parameters of a synthetic location.

    Attributes
    ----------
    mean_temperature_c:
        Annual mean external temperature.
    seasonal_amplitude_c:
        Half peak-to-peak amplitude of the seasonal temperature cycle.
    diurnal_amplitude_c:
        Half peak-to-peak amplitude of the daily temperature cycle.
    cloudiness:
        Fraction in [0, 1]; 0 means permanently clear skies, 1 heavy overcast.
        It both attenuates irradiance and adds day-to-day variability.
    mean_wind_speed_m_s:
        Annual mean wind speed at hub height.
    wind_variability:
        Multiplicative day-to-day variability of wind (Weibull-like shape).
    wind_seasonality:
        Fraction in [0, 1]; how strongly wind follows a winter-peaked cycle.
    altitude_m:
        Site altitude, used to derive mean air pressure.
    """

    mean_temperature_c: float = 15.0
    seasonal_amplitude_c: float = 10.0
    diurnal_amplitude_c: float = 6.0
    cloudiness: float = 0.4
    mean_wind_speed_m_s: float = 5.0
    wind_variability: float = 0.5
    wind_seasonality: float = 0.3
    altitude_m: float = 200.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cloudiness <= 1.0:
            raise ValueError("cloudiness must lie in [0, 1]")
        if self.mean_wind_speed_m_s < 0:
            raise ValueError("mean wind speed cannot be negative")
        if not 0.0 <= self.wind_seasonality <= 1.0:
            raise ValueError("wind seasonality must lie in [0, 1]")
        if self.wind_variability < 0:
            raise ValueError("wind variability cannot be negative")


class TMYGenerator:
    """Generate deterministic synthetic TMY datasets.

    Parameters
    ----------
    seed:
        Global seed; combined with the location name so that each location has
        its own, but reproducible, weather noise.
    """

    def __init__(self, seed: int = 2014) -> None:
        self.seed = int(seed)

    # -- public API -------------------------------------------------------------
    def generate(self, name: str, latitude_deg: float, climate: ClimateProfile) -> TMYDataset:
        """Generate the TMY for one location."""
        rng = self._rng(name)
        hours = np.arange(HOURS_PER_YEAR)
        day_of_year = hours // HOURS_PER_DAY
        hour_of_day = hours % HOURS_PER_DAY

        temperature = self._temperature(latitude_deg, climate, day_of_year, hour_of_day, rng)
        ghi = self._irradiance(latitude_deg, climate, day_of_year, hour_of_day, rng)
        wind = self._wind(latitude_deg, climate, day_of_year, hour_of_day, rng)
        pressure = self._pressure(climate, temperature, rng)
        return TMYDataset(
            temperature_c=temperature,
            ghi_w_m2=ghi,
            wind_speed_m_s=wind,
            pressure_kpa=pressure,
        )

    # -- channels ---------------------------------------------------------------
    def _temperature(
        self,
        latitude_deg: float,
        climate: ClimateProfile,
        day_of_year: np.ndarray,
        hour_of_day: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # Seasonal cycle peaks in mid-summer: around day 200 in the northern
        # hemisphere and day 20 in the southern hemisphere.
        peak_day = 200.0 if latitude_deg >= 0 else 20.0
        seasonal = climate.seasonal_amplitude_c * np.cos(
            2.0 * math.pi * (day_of_year - peak_day) / DAYS_PER_YEAR
        )
        # Diurnal cycle peaks mid-afternoon (15:00) and bottoms before dawn.
        diurnal = climate.diurnal_amplitude_c * np.cos(2.0 * math.pi * (hour_of_day - 15.0) / 24.0)
        daily_noise = np.repeat(rng.normal(0.0, 1.5, DAYS_PER_YEAR), HOURS_PER_DAY)
        hourly_noise = rng.normal(0.0, 0.4, HOURS_PER_YEAR)
        return climate.mean_temperature_c + seasonal + diurnal + daily_noise + hourly_noise

    def _irradiance(
        self,
        latitude_deg: float,
        climate: ClimateProfile,
        day_of_year: np.ndarray,
        hour_of_day: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        clear = clear_sky_irradiance(latitude_deg, day_of_year, hour_of_day)
        # Day-to-day clearness index: cloudy locations lose more energy and
        # see larger swings between overcast and clear days.
        base_clearness = 1.0 - 0.65 * climate.cloudiness
        daily_clearness = np.clip(
            rng.beta(4.0 * (1.0 - climate.cloudiness) + 1.0, 4.0 * climate.cloudiness + 1.0, DAYS_PER_YEAR),
            0.05,
            1.0,
        )
        clearness = 0.5 * base_clearness + 0.5 * np.repeat(daily_clearness, HOURS_PER_DAY)
        hourly_flicker = np.clip(rng.normal(1.0, 0.05, HOURS_PER_YEAR), 0.7, 1.2)
        return np.maximum(0.0, clear * clearness * hourly_flicker)

    def _wind(
        self,
        latitude_deg: float,
        climate: ClimateProfile,
        day_of_year: np.ndarray,
        hour_of_day: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        peak_day = 15.0 if latitude_deg >= 0 else 195.0  # wind tends to peak in winter
        seasonal = 1.0 + climate.wind_seasonality * np.cos(
            2.0 * math.pi * (day_of_year - peak_day) / DAYS_PER_YEAR
        )
        diurnal = 1.0 + 0.15 * np.cos(2.0 * math.pi * (hour_of_day - 14.0) / 24.0)
        # Day-scale lognormal variability approximating a Weibull distribution.
        daily = np.repeat(
            rng.lognormal(mean=-0.5 * climate.wind_variability**2, sigma=climate.wind_variability, size=DAYS_PER_YEAR),
            HOURS_PER_DAY,
        )
        hourly = np.clip(rng.normal(1.0, 0.15, HOURS_PER_YEAR), 0.3, 2.0)
        wind = climate.mean_wind_speed_m_s * seasonal * diurnal * daily * hourly
        return np.maximum(0.0, wind)

    def _pressure(
        self,
        climate: ClimateProfile,
        temperature_c: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # Barometric formula for the mean plus small synoptic noise.
        sea_level_kpa = 101.325
        scale_height_m = 8434.0
        mean_pressure = sea_level_kpa * math.exp(-max(0.0, climate.altitude_m) / scale_height_m)
        noise = np.repeat(rng.normal(0.0, 0.6, DAYS_PER_YEAR), HOURS_PER_DAY)
        return np.maximum(50.0, mean_pressure + noise)

    # -- helpers ----------------------------------------------------------------
    def _rng(self, name: str) -> np.random.Generator:
        digest = 0
        for char in name:
            digest = (digest * 131 + ord(char)) % (2**31)
        return np.random.default_rng((self.seed * 1_000_003 + digest) % (2**63))
