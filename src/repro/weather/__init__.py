"""Synthetic Typical Meteorological Year (TMY) data and the world location catalogue.

The paper drives its siting study with DOE TMY datasets for 1373 world-wide
locations (hourly temperature, solar irradiation, air pressure and wind
speed).  That dataset is not redistributable here, so this subpackage
synthesises an equivalent: a deterministic hourly weather generator based on
solar geometry, seasonal/diurnal temperature cycles and Weibull-like wind,
plus a catalogue of 1373 synthetic locations whose capacity-factor and PUE
distributions span the same ranges the paper reports, including named
*anchor* locations calibrated to the exact values of Tables II and III.
"""

from repro.weather.records import TMYDataset, HOURS_PER_YEAR
from repro.weather.solar_geometry import (
    clear_sky_irradiance,
    solar_declination_deg,
    solar_elevation_deg,
)
from repro.weather.synthesis import ClimateProfile, TMYGenerator
from repro.weather.locations import (
    ANCHOR_LOCATIONS,
    Location,
    WorldCatalog,
    build_world_catalog,
)

__all__ = [
    "ANCHOR_LOCATIONS",
    "ClimateProfile",
    "HOURS_PER_YEAR",
    "Location",
    "TMYDataset",
    "TMYGenerator",
    "WorldCatalog",
    "build_world_catalog",
    "clear_sky_irradiance",
    "solar_declination_deg",
    "solar_elevation_deg",
]
