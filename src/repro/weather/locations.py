"""World location catalogue.

The catalogue plays the role of the paper's 1373 TMY locations.  Most
locations are synthetic (deterministically generated climates spread across
the continents with realistic latitude-driven structure), but the locations
that appear by name in the paper's tables — Kiev, Harare, Nairobi, Mount
Washington, Burke Lakefront, Grissom, Mexico City, Andersen (Guam), and the
four capacity-factor examples of Section II — are included as *anchors*
carrying the published capacity factors, PUEs, prices and infrastructure
distances, so that the reproduced tables match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.geo.coordinates import GeoPoint
from repro.geo.grid import GridEnergyPricing
from repro.geo.infrastructure import InfrastructureMap, synthesize_infrastructure
from repro.geo.land import LandPriceModel
from repro.weather.records import TMYDataset
from repro.weather.synthesis import ClimateProfile, TMYGenerator


@dataclass(frozen=True)
class LocationOverrides:
    """Published per-location values that take precedence over the models.

    Any ``None`` field falls back to the synthetic model.  Capacity-factor and
    PUE targets are applied by ``repro.energy.profiles`` as a calibration of
    the generated hourly series (the series keeps its diurnal/seasonal shape;
    its annual mean is scaled to the target).
    """

    solar_capacity_factor: Optional[float] = None
    wind_capacity_factor: Optional[float] = None
    max_pue: Optional[float] = None
    land_price_per_m2: Optional[float] = None
    energy_price_per_kwh: Optional[float] = None
    distance_power_km: Optional[float] = None
    distance_network_km: Optional[float] = None
    near_plant_capacity_kw: Optional[float] = None


@dataclass(frozen=True)
class Location:
    """A candidate datacenter location."""

    name: str
    point: GeoPoint
    climate: ClimateProfile
    country: str = ""
    urbanisation: float = 0.5
    is_anchor: bool = False
    overrides: LocationOverrides = field(default_factory=LocationOverrides)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a location needs a non-empty name")
        if not 0.0 <= self.urbanisation <= 1.0:
            raise ValueError("urbanisation must lie in [0, 1]")


def _anchor(
    name: str,
    country: str,
    latitude: float,
    longitude: float,
    climate: ClimateProfile,
    urbanisation: float,
    **override_kwargs,
) -> Location:
    return Location(
        name=name,
        point=GeoPoint(latitude, longitude),
        climate=climate,
        country=country,
        urbanisation=urbanisation,
        is_anchor=True,
        overrides=LocationOverrides(**override_kwargs),
    )


#: Named locations from Tables II and III and Section II of the paper, with the
#: published capacity factors, maximum PUEs, electricity prices ($/kWh), land
#: prices ($/m^2) and infrastructure distances (km).
ANCHOR_LOCATIONS: List[Location] = [
    _anchor(
        "Kiev, Ukraine", "Ukraine", 50.45, 30.52,
        ClimateProfile(8.0, 12.0, 5.0, 0.55, 4.5, 0.5, 0.4, 170.0), 0.7,
        solar_capacity_factor=0.115, wind_capacity_factor=0.06, max_pue=1.06,
        energy_price_per_kwh=0.030, land_price_per_m2=22.0,
        distance_power_km=22.0, distance_network_km=7.0,
        near_plant_capacity_kw=3_000_000.0,
    ),
    _anchor(
        "Harare, Zimbabwe", "Zimbabwe", -17.83, 31.05,
        ClimateProfile(18.5, 5.0, 8.0, 0.25, 3.5, 0.4, 0.2, 1490.0), 0.3,
        solar_capacity_factor=0.224, wind_capacity_factor=0.05, max_pue=1.07,
        energy_price_per_kwh=0.098, land_price_per_m2=14.7,
        distance_power_km=400.0, distance_network_km=390.0,
        near_plant_capacity_kw=900_000.0,
    ),
    _anchor(
        "Nairobi, Kenya", "Kenya", -1.29, 36.82,
        ClimateProfile(19.0, 3.0, 7.0, 0.30, 3.8, 0.4, 0.2, 1795.0), 0.4,
        solar_capacity_factor=0.209, wind_capacity_factor=0.06, max_pue=1.07,
        energy_price_per_kwh=0.070, land_price_per_m2=14.7,
        distance_power_km=30.0, distance_network_km=25.0,
        near_plant_capacity_kw=1_200_000.0,
    ),
    _anchor(
        "Mount Washington, NH, USA", "USA", 44.27, -71.30,
        ClimateProfile(2.0, 12.0, 5.0, 0.55, 12.5, 0.55, 0.5, 1910.0), 0.2,
        solar_capacity_factor=0.135, wind_capacity_factor=0.556, max_pue=1.06,
        energy_price_per_kwh=0.126, land_price_per_m2=947.0,
        distance_power_km=345.0, distance_network_km=71.0,
        near_plant_capacity_kw=1_500_000.0,
    ),
    _anchor(
        "Burke Lakefront, OH, USA", "USA", 41.52, -81.68,
        ClimateProfile(10.5, 13.0, 5.0, 0.50, 6.5, 0.5, 0.4, 180.0), 0.6,
        solar_capacity_factor=0.150, wind_capacity_factor=0.209, max_pue=1.06,
        energy_price_per_kwh=0.058, land_price_per_m2=329.0,
        distance_power_km=409.0, distance_network_km=3.0,
        near_plant_capacity_kw=2_500_000.0,
    ),
    _anchor(
        "Grissom, IN, USA", "USA", 40.67, -86.15,
        ClimateProfile(11.0, 13.0, 6.0, 0.50, 5.5, 0.5, 0.4, 250.0), 0.4,
        solar_capacity_factor=0.152, wind_capacity_factor=0.164, max_pue=1.07,
        energy_price_per_kwh=0.062, land_price_per_m2=85.0,
        distance_power_km=45.0, distance_network_km=30.0,
        near_plant_capacity_kw=3_000_000.0,
    ),
    _anchor(
        "Mexico City, Mexico", "Mexico", 19.43, -99.13,
        ClimateProfile(16.5, 3.5, 8.0, 0.35, 3.0, 0.4, 0.2, 2240.0), 0.8,
        solar_capacity_factor=0.205, wind_capacity_factor=0.04, max_pue=1.08,
        energy_price_per_kwh=0.080, land_price_per_m2=160.0,
        distance_power_km=40.0, distance_network_km=18.0,
        near_plant_capacity_kw=2_000_000.0,
    ),
    _anchor(
        "Andersen, Guam", "Guam", 13.58, 144.92,
        ClimateProfile(27.0, 1.5, 4.0, 0.40, 6.5, 0.4, 0.3, 160.0), 0.3,
        solar_capacity_factor=0.185, wind_capacity_factor=0.12, max_pue=1.12,
        energy_price_per_kwh=0.160, land_price_per_m2=70.0,
        distance_power_km=25.0, distance_network_km=20.0,
        near_plant_capacity_kw=400_000.0,
    ),
    _anchor(
        "Berlin, Germany", "Germany", 52.52, 13.40,
        ClimateProfile(9.5, 10.0, 5.0, 0.60, 4.0, 0.5, 0.4, 35.0), 0.8,
        solar_capacity_factor=0.135, wind_capacity_factor=0.034, max_pue=1.07,
        energy_price_per_kwh=0.140, land_price_per_m2=320.0,
        distance_power_km=20.0, distance_network_km=5.0,
        near_plant_capacity_kw=2_500_000.0,
    ),
    _anchor(
        "New York, NY, USA", "USA", 40.71, -74.01,
        ClimateProfile(12.5, 12.0, 4.5, 0.50, 5.5, 0.5, 0.4, 10.0), 1.0,
        solar_capacity_factor=0.164, wind_capacity_factor=0.189, max_pue=1.08,
        energy_price_per_kwh=0.180, land_price_per_m2=900.0,
        distance_power_km=15.0, distance_network_km=2.0,
        near_plant_capacity_kw=4_000_000.0,
    ),
    _anchor(
        "Canberra, Australia", "Australia", -35.28, 149.13,
        ClimateProfile(13.0, 8.0, 9.0, 0.35, 4.0, 0.4, 0.3, 580.0), 0.6,
        solar_capacity_factor=0.202, wind_capacity_factor=0.084, max_pue=1.08,
        energy_price_per_kwh=0.150, land_price_per_m2=250.0,
        distance_power_km=60.0, distance_network_km=12.0,
        near_plant_capacity_kw=1_500_000.0,
    ),
    _anchor(
        "Phoenix, AZ, USA", "USA", 33.45, -112.07,
        ClimateProfile(23.5, 10.0, 9.0, 0.15, 3.5, 0.4, 0.2, 340.0), 0.7,
        solar_capacity_factor=0.229, wind_capacity_factor=0.034, max_pue=1.12,
        energy_price_per_kwh=0.095, land_price_per_m2=180.0,
        distance_power_km=30.0, distance_network_km=8.0,
        near_plant_capacity_kw=3_500_000.0,
    ),
]


# Latitude/longitude bands used to scatter the synthetic locations with a
# density similar to the paper's coverage (dense over North America, Europe
# and parts of Asia; sparser but present elsewhere).
_SYNTHETIC_BANDS = (
    # (name, lat_min, lat_max, lon_min, lon_max, weight)
    ("north-america", 25.0, 58.0, -125.0, -65.0, 0.30),
    ("europe", 36.0, 62.0, -10.0, 35.0, 0.28),
    ("east-asia", 20.0, 48.0, 100.0, 142.0, 0.16),
    ("south-asia", 6.0, 32.0, 62.0, 95.0, 0.07),
    ("south-america", -38.0, 8.0, -78.0, -38.0, 0.07),
    ("africa", -32.0, 34.0, -14.0, 48.0, 0.07),
    ("oceania", -43.0, -12.0, 114.0, 152.0, 0.05),
)


class WorldCatalog:
    """A set of candidate locations plus the models that price them.

    The catalogue bundles the location list, the synthetic infrastructure map
    and the land/grid price models and exposes per-location accessors that
    honour anchor overrides.  It also owns the TMY generator so all weather is
    derived from one seed.
    """

    def __init__(
        self,
        locations: Sequence[Location],
        infrastructure: Optional[InfrastructureMap] = None,
        land_prices: Optional[LandPriceModel] = None,
        grid_prices: Optional[GridEnergyPricing] = None,
        tmy_generator: Optional[TMYGenerator] = None,
    ) -> None:
        if not locations:
            raise ValueError("a WorldCatalog needs at least one location")
        self._locations: List[Location] = list(locations)
        self._by_name: Dict[str, Location] = {}
        for location in self._locations:
            if location.name in self._by_name:
                raise ValueError(f"duplicate location name {location.name!r}")
            self._by_name[location.name] = location
        self.infrastructure = infrastructure or synthesize_infrastructure()
        self.land_prices = land_prices or LandPriceModel()
        self.grid_prices = grid_prices or GridEnergyPricing()
        self.tmy_generator = tmy_generator or TMYGenerator()
        self._tmy_cache: Dict[str, TMYDataset] = {}

    # -- access -----------------------------------------------------------------
    @property
    def locations(self) -> List[Location]:
        return list(self._locations)

    @property
    def names(self) -> List[str]:
        return [location.name for location in self._locations]

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self):
        return iter(self._locations)

    def get(self, name: str) -> Location:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no location named {name!r} in the catalogue") from None

    def subset(self, names: Iterable[str]) -> "WorldCatalog":
        """A catalogue restricted to the given location names (same models)."""
        subset_locations = [self.get(name) for name in names]
        catalog = WorldCatalog(
            subset_locations,
            infrastructure=self.infrastructure,
            land_prices=self.land_prices,
            grid_prices=self.grid_prices,
            tmy_generator=self.tmy_generator,
        )
        catalog._tmy_cache = self._tmy_cache
        return catalog

    # -- per-location attributes ---------------------------------------------------
    def tmy(self, location: Location) -> TMYDataset:
        """The (cached) synthetic TMY for a location."""
        if location.name not in self._tmy_cache:
            self._tmy_cache[location.name] = self.tmy_generator.generate(
                location.name, location.point.latitude, location.climate
            )
        return self._tmy_cache[location.name]

    def land_price_per_m2(self, location: Location) -> float:
        if location.overrides.land_price_per_m2 is not None:
            return location.overrides.land_price_per_m2
        return self.land_prices.price_per_m2(location.name, location.point, location.urbanisation)

    def energy_price_per_kwh(self, location: Location) -> float:
        if location.overrides.energy_price_per_kwh is not None:
            return location.overrides.energy_price_per_kwh
        return self.grid_prices.price_per_kwh(location.name, location.point)

    def distance_to_power_km(self, location: Location) -> float:
        if location.overrides.distance_power_km is not None:
            return location.overrides.distance_power_km
        _, distance = self.infrastructure.nearest_plant(location.point)
        return distance

    def distance_to_network_km(self, location: Location) -> float:
        if location.overrides.distance_network_km is not None:
            return location.overrides.distance_network_km
        _, distance = self.infrastructure.nearest_backbone(location.point)
        return distance

    def near_plant_capacity_kw(self, location: Location) -> float:
        if location.overrides.near_plant_capacity_kw is not None:
            return location.overrides.near_plant_capacity_kw
        return self.infrastructure.nearest_plant_capacity_kw(location.point)


def build_world_catalog(
    num_locations: int = 1373,
    seed: int = 2014,
    include_anchors: bool = True,
) -> WorldCatalog:
    """Build the world catalogue of candidate locations.

    ``num_locations`` is the total count including anchors (the paper uses
    1373); smaller values are used throughout the test-suite for speed.
    """
    if num_locations < 1:
        raise ValueError("the catalogue needs at least one location")
    rng = np.random.default_rng(seed)
    locations: List[Location] = []
    if include_anchors:
        locations.extend(ANCHOR_LOCATIONS[: min(len(ANCHOR_LOCATIONS), num_locations)])
    remaining = num_locations - len(locations)
    band_names = [band[0] for band in _SYNTHETIC_BANDS]
    band_weights = np.array([band[5] for band in _SYNTHETIC_BANDS])
    band_weights = band_weights / band_weights.sum()
    counts = rng.multinomial(max(0, remaining), band_weights)
    for (band, count) in zip(_SYNTHETIC_BANDS, counts):
        name, lat_min, lat_max, lon_min, lon_max, _ = band
        for index in range(count):
            latitude = float(rng.uniform(lat_min, lat_max))
            longitude = float(rng.uniform(lon_min, lon_max))
            climate = _climate_for(latitude, rng)
            locations.append(
                Location(
                    name=f"{name}-{index:04d}",
                    point=GeoPoint(latitude, longitude),
                    climate=climate,
                    country=name,
                    urbanisation=float(rng.uniform(0.1, 0.9)),
                )
            )
    return WorldCatalog(locations[:num_locations])


def _climate_for(latitude: float, rng: np.random.Generator) -> ClimateProfile:
    """Latitude-driven climate with per-location randomness."""
    abs_latitude = abs(latitude)
    mean_temperature = 27.0 - 0.45 * abs_latitude + float(rng.normal(0.0, 2.5))
    seasonal = 2.0 + 0.28 * abs_latitude + float(rng.uniform(-1.0, 1.0))
    diurnal = float(rng.uniform(4.0, 10.0))
    # Deserts (roughly 15-35 degrees) are the clearest; equator and high
    # latitudes are cloudier.
    if 15.0 <= abs_latitude <= 35.0:
        cloudiness = float(rng.uniform(0.15, 0.45))
    elif abs_latitude < 15.0:
        cloudiness = float(rng.uniform(0.35, 0.6))
    else:
        cloudiness = float(rng.uniform(0.4, 0.75))
    # Wind: mostly modest means with a windy tail (ridges, coasts, plains).
    roll = rng.uniform()
    if roll < 0.55:
        wind_mean = float(rng.uniform(2.5, 5.5))
    elif roll < 0.88:
        wind_mean = float(rng.uniform(5.5, 8.5))
    else:
        wind_mean = float(rng.uniform(8.5, 12.5))
    altitude = float(max(0.0, rng.gamma(2.0, 200.0)))
    return ClimateProfile(
        mean_temperature_c=mean_temperature,
        seasonal_amplitude_c=seasonal,
        diurnal_amplitude_c=diurnal,
        cloudiness=cloudiness,
        mean_wind_speed_m_s=wind_mean,
        wind_variability=float(rng.uniform(0.3, 0.7)),
        wind_seasonality=float(rng.uniform(0.1, 0.5)),
        altitude_m=altitude,
    )
