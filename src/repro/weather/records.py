"""TMY dataset container.

A Typical Meteorological Year is an hourly dataset (8760 hours) selected so
that its annual statistics match the long-term climate of a location.  Our
synthetic equivalent stores the four channels the framework needs:
temperature, global horizontal irradiance, wind speed and air pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOURS_PER_YEAR = 8760
DAYS_PER_YEAR = 365
HOURS_PER_DAY = 24


@dataclass
class TMYDataset:
    """One synthetic Typical Meteorological Year for a location.

    All arrays have :data:`HOURS_PER_YEAR` entries, hour 0 being 00:00 local
    solar time on January 1st.

    Attributes
    ----------
    temperature_c:
        Dry-bulb external temperature in degrees Celsius.
    ghi_w_m2:
        Global horizontal irradiance in W/m^2.
    wind_speed_m_s:
        Wind speed at hub height in m/s.
    pressure_kpa:
        Air pressure in kPa (used for air-density correction of wind power).
    """

    temperature_c: np.ndarray
    ghi_w_m2: np.ndarray
    wind_speed_m_s: np.ndarray
    pressure_kpa: np.ndarray

    def __post_init__(self) -> None:
        for name in ("temperature_c", "ghi_w_m2", "wind_speed_m_s", "pressure_kpa"):
            array = np.asarray(getattr(self, name), dtype=float)
            if array.shape != (HOURS_PER_YEAR,):
                raise ValueError(
                    f"TMY channel {name} must have {HOURS_PER_YEAR} hourly values, "
                    f"got shape {array.shape}"
                )
            setattr(self, name, array)
        if np.any(self.ghi_w_m2 < -1e-9):
            raise ValueError("irradiance cannot be negative")
        if np.any(self.wind_speed_m_s < -1e-9):
            raise ValueError("wind speed cannot be negative")
        if np.any(self.pressure_kpa <= 0):
            raise ValueError("pressure must be positive")

    @property
    def num_hours(self) -> int:
        return HOURS_PER_YEAR

    def hour_of_day(self) -> np.ndarray:
        """Hour-of-day index (0..23) for each entry."""
        return np.arange(HOURS_PER_YEAR) % HOURS_PER_DAY

    def day_of_year(self) -> np.ndarray:
        """Day-of-year index (0..364) for each entry."""
        return np.arange(HOURS_PER_YEAR) // HOURS_PER_DAY

    def select_days(self, day_indices) -> "TMYDataset":
        """Return a dataset view restricted to whole days (used by tests).

        The result is *not* a full TMY (fewer than 8760 hours), so it is
        returned as plain arrays in a dictionary rather than a TMYDataset.
        """
        day_indices = np.asarray(day_indices, dtype=int)
        if np.any(day_indices < 0) or np.any(day_indices >= DAYS_PER_YEAR):
            raise ValueError("day indices must lie within the year")
        hour_mask = np.concatenate(
            [np.arange(d * HOURS_PER_DAY, (d + 1) * HOURS_PER_DAY) for d in day_indices]
        )
        return {
            "temperature_c": self.temperature_c[hour_mask],
            "ghi_w_m2": self.ghi_w_m2[hour_mask],
            "wind_speed_m_s": self.wind_speed_m_s[hour_mask],
            "pressure_kpa": self.pressure_kpa[hour_mask],
        }

    def summary(self) -> dict:
        """Annual summary statistics used in documentation and tests."""
        return {
            "mean_temperature_c": float(np.mean(self.temperature_c)),
            "max_temperature_c": float(np.max(self.temperature_c)),
            "mean_ghi_w_m2": float(np.mean(self.ghi_w_m2)),
            "mean_wind_speed_m_s": float(np.mean(self.wind_speed_m_s)),
            "mean_pressure_kpa": float(np.mean(self.pressure_kpa)),
        }
