"""Definition of the siting/provisioning optimisation problem.

A :class:`SitingProblem` bundles the candidate location profiles, the
framework parameters, and the scenario switches the paper sweeps in its
evaluation: which renewable technologies may be built, how green energy can
be stored (net metering, batteries, or not at all), the required green
fraction and the migration-overhead factor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.availability import datacenters_needed
from repro.core.parameters import FrameworkParameters
from repro.energy.profiles import LocationProfile


class StorageMode(enum.Enum):
    """How surplus green energy may be stored."""

    NET_METERING = "net_metering"
    BATTERIES = "batteries"
    NONE = "none"


class GreenEnforcement(enum.Enum):
    """How the minimum-green-energy requirement is enforced.

    The paper's main formulation enforces the requirement over the whole year
    (``ANNUAL``); its technical report also studies a stricter form in which
    the share must hold in every time slot (``PER_EPOCH``), which removes the
    ability to compensate a brown night with a very green afternoon.
    """

    ANNUAL = "annual"
    PER_EPOCH = "per_epoch"


class EnergySources(enum.Enum):
    """Which on-site renewable technologies may be built."""

    SOLAR_ONLY = "solar"
    WIND_ONLY = "wind"
    SOLAR_AND_WIND = "solar+wind"
    NONE = "brown"

    @property
    def allows_solar(self) -> bool:
        return self in (EnergySources.SOLAR_ONLY, EnergySources.SOLAR_AND_WIND)

    @property
    def allows_wind(self) -> bool:
        return self in (EnergySources.WIND_ONLY, EnergySources.SOLAR_AND_WIND)


@dataclass
class SitingProblem:
    """One instance of the Fig. 1 optimisation.

    Attributes
    ----------
    profiles:
        Candidate locations with their epoch series and prices.  All profiles
        must share the same epoch grid.
    params:
        Global framework parameters.
    sources:
        Renewable technologies allowed (wind-only / solar-only / both / none).
    storage:
        Green-energy storage scenario.
    """

    profiles: List[LocationProfile]
    params: FrameworkParameters = field(default_factory=FrameworkParameters)
    sources: EnergySources = EnergySources.SOLAR_AND_WIND
    storage: StorageMode = StorageMode.NET_METERING
    green_enforcement: GreenEnforcement = GreenEnforcement.ANNUAL

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("a siting problem needs at least one candidate location")
        grids = {
            (p.epochs.representative_days, p.epochs.hours_per_epoch) for p in self.profiles
        }
        if len(grids) != 1:
            raise ValueError("all candidate profiles must share the same epoch grid")
        names = [p.name for p in self.profiles]
        if len(set(names)) != len(names):
            raise ValueError("candidate locations must have unique names")
        if self.params.min_green_fraction > 0 and self.sources is EnergySources.NONE:
            raise ValueError(
                "a green-energy requirement cannot be met when no renewable sources are allowed"
            )

    # -- convenience -----------------------------------------------------------------
    @property
    def epochs(self):
        return self.profiles[0].epochs

    @property
    def num_epochs(self) -> int:
        return self.epochs.num_epochs

    @property
    def num_locations(self) -> int:
        return len(self.profiles)

    @property
    def min_datacenters(self) -> int:
        """Minimum number of datacenters imposed by the availability constraint."""
        return datacenters_needed(
            self.params.datacenter_availability, self.params.min_availability
        )

    def profile_by_name(self, name: str) -> LocationProfile:
        for profile in self.profiles:
            if profile.name == name:
                return profile
        raise KeyError(f"no candidate location named {name!r}")

    def profile_map(self) -> Dict[str, LocationProfile]:
        return {profile.name: profile for profile in self.profiles}

    def restricted_to(self, names: Sequence[str]) -> "SitingProblem":
        """The same problem over a subset of candidate locations."""
        by_name = self.profile_map()
        missing = [name for name in names if name not in by_name]
        if missing:
            raise KeyError(f"unknown candidate locations: {missing}")
        return replace(self, profiles=[by_name[name] for name in names])

    def with_updates(
        self,
        params: Optional[FrameworkParameters] = None,
        sources: Optional[EnergySources] = None,
        storage: Optional[StorageMode] = None,
        green_enforcement: Optional[GreenEnforcement] = None,
    ) -> "SitingProblem":
        """Copy of the problem with some scenario switches replaced."""
        return replace(
            self,
            params=params or self.params,
            sources=sources or self.sources,
            storage=storage or self.storage,
            green_enforcement=green_enforcement or self.green_enforcement,
        )
