"""Datacenter-network availability model.

The paper models the availability of a network of ``n`` datacenters, each
with availability ``a``, as the probability that at least one datacenter is
up: ``sum_{i=0}^{n-1} C(n, i) a^{n-i} (1-a)^i`` — equivalently
``1 - (1-a)^n``.  The per-datacenter availability comes from the Uptime
Institute tier level.  The stricter requirement of Section II-B (after a
failure of ``n-1`` datacenters, ``S/n`` servers must remain) is satisfied by
any siting with at least the computed number of datacenters, because the
framework provisions every datacenter with at least ``totalCapacity / n``
compute power in the solutions we generate.
"""

from __future__ import annotations

import enum
import math


class Tier(enum.Enum):
    """Uptime Institute datacenter tiers and their typical availability."""

    TIER_I = ("Tier I", 0.9967)
    TIER_II = ("Tier II", 0.9974)
    TIER_III = ("Tier III", 0.9998)
    TIER_IV = ("Tier IV", 0.99995)
    NEAR_TIER_III = ("Near Tier III", 0.99827)  # the paper's default ($12-15/W DCs)

    def __init__(self, label: str, availability: float) -> None:
        self.label = label
        self.availability = availability


def network_availability(num_datacenters: int, datacenter_availability: float) -> float:
    """Availability of a network of independent datacenters.

    Probability that at least one of ``num_datacenters`` datacenters, each
    available with probability ``datacenter_availability``, is up.
    """
    if num_datacenters < 0:
        raise ValueError("the number of datacenters cannot be negative")
    if not 0.0 < datacenter_availability < 1.0:
        raise ValueError("the per-datacenter availability must lie in (0, 1)")
    if num_datacenters == 0:
        return 0.0
    return 1.0 - (1.0 - datacenter_availability) ** num_datacenters


def datacenters_needed(datacenter_availability: float, min_availability: float) -> int:
    """Smallest number of datacenters meeting the availability requirement."""
    if not 0.0 < min_availability < 1.0:
        raise ValueError("the minimum availability must lie in (0, 1)")
    if not 0.0 < datacenter_availability < 1.0:
        raise ValueError("the per-datacenter availability must lie in (0, 1)")
    # (1 - a)^n <= 1 - target   =>   n >= log(1 - target) / log(1 - a)
    needed = math.log(1.0 - min_availability) / math.log(1.0 - datacenter_availability)
    return max(1, int(math.ceil(needed - 1e-12)))


def availability_from_binomial(num_datacenters: int, datacenter_availability: float) -> float:
    """The paper's explicit binomial form of the availability (for validation).

    Numerically identical to :func:`network_availability`; kept because the
    test-suite checks the two formulations against each other.
    """
    if num_datacenters <= 0:
        return 0.0
    a = datacenter_availability
    total = 0.0
    for failures in range(num_datacenters):
        total += (
            math.comb(num_datacenters, failures)
            * a ** (num_datacenters - failures)
            * (1.0 - a) ** failures
        )
    return total
