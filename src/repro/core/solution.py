"""Solution data structures: per-datacenter plans and the network plan."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.availability import network_availability
from repro.core.parameters import FrameworkParameters
from repro.energy.profiles import LocationProfile

#: Cost-breakdown keys, in the order the paper's Fig. 7 stacks them.
COST_COMPONENTS = (
    "building_dc",
    "land_dc",
    "it_equipment",
    "connection",
    "brown_energy",
    "network_bandwidth",
    "building_solar",
    "land_solar",
    "building_wind",
    "land_wind",
    "battery",
)


@dataclass
class DatacenterPlan:
    """Provisioning decision for one sited datacenter.

    All power series are epoch-aligned with ``profile.epochs`` and expressed
    in kW; energy storage levels are in kWh; costs are $/month.
    """

    profile: LocationProfile
    size_class: str
    capacity_kw: float
    solar_kw: float
    wind_kw: float
    battery_kwh: float
    monthly_costs: Dict[str, float]
    compute_power_kw: np.ndarray
    migrate_power_kw: np.ndarray
    brown_power_kw: np.ndarray
    green_direct_kw: np.ndarray
    battery_charge_kw: np.ndarray
    battery_discharge_kw: np.ndarray
    net_charge_kw: np.ndarray
    net_discharge_kw: np.ndarray

    def __post_init__(self) -> None:
        expected = self.profile.epochs.num_epochs
        for name in (
            "compute_power_kw",
            "migrate_power_kw",
            "brown_power_kw",
            "green_direct_kw",
            "battery_charge_kw",
            "battery_discharge_kw",
            "net_charge_kw",
            "net_discharge_kw",
        ):
            array = np.asarray(getattr(self, name), dtype=float)
            if array.shape != (expected,):
                raise ValueError(f"series {name} must have {expected} epochs")
            setattr(self, name, array)
        unknown = set(self.monthly_costs) - set(COST_COMPONENTS)
        if unknown:
            raise ValueError(f"unknown cost components: {sorted(unknown)}")

    # -- identity -------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def total_monthly_cost(self) -> float:
        return float(sum(self.monthly_costs.values()))

    # -- energy accounting ------------------------------------------------------
    @property
    def power_demand_kw(self) -> np.ndarray:
        """``powDemand(d, t)`` including migration overhead and PUE."""
        return (self.compute_power_kw + self.migrate_power_kw) * self.profile.pue

    @property
    def demand_energy_kwh_year(self) -> float:
        weights = self.profile.epochs.epoch_weights_hours()
        return float(np.sum(self.power_demand_kw * weights))

    @property
    def green_energy_kwh_year(self) -> float:
        """Green energy used (directly or via storage) over the year."""
        weights = self.profile.epochs.epoch_weights_hours()
        used = self.green_direct_kw + self.battery_discharge_kw + self.net_discharge_kw
        return float(np.sum(used * weights))

    @property
    def brown_energy_kwh_year(self) -> float:
        weights = self.profile.epochs.epoch_weights_hours()
        return float(np.sum(self.brown_power_kw * weights))

    @property
    def green_production_kwh_year(self) -> float:
        """Potential on-site green production (before curtailment)."""
        weights = self.profile.epochs.epoch_weights_hours()
        production = (
            self.profile.solar_alpha * self.solar_kw + self.profile.wind_beta * self.wind_kw
        )
        return float(np.sum(production * weights))

    @property
    def num_servers(self) -> float:
        return self.capacity_kw / (0.275 + 0.480 / 32)

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by reports and EXPERIMENTS.md."""
        return {
            "capacity_kw": self.capacity_kw,
            "solar_kw": self.solar_kw,
            "wind_kw": self.wind_kw,
            "battery_kwh": self.battery_kwh,
            "monthly_cost": self.total_monthly_cost,
            "green_energy_kwh_year": self.green_energy_kwh_year,
            "brown_energy_kwh_year": self.brown_energy_kwh_year,
        }


@dataclass
class NetworkPlan:
    """A complete siting + provisioning solution for the datacenter network."""

    datacenters: List[DatacenterPlan]
    params: FrameworkParameters
    storage: str = "net_metering"
    sources: str = "solar+wind"
    solver_info: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.datacenters:
            raise ValueError("a network plan needs at least one datacenter")
        names = [dc.name for dc in self.datacenters]
        if len(set(names)) != len(names):
            raise ValueError("datacenter locations must be unique")

    # -- aggregates -----------------------------------------------------------------
    @property
    def num_datacenters(self) -> int:
        return len(self.datacenters)

    @property
    def total_monthly_cost(self) -> float:
        return float(sum(dc.total_monthly_cost for dc in self.datacenters))

    @property
    def total_capacity_kw(self) -> float:
        """Total provisioned compute capacity (Figs. 11 and 12)."""
        return float(sum(dc.capacity_kw for dc in self.datacenters))

    @property
    def total_solar_kw(self) -> float:
        return float(sum(dc.solar_kw for dc in self.datacenters))

    @property
    def total_wind_kw(self) -> float:
        return float(sum(dc.wind_kw for dc in self.datacenters))

    @property
    def total_battery_kwh(self) -> float:
        return float(sum(dc.battery_kwh for dc in self.datacenters))

    @property
    def green_fraction(self) -> float:
        """Achieved share of green energy over the year."""
        demand = sum(dc.demand_energy_kwh_year for dc in self.datacenters)
        if demand <= 0:
            return 0.0
        green = sum(dc.green_energy_kwh_year for dc in self.datacenters)
        return float(min(1.0, green / demand))

    @property
    def availability(self) -> float:
        return network_availability(self.num_datacenters, self.params.datacenter_availability)

    def cost_breakdown(self) -> Dict[str, float]:
        """Aggregate monthly cost per component (the stacks of Fig. 7)."""
        breakdown: Dict[str, float] = {component: 0.0 for component in COST_COMPONENTS}
        for dc in self.datacenters:
            for component, value in dc.monthly_costs.items():
                breakdown[component] += value
        return breakdown

    def datacenter(self, name: str) -> DatacenterPlan:
        for dc in self.datacenters:
            if dc.name == name:
                return dc
        raise KeyError(f"no datacenter at {name!r} in this plan")

    def summary(self) -> Dict[str, float]:
        return {
            "num_datacenters": self.num_datacenters,
            "monthly_cost": self.total_monthly_cost,
            "capacity_kw": self.total_capacity_kw,
            "solar_kw": self.total_solar_kw,
            "wind_kw": self.total_wind_kw,
            "battery_kwh": self.total_battery_kwh,
            "green_fraction": self.green_fraction,
            "availability": self.availability,
        }

    def describe(self) -> str:
        """Human-readable multi-line description (used by the examples)."""
        lines = [
            f"Network of {self.num_datacenters} datacenters "
            f"({self.total_capacity_kw / 1000:.1f} MW compute, "
            f"{100 * self.green_fraction:.1f}% green, "
            f"${self.total_monthly_cost / 1e6:.2f}M/month)",
        ]
        for dc in sorted(self.datacenters, key=lambda d: -d.capacity_kw):
            lines.append(
                f"  - {dc.name}: {dc.capacity_kw / 1000:.1f} MW IT, "
                f"{dc.solar_kw / 1000:.1f} MW solar, {dc.wind_kw / 1000:.1f} MW wind, "
                f"{dc.battery_kwh / 1000:.1f} MWh battery, "
                f"${dc.total_monthly_cost / 1e6:.2f}M/month"
            )
        return "\n".join(lines)
