"""Vectorized admissible screening and batched exact pricing of candidates.

The location filter (and the Fig. 6 single-site sweep) price every candidate
with its own single-site provisioning LP.  At catalogue scale that pass
dominates end-to-end planning, so this module supplies the two stages that
replace it:

**Stage 1 — vectorized lower bound** (:func:`screen_lower_bounds`).  A
pure-numpy *admissible* lower bound on each candidate's single-site monthly
cost, computed for the whole catalogue as array operations over the stacked
epoch profiles.  Admissible means ``bound <= exact LP optimum`` whenever the
LP is feasible, so pruning by the bound is exact: a candidate whose bound
exceeds a known achieved cost can never belong to the shortlist.

The bound is the optimum of a relaxation of the single-site LP.  With ``S``
the required capacity, ``w_t`` the epoch weights in hours (``sum(w) = 8760``)
and ``pue_t`` the site's PUE series:

* the per-epoch total-capacity rows force ``compute_t >= S`` and the
  capacity-cover rows force ``capacity >= S``, so the build cost is at least
  ``c_cap * S`` and the annual energy delivered to load is at least
  ``E_req = S * sum(w_t * pue_t)`` (migration only adds demand);
* every delivered green kWh costs at least
  ``gamma = min(c_solar / A_solar, c_wind / A_wind)`` where
  ``A = sum(w_t * production_t)`` is the annual yield per installed kW —
  delivered green (direct, via batteries, or via the net-metering bank)
  never exceeds production, battery round-trip efficiency is ``<= 1``, and
  the cyclic net-metering bank settles non-negatively because the epoch
  weights are proportional to the epoch hours and the net-metering credit is
  capped at 1;
* every delivered brown kWh costs ``b`` (the local price), the annual brown
  total is capped by the near-plant capacity ``B_ann``, and the delivered
  green total must reach
  ``G_req = max(min_green_fraction * E_req, E_req - B_ann)`` (the PER_EPOCH
  green mode only tightens the ANNUAL requirement this uses).

Minimising ``gamma * G + b * (E_req - G)`` over the admissible ``G`` gives a
closed-form energy bound; adding the build and fixed costs yields the bound.
Three cheap *infeasibility certificates* (no green buildable but green
required; no green buildable and the brown cap below peak demand; no storage
and a dead epoch whose demand exceeds the brown cap) are sound: a certified
candidate's LP is infeasible, so it can be dropped without pricing.

**Stage 2 — batched exact pricing** (:func:`price_batch`).  Survivors are
priced exactly by stacking many independent single-site LPs into one
block-diagonal mega-LP per chunk
(:meth:`~repro.core.provisioning.ProvisioningCompiler.compile_batch`), so one
HiGHS solve replaces k warm-started solves.  If the stacked solve fails —
one infeasible site makes the whole stack infeasible — the chunk falls back
to the per-site warm-started path, which classifies each site individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.costs import CostModel
from repro.core.problem import SitingProblem, StorageMode
from repro.lpsolver import SolverOptions
from repro.lpsolver import highs_backend
from repro.lpsolver.highs_backend import HighsSolveContext

__all__ = ["ScreenResult", "screen_lower_bounds", "price_batch", "price_per_site"]

#: Relative/absolute slack subtracted from the bound (and added to the
#: infeasibility-certificate comparisons) so float round-off in the vectorized
#: arithmetic or the LP solve can never flip an admissible bound above the
#: exact optimum.  The bound is typically several percent below the optimum;
#: this margin is orders of magnitude smaller than that gap.
_SAFETY_REL = 1e-9
_SAFETY_ABS = 1e-6


@dataclass
class ScreenResult:
    """Vectorized screen output, aligned with the problem's profile order."""

    names: List[str]
    lower_bounds: np.ndarray        #: admissible $/month bound; +inf when certified
    certified_infeasible: np.ndarray  #: sound infeasibility certificates (bool)

    @property
    def order(self) -> np.ndarray:
        """Candidate indices sorted by (bound, original index), certified last."""
        return np.argsort(self.lower_bounds, kind="stable")


def screen_lower_bounds(
    problem: SitingProblem,
    size_classes: Optional[Mapping[str, str]] = None,
) -> ScreenResult:
    """Admissible lower bounds on every candidate's single-site monthly cost.

    ``problem`` is the *pricing* problem (single-site scoring parameters
    already applied; ``params.total_capacity_kw`` is the per-site share).
    ``size_classes`` maps each location to the construction class its exact
    pricing LP will use (defaults to
    :func:`~repro.core.single_site.single_site_size_class` on the share), so
    the bound draws its objective coefficients from the very same
    :meth:`~repro.core.costs.CostModel.linear_coefficients` the LP objective
    is built from — the bound cannot drift from the model.
    """
    from repro.core.single_site import single_site_size_class

    params = problem.params
    profiles = problem.profiles
    share_kw = params.total_capacity_kw
    weights = problem.epochs.epoch_weights_hours()
    hours_per_year = float(weights.sum())

    pue = np.stack([profile.pue for profile in profiles])
    alpha = np.stack([profile.solar_alpha for profile in profiles])
    beta = np.stack([profile.wind_beta for profile in profiles])

    cost_model = CostModel(params)
    names: List[str] = []
    c_cap = np.empty(len(profiles))
    c_sol = np.empty(len(profiles))
    c_wnd = np.empty(len(profiles))
    brown_price = np.empty(len(profiles))
    fixed = np.empty(len(profiles))
    near_plant = np.empty(len(profiles))
    for index, profile in enumerate(profiles):
        if size_classes is not None:
            size_class = size_classes[profile.name]
        else:
            size_class = single_site_size_class(share_kw, profile, params)
        coefficients = cost_model.linear_coefficients(profile, size_class)
        names.append(profile.name)
        c_cap[index] = coefficients["capacity_kw"]
        c_sol[index] = coefficients["solar_kw"]
        c_wnd[index] = coefficients["wind_kw"]
        brown_price[index] = coefficients["brown_kwh_year"]
        fixed[index] = coefficients["fixed"]
        near_plant[index] = profile.near_plant_capacity_kw

    allow_solar = problem.sources.allows_solar
    allow_wind = problem.sources.allows_wind
    energy_required = share_kw * (pue @ weights)
    annual_solar = (alpha @ weights) if allow_solar else np.zeros(len(profiles))
    annual_wind = (beta @ weights) if allow_wind else np.zeros(len(profiles))
    inf = np.inf
    gamma = np.minimum(
        np.where(annual_solar > 0.0, c_sol / np.maximum(annual_solar, 1e-300), inf),
        np.where(annual_wind > 0.0, c_wnd / np.maximum(annual_wind, 1e-300), inf),
    )

    brown_cap_kw = np.maximum(0.0, params.brown_plant_cap_fraction * near_plant)
    brown_annual_kwh = hours_per_year * brown_cap_kw
    green_required = np.maximum(
        params.min_green_fraction * energy_required,
        energy_required - brown_annual_kwh,
    )
    green_required = np.maximum(green_required, 0.0)

    # Closed-form optimum of min gamma*G + b*(E - G) over admissible G:
    # all-green when green is the cheaper source, the minimum admissible green
    # share otherwise (gamma = inf collapses to all-brown, valid only when no
    # green is required).
    green_buildable = np.isfinite(gamma)
    gamma_safe = np.where(green_buildable, gamma, 0.0)
    mixed = gamma_safe * green_required + brown_price * (energy_required - green_required)
    energy_bound = np.where(
        green_buildable & (gamma < brown_price), gamma_safe * energy_required, mixed
    )

    # Sound infeasibility certificates.
    slack = 1.0 + _SAFETY_REL
    certified = ~green_buildable & (green_required > _SAFETY_ABS)
    peak_demand_kw = share_kw * pue.max(axis=1)
    certified |= ~green_buildable & (peak_demand_kw > brown_cap_kw * slack + _SAFETY_ABS)
    if problem.storage is StorageMode.NONE:
        # Without storage an epoch's demand is served by that epoch's green
        # production plus brown: a dead-production epoch whose demand exceeds
        # the brown cap is a certificate even when green is buildable.
        production = np.zeros_like(pue)
        if allow_solar:
            production += alpha
        if allow_wind:
            production += beta
        dead = production <= 0.0
        overloaded = share_kw * pue > brown_cap_kw[:, None] * slack + _SAFETY_ABS
        certified |= np.any(dead & overloaded, axis=1)

    bounds = fixed + c_cap * share_kw + energy_bound
    bounds = bounds - (np.abs(bounds) * _SAFETY_REL + _SAFETY_ABS)
    bounds = np.where(certified, inf, bounds)
    return ScreenResult(
        names=names,
        lower_bounds=bounds,
        certified_infeasible=certified,
    )


def price_batch(
    problem: SitingProblem,
    sitings: Sequence[Tuple[str, str]],
    options: SolverOptions,
    compiler=None,
) -> List[Tuple[str, float, bool]]:
    """Price ``(location, size_class)`` pairs with one block-diagonal solve.

    Returns ``(location, monthly_cost, feasible)`` rows in ``sitings`` order —
    the same rows :func:`~repro.parallel.work.run_pricing_chunk` produces.
    The stacked solve requires the direct HiGHS backend and a templatable
    grid; when unavailable, or when the stack does not solve to optimality
    (a single infeasible site makes the whole stack infeasible), the chunk
    falls back to per-site warm-started solves, which classify each site
    individually.
    """
    from repro.core.provisioning import ProvisioningCompiler

    if compiler is None:
        compiler = ProvisioningCompiler(problem)
    if highs_backend.AVAILABLE and options.backend in ("auto", "highs-direct"):
        compiled = compiler.compile_batch(sitings, enforce_spread=False)
        if compiled is not None:
            result = highs_backend.solve_row_form(compiled.row_form, options)
            if result.is_optimal:
                costs = compiled.site_costs(result.x)
                return [
                    (name, float(cost), True)
                    for name, cost in zip(compiled.names, costs)
                ]
    return price_per_site(problem, sitings, options, compiler)


def price_per_site(
    problem: SitingProblem,
    sitings: Sequence[Tuple[str, str]],
    options: SolverOptions,
    compiler=None,
) -> List[Tuple[str, float, bool]]:
    """Per-site warm-started pricing (the exact unbatched path).

    One fresh :class:`HighsSolveContext` carries the optimal basis across the
    structurally identical single-site LPs of the chunk, exactly like the
    pre-batching filter did; used both as the ``batch=False`` pricing path
    and as the fallback when a stacked solve fails.
    """
    from repro.core.provisioning import ProvisioningCompiler, solve_provisioning

    if compiler is None:
        compiler = ProvisioningCompiler(problem)
    context = HighsSolveContext() if highs_backend.AVAILABLE else None
    rows: List[Tuple[str, float, bool]] = []
    for name, size_class in sitings:
        result = solve_provisioning(
            problem,
            {name: size_class},
            options=options,
            enforce_spread=False,
            compiler=compiler,
            solver_context=context,
        )
        rows.append((name, result.monthly_cost, result.feasible))
    return rows
