"""The paper's primary contribution: siting and provisioning green datacenters.

``repro.core`` implements the cost-driven placement framework of Sections II
and III of the paper:

* :class:`FrameworkParameters` — every parameter of Table I with the paper's
  default instantiation,
* :class:`CostModel` / :class:`FinancingModel` — CAPEX/OPEX accounting with
  per-component financing and amortisation,
* availability modelling for networks of Tier I-IV datacenters,
* :class:`SitingProblem` and the Fig. 1 optimisation, available both as a
  full MILP (:mod:`repro.core.formulation`) and as the fixed-siting LP used by
  the heuristic (:mod:`repro.core.provisioning`),
* :class:`HeuristicSolver` — location filtering plus the simulated-annealing
  search over sitings described in Section II-C, and
* :class:`PlacementTool` — the high-level tool of Section III that produces a
  :class:`NetworkPlan` from a catalogue, a capacity target and a desired green
  percentage.
"""

from repro.core.availability import Tier, datacenters_needed, network_availability
from repro.core.costs import CostModel, FinancingModel
from repro.core.parameters import FrameworkParameters
from repro.core.problem import EnergySources, GreenEnforcement, SitingProblem, StorageMode
from repro.core.provisioning import (
    IncrementalSitingEvaluator,
    ProvisioningCompiler,
    ProvisioningResult,
    solve_provisioning,
)
from repro.core.adaptive_grid import AdaptiveGridRefiner, coarsen_problem
from repro.core.formulation import build_full_milp, solve_full_milp
from repro.core.heuristic import HeuristicSolver, SearchSettings
from repro.core.single_site import SingleSiteAnalyzer, SingleSiteCost
from repro.core.solution import DatacenterPlan, NetworkPlan
from repro.core.tool import PlacementTool

__all__ = [
    "AdaptiveGridRefiner",
    "CostModel",
    "DatacenterPlan",
    "EnergySources",
    "FinancingModel",
    "FrameworkParameters",
    "GreenEnforcement",
    "HeuristicSolver",
    "IncrementalSitingEvaluator",
    "NetworkPlan",
    "PlacementTool",
    "ProvisioningCompiler",
    "ProvisioningResult",
    "SearchSettings",
    "SingleSiteAnalyzer",
    "SingleSiteCost",
    "SitingProblem",
    "StorageMode",
    "Tier",
    "build_full_milp",
    "coarsen_problem",
    "datacenters_needed",
    "network_availability",
    "solve_full_milp",
    "solve_provisioning",
]
