"""Framework parameters (Table I of the paper) with their default instantiation.

Values marked "Section III" are the ones the paper gathers from external
sources when instantiating the framework (2011 prices).  All money is in US
dollars, all power in kW, all energy in kWh.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FrameworkParameters:
    """All provider-level parameters of the placement framework.

    Location-dependent parameters (capacity factors, PUE, land and grid
    prices, distances) live in :class:`repro.energy.profiles.LocationProfile`;
    this class holds the global constants of Table I plus the financial
    assumptions of Section III-A.
    """

    # -- service-level requirements (inputs of the optimisation) ---------------
    total_capacity_kw: float = 50_000.0          #: desired minimum DC network compute power
    min_green_fraction: float = 0.5              #: desired minimum share of green energy
    min_availability: float = 0.99999            #: desired minimum DC-network availability

    # -- land areas (m^2 per kW) -------------------------------------------------
    area_dc_m2_per_kw: float = 0.557             #: land per kW of datacenter capacity
    area_solar_m2_per_kw: float = 9.41           #: land per kW of installed solar
    area_wind_m2_per_kw: float = 18.21           #: land per kW of installed wind

    # -- construction prices -----------------------------------------------------
    price_build_dc_small_per_kw: float = 15_000.0  #: $/kW for datacenters <= 10 MW total power
    price_build_dc_large_per_kw: float = 12_000.0  #: $/kW for datacenters > 10 MW total power
    small_dc_threshold_kw: float = 10_000.0        #: boundary between small and large DCs (total power)
    price_build_solar_per_kw: float = 5_250.0      #: installed cost of solar, $/kW
    price_build_wind_per_kw: float = 2_100.0       #: installed cost of wind, $/kW

    # -- IT equipment -------------------------------------------------------------
    price_server: float = 2_000.0                #: $ per server (Dell PowerEdge R610)
    server_power_kw: float = 0.275               #: maximum server power, kW
    price_switch: float = 20_000.0               #: $ per switch (Cisco Nexus 5020)
    switch_power_kw: float = 0.480               #: switch power, kW
    servers_per_switch: int = 32                 #: servers connected to one switch
    price_bandwidth_per_server_month: float = 1.0  #: external bandwidth, $/server/month

    # -- storage -------------------------------------------------------------------
    price_battery_per_kwh: float = 200.0         #: battery cost, $/kWh
    battery_efficiency: float = 0.75             #: charge efficiency
    credit_net_meter: float = 1.0                #: fraction of retail price paid for net-metered energy

    # -- transmission and fiber -----------------------------------------------------
    cost_line_power_per_km: float = 310_000.0    #: power line to nearest plant, $/km
    cost_line_network_per_km: float = 300_000.0  #: optical fiber to nearest backbone, $/km
    brown_plant_cap_fraction: float = 0.50       #: F — max share of the nearest plant a DC may draw

    # -- financing and amortisation ---------------------------------------------------
    annual_interest_rate: float = 0.0325         #: financing interest rate
    datacenter_lifetime_years: float = 12.0      #: DC building, power line, fiber amortisation
    renewable_lifetime_years: float = 24.0       #: solar and wind plant amortisation
    it_lifetime_years: float = 4.0               #: servers, switches replacement period
    battery_lifetime_years: float = 4.0          #: battery replacement period

    # -- per-datacenter availability ----------------------------------------------------
    datacenter_availability: float = 0.99827     #: close to Tier III (Section III-A)

    # -- load migration ------------------------------------------------------------------
    migration_factor: float = 1.0                #: fraction of an epoch during which migrated
    #: load consumes energy at both the donor and the receiver (1.0 = the paper's
    #: pessimistic full-epoch assumption; Fig. 13 sweeps this from 0 to 1).

    def __post_init__(self) -> None:
        if self.total_capacity_kw <= 0:
            raise ValueError("total capacity must be positive")
        if not 0.0 <= self.min_green_fraction <= 1.0:
            raise ValueError("the minimum green fraction must lie in [0, 1]")
        if not 0.0 < self.min_availability < 1.0:
            raise ValueError("the minimum availability must lie in (0, 1)")
        if not 0.0 < self.datacenter_availability < 1.0:
            raise ValueError("the per-datacenter availability must lie in (0, 1)")
        if not 0.0 <= self.migration_factor <= 1.0:
            raise ValueError("the migration factor must lie in [0, 1]")
        if not 0.0 < self.battery_efficiency <= 1.0:
            raise ValueError("battery efficiency must lie in (0, 1]")
        if not 0.0 <= self.credit_net_meter <= 1.0:
            raise ValueError("the net metering credit must lie in [0, 1]")
        for name in (
            "area_dc_m2_per_kw",
            "area_solar_m2_per_kw",
            "area_wind_m2_per_kw",
            "price_build_dc_small_per_kw",
            "price_build_dc_large_per_kw",
            "price_build_solar_per_kw",
            "price_build_wind_per_kw",
            "price_server",
            "server_power_kw",
            "price_switch",
            "switch_power_kw",
            "price_battery_per_kwh",
            "cost_line_power_per_km",
            "cost_line_network_per_km",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"parameter {name} cannot be negative")
        if self.servers_per_switch <= 0:
            raise ValueError("servers_per_switch must be positive")
        if not 0.0 < self.brown_plant_cap_fraction <= 1.0:
            raise ValueError("the brown plant cap fraction must lie in (0, 1]")

    # -- derived quantities ----------------------------------------------------------------
    @property
    def power_per_server_kw(self) -> float:
        """IT power per hosted server, including its share of a switch."""
        return self.server_power_kw + self.switch_power_kw / self.servers_per_switch

    def num_servers(self, capacity_kw: float) -> float:
        """``numServers(d)`` — servers hosted by a DC of the given compute capacity."""
        if capacity_kw < 0:
            raise ValueError("capacity cannot be negative")
        return capacity_kw / self.power_per_server_kw

    def price_build_dc_per_kw(self, total_power_kw: float) -> float:
        """``priceBuildDC(c)`` — $/kW as a function of the DC's maximum total power."""
        if total_power_kw <= self.small_dc_threshold_kw:
            return self.price_build_dc_small_per_kw
        return self.price_build_dc_large_per_kw

    def with_updates(self, **changes) -> "FrameworkParameters":
        """A copy of the parameters with the given fields replaced."""
        return replace(self, **changes)
