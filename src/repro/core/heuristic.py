"""Heuristic solver: location filtering plus simulated-annealing siting search.

Section II-C of the paper makes the MILP tractable in three steps:

1. *Filter* the candidate locations down to the 50-100 most promising ones by
   pricing a few common single-datacenter configurations at every location and
   discarding expensive or redundant candidates.
2. *Fix the siting* (which locations host a datacenter and whether each is
   small or large), which turns the MILP into an LP solved exactly.
3. *Search* over sitings with a simulated-annealing procedure whose neighbour
   moves add, remove, swap, resize or merge datacenters, running several
   search chains with different move mixes that periodically synchronise on
   the best solution found.

The implementation mirrors those steps and, like the paper's tool, runs the
expensive parts concurrently when the hardware allows it:

* the *filter* prices candidate locations in chunks (optionally across a
  thread pool), each chunk reusing one warm-started HiGHS context — the
  pricing LPs all share the same structure, so the previous optimal basis
  cuts the simplex work roughly in half;
* the *search* runs its annealing chains either sequentially (each chain
  starting from the best siting found so far, the role of the paper's
  periodic synchronisation) or as parallel chains that explore independently
  from the shared starting point and synchronise at the end.  Parallel mode
  is deterministic for a fixed seed: each chain owns its RNG, provisioning
  LPs are solved cold (no cross-chain solver state), and the evaluation memo
  is a table of futures so exactly one chain computes each unique siting.

Every provisioning evaluation is memoized by its frozen siting — the
annealing moves revisit states constantly — and all evaluations share one
:class:`~repro.core.provisioning.ProvisioningCompiler` so the per-site model
skeleton is built once per ``(location, size class)`` pair.
"""

from __future__ import annotations

import math
import random
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.problem import GreenEnforcement, SitingProblem
from repro.core.provisioning import (
    IncrementalSitingEvaluator,
    ProvisioningCompiler,
    ProvisioningResult,
    solve_provisioning,
)
from repro.core.screening import price_batch, price_per_site, screen_lower_bounds
from repro.core.single_site import (
    priced_in_chunks,
    pricing_chunk_count,
    scoring_parameters,
    scoring_sources,
    single_site_row_estimate,
    single_site_size_class,
    split_chunks,
)
from repro.core.solution import NetworkPlan
from repro.lpsolver import SolverOptions
from repro.lpsolver.highs_backend import AVAILABLE as _HIGHS_DIRECT_AVAILABLE
from repro.lpsolver.highs_backend import HighsSolveContext
from repro.parallel.executors import (
    EXECUTOR_KINDS,
    ExecutorFactory,
    result_with_serial_fallback,
)
from repro.parallel.work import (
    BatchPricingTask,
    ChainTask,
    new_token,
    run_batch_pricing_chunk,
    run_chain_task,
)

#: Neighbour-move identifiers (the paper's four move kinds; "swap" is the
#: combination of a remove and an add in one step, and "merge" removes one
#: datacenter letting the LP grow the remaining ones).
MOVES = ("add", "remove", "swap", "resize", "merge")


@dataclass
class SearchSettings:
    """Tunables of the heuristic search."""

    keep_locations: int = 12          #: candidates kept after filtering
    max_iterations: int = 60          #: SA iterations per chain
    patience: int = 20                #: stop a chain after this many non-improving iterations
    initial_temperature: float = 0.05  #: SA temperature as a fraction of the current cost
    cooling: float = 0.93             #: geometric temperature decay per iteration
    num_chains: int = 2               #: number of annealing chains
    seed: int = 0                     #: RNG seed
    max_datacenters: int = 6          #: cap on simultaneously sited datacenters
    move_weights: Dict[str, float] = field(
        default_factory=lambda: {"add": 1.0, "remove": 1.0, "swap": 2.0, "resize": 1.0, "merge": 0.5}
    )
    #: Run annealing chains on a thread pool.  ``None`` (default) means
    #: sequential, where chain *k* starts from the best siting of chains
    #: ``0..k-1`` — the two modes explore different trajectories, so the
    #: default never depends on the machine's CPU count and a fixed seed
    #: reproduces the same siting everywhere.  Set True to explore chains
    #: independently in parallel (also deterministic for a fixed seed, for
    #: any worker count — but along the parallel trajectory).
    parallel_chains: Optional[bool] = None
    #: Worker cap for the filter pricing pass and the parallel chains
    #: (``None`` = CPUs available to this process, honouring container CPU
    #: quotas via the scheduling affinity mask).
    max_workers: Optional[int] = None
    #: How the filter chunks and the parallel chains execute: ``"thread"``
    #: (default), ``"process"`` (true multi-core scaling; work crosses the
    #: pickling boundary of :mod:`repro.parallel.work`) or ``"serial"``.
    #: The knob never changes results — for a fixed seed, costs and sitings
    #: are bit-identical across all three for any worker count; only the
    #: ``parallel_chains`` trajectory switch does.
    executor: str = "thread"
    #: Evaluate sequential-search moves on a persistent mutable HiGHS model
    #: (column/row deltas + projected-basis warm starts) instead of
    #: rebuilding the LP per move.  ``None`` (default) auto-enables whenever
    #: the direct backend supports the problem; False forces rebuilds.
    incremental_lp: Optional[bool] = None
    #: Adaptive epoch grid: > 1 runs the filter and annealing search on a
    #: grid whose epochs are this factor coarser, then re-solves the best
    #: siting on selectively refined grids (only the epochs where the plan
    #: is storage- or migration-bound return to full resolution) until the
    #: objective converges.  1 disables the scheme.
    coarse_epoch_factor: int = 1
    #: Relative objective tolerance of the refinement loop.
    refine_tolerance: float = 0.002
    #: Cap on refinement rounds (each round solves one provisioning LP).
    refine_max_rounds: int = 6
    #: Stage-1 filter screen: prune candidates whose vectorized admissible
    #: lower bound (:func:`~repro.core.screening.screen_lower_bounds`) proves
    #: they cannot enter the shortlist, so only a fraction of the catalogue is
    #: ever priced exactly.  The pruning is exact — the shortlist is identical
    #: with the screen on or off.  ``None`` (default) enables it.
    filter_screen: Optional[bool] = None
    #: Stage-2 filter pricing: solve each pricing chunk as one block-diagonal
    #: mega-LP (:func:`~repro.core.screening.price_batch`) instead of per-site
    #: warm-started solves.  ``None`` (default) auto-enables whenever the
    #: direct HiGHS backend can solve the stacked form; False forces the
    #: per-site path.
    filter_batch: Optional[bool] = None
    #: Warm-start strategy of the incremental evaluator's structural moves:
    #: ``"shape"`` restores the last optimal basis of any same-shape siting;
    #: ``"site-block"`` transplants each leaving site's basis statuses onto
    #: the entering site (the ROADMAP's per-site-block basis memory —
    #: measured faster on swap-heavy mixes by
    #: ``benchmarks/bench_basis_memory.py``, but "shape" stays the default
    #: pending equal results on the full search trajectories).
    basis_mode: str = "shape"

    def __post_init__(self) -> None:
        if self.keep_locations < 1:
            raise ValueError("at least one location must survive filtering")
        if self.max_iterations < 1 or self.num_chains < 1:
            raise ValueError("the search needs at least one iteration and one chain")
        if not 0.0 < self.cooling <= 1.0:
            raise ValueError("the cooling factor must lie in (0, 1]")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTOR_KINDS}"
            )
        if self.coarse_epoch_factor < 1:
            raise ValueError("coarse_epoch_factor must be at least 1")
        if self.refine_tolerance < 0:
            raise ValueError("refine_tolerance cannot be negative")
        if self.refine_max_rounds < 1:
            raise ValueError("the refinement loop needs at least one round")
        if self.basis_mode not in ("shape", "site-block"):
            raise ValueError(
                f"unknown basis mode {self.basis_mode!r}; expected 'shape' or 'site-block'"
            )
        unknown = set(self.move_weights) - set(MOVES)
        if unknown:
            raise ValueError(f"unknown neighbour moves: {sorted(unknown)}")


@dataclass
class HeuristicSolution:
    """Best plan found by the heuristic together with search diagnostics."""

    plan: Optional[NetworkPlan]
    monthly_cost: float
    feasible: bool
    evaluations: int
    filtered_locations: List[str]
    history: List[Tuple[int, float]]
    message: str = ""
    cache_hits: int = 0
    stats: Dict[str, float] = field(default_factory=dict)


@dataclass
class _ChainOutcome:
    """What one annealing chain reports back to the merge step."""

    chain: int
    best_siting: Dict[str, str]
    best_result: ProvisioningResult
    improvements: List[Tuple[int, float]]


class HeuristicSolver:
    """Filter + fixed-siting LP + simulated annealing (Section II-C)."""

    def __init__(
        self,
        problem: SitingProblem,
        settings: Optional[SearchSettings] = None,
        solver_options: Optional[SolverOptions] = None,
        compiler: Optional[ProvisioningCompiler] = None,
    ) -> None:
        self.problem = problem
        self.settings = settings or SearchSettings()
        self.solver_options = solver_options or SolverOptions()
        # An externally shared compiler must have been built for an equivalent
        # problem (same profiles, parameters and scenario switches); the
        # ExperimentRunner keys its shared compilers by that problem signature.
        self._compiler = compiler or ProvisioningCompiler(problem)
        # The memo key is the canonical sorted (location, class) tuple, so
        # any move order that reaches the same siting hits the same entry.
        self._cache: Dict[Tuple[Tuple[str, str], ...], Future] = {}
        self._cache_owner: Dict[Tuple[Tuple[str, str], ...], Optional[int]] = {}
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cross_chain_hits = 0
        self._evaluations = 0
        # Basis warm-start contexts for the annealing loop, keyed by siting
        # shape (site count, small-class count).  Only used while the chains
        # run sequentially: contexts are not thread-safe, and cold solves keep
        # the parallel search's results independent of chain scheduling.
        self._sa_contexts: Dict[Tuple[int, int], HighsSolveContext] = {}
        self._sa_warm_starts = False
        # Persistent mutable-model evaluator for the sequential search; moves
        # become column/row deltas with projected-basis warm starts.
        self._sa_incremental: Optional[IncrementalSitingEvaluator] = None
        # Process-pool chain tasks of this search share one worker-side
        # problem/compiler rebuild, keyed by this token.
        self._chain_token = new_token("chains")
        # Diagnostics of the last filter pass (candidate count, exact
        # pricings, screen-survival rate); merged into the solution stats.
        self._filter_stats: Dict[str, float] = {}
        # When set (by process-pool chain workers), every canonical siting
        # key that reaches the memo is appended, in request order; the parent
        # replays the logs to reproduce the shared-memo hit accounting.
        self._request_log: Optional[List[Tuple[Tuple[str, str], ...]]] = None

    # -- worker accounting ---------------------------------------------------------
    def _factory(self) -> ExecutorFactory:
        """The executor factory behind the filter chunks and parallel chains."""
        return ExecutorFactory(
            kind=self.settings.executor, max_workers=self.settings.max_workers
        )

    def _workers(self, upper: int) -> int:
        """Concurrency to use, bounded by settings, available CPUs and the task size."""
        return self._factory().workers(upper)

    @property
    def evaluations(self) -> int:
        """Provisioning LPs actually solved (memo misses)."""
        return self._evaluations

    @property
    def cache_hits(self) -> int:
        """Provisioning evaluations answered from the siting memo."""
        return self._cache_hits

    @property
    def cross_chain_hits(self) -> int:
        """Memo hits on entries that a *different* chain computed."""
        return self._cross_chain_hits

    # -- step 1: filtering ---------------------------------------------------------
    def filter_locations(self) -> List[str]:
        """Rank candidates by single-site cost and keep the cheapest ones.

        The score of a location is the cost of a single datacenter carrying an
        equal share of the service with the problem's green requirement and
        scenario switches — the "common configuration" pricing the paper uses.
        Infeasible locations (for example, ones whose nearest brown plant is
        too small) are discarded.

        The pricing pass runs in two stages.  Stage 1 computes a vectorized
        *admissible* lower bound on every candidate's score
        (:func:`~repro.core.screening.screen_lower_bounds`) — pure numpy over
        the stacked epoch profiles, no LPs.  Stage 2 prices candidates
        exactly in ascending-bound rounds, after each round dropping every
        still-unpriced candidate whose bound exceeds both the current
        ``keep``-th cheapest feasible cost and the cheapest cost of its
        longitude band: such a candidate provably cannot enter the shortlist
        (its exact cost is at least its bound), so the pruning never changes
        the result, only the work.  Exact pricing solves each size-capped
        chunk either as one block-diagonal mega-LP or through one
        warm-started HiGHS context per chunk; both the chunk split and the
        round schedule depend only on the candidate data, so shortlists are
        bit-identical across serial, thread and process execution.

        Like the paper's filter, similar locations are not all kept: the
        survivors are spread across time zones (the paper removes "subsets of
        locations that are similar (e.g., same time zone)"), which is what
        allows follow-the-renewables solutions — especially solar-heavy,
        no-storage ones — to place datacenters around the globe.
        """
        problem = self.problem
        settings = self.settings
        share_kw = problem.params.total_capacity_kw / max(1, problem.min_datacenters)
        # For the *scoring* step, require only a modest green share: a site can
        # be a valuable night-time/receiver location in a follow-the-renewables
        # network even if it cannot host the full green requirement by itself.
        score_green = min(problem.params.min_green_fraction, 0.5)
        # One shared pricing problem (the single-site scoring configuration of
        # SingleSiteAnalyzer.cost_at) so every location's LP flows through the
        # same compiler.  Scoring always uses ANNUAL green enforcement (as
        # cost_at does): the filter ranks sites by their annual economics even
        # when the network problem enforces the share per epoch.
        pricing_params = scoring_parameters(problem.params, share_kw, score_green)
        pricing_problem = problem.with_updates(
            params=pricing_params,
            sources=scoring_sources(score_green, problem.sources),
            green_enforcement=GreenEnforcement.ANNUAL,
        )
        use_screen = (
            settings.filter_screen if settings.filter_screen is not None else True
        )
        use_batch = (
            settings.filter_batch
            if settings.filter_batch is not None
            else (
                _HIGHS_DIRECT_AVAILABLE
                and pricing_problem.num_epochs >= 2
                and self.solver_options.backend in ("auto", "highs-direct")
            )
        )
        profiles = pricing_problem.profiles
        sitings = [
            (profile.name, single_site_size_class(share_kw, profile, pricing_params))
            for profile in profiles
        ]
        longitudes = [profile.location.point.longitude for profile in profiles]
        bands = [int((longitude + 180.0) // 45.0) for longitude in longitudes]
        keep = max(settings.keep_locations, problem.min_datacenters)
        factory = self._factory()
        pricing_compiler = ProvisioningCompiler(pricing_problem)

        if use_screen:
            screen = screen_lower_bounds(pricing_problem, dict(sitings))
            bounds = screen.lower_bounds
            # Ascending-bound order prices the likely shortlist first, which
            # makes the pruning thresholds tight after the very first round;
            # certified-infeasible candidates are never priced at all.
            pending = [
                int(i) for i in screen.order if not screen.certified_infeasible[i]
            ]
        else:
            bounds = None
            pending = list(range(len(profiles)))

        inf = float("inf")
        scored: List[Tuple[float, str, float]] = []
        feasible_costs: List[float] = []
        band_best: Dict[int, float] = {}
        priced = 0
        # Galloping rounds: small first round (the shortlist is usually found
        # there), doubling so the no-pruning worst case stays a handful of
        # rounds.  Without the screen there is nothing to prune between
        # rounds, so everything is priced in one pass.
        round_size = max(4 * keep, 64) if bounds is not None else max(1, len(pending))
        while pending:
            take, pending = pending[:round_size], pending[round_size:]
            rows = self._price_filter_round(
                pricing_problem,
                [sitings[i] for i in take],
                factory,
                use_batch,
                pricing_compiler,
            )
            priced += len(take)
            for index, (name, cost, feasible) in zip(take, rows):
                if not feasible:
                    continue
                scored.append((cost, name, longitudes[index]))
                feasible_costs.append(cost)
                if cost < band_best.get(bands[index], inf):
                    band_best[bands[index]] = cost
            if bounds is not None and pending:
                # A candidate can only make the shortlist as its band's
                # cheapest or as one of the keep globally cheapest; both
                # thresholds only ever decrease, so the drops are permanent.
                global_cut = (
                    sorted(feasible_costs)[keep - 1]
                    if len(feasible_costs) >= keep
                    else inf
                )
                pending = [
                    i
                    for i in pending
                    if bounds[i] <= global_cut
                    or bounds[i] <= band_best.get(bands[i], inf)
                ]
            round_size *= 2

        self._filter_stats = {
            "filter_candidates": float(len(profiles)),
            "filter_priced": float(priced),
            "filter_screened_out": float(len(profiles) - priced),
            "filter_screen_rate": priced / len(profiles) if profiles else 0.0,
            "filter_screen": float(use_screen),
            "filter_batched": float(use_batch),
        }

        scored.sort()

        # First pass: cheapest location of each 45-degree longitude band, so the
        # shortlist spans time zones; second pass: fill with the globally cheapest.
        selected: List[str] = []
        seen_bands: set = set()
        for cost, name, longitude in scored:
            band = int((longitude + 180.0) // 45.0)
            if band not in seen_bands and len(selected) < keep:
                selected.append(name)
                seen_bands.add(band)
        for cost, name, _ in scored:
            if len(selected) >= keep:
                break
            if name not in selected:
                selected.append(name)
        return selected

    def _price_filter_round(
        self,
        pricing_problem: SitingProblem,
        sitings: List[Tuple[str, str]],
        factory: ExecutorFactory,
        use_batch: bool,
        compiler: ProvisioningCompiler,
    ) -> List[Tuple[str, float, bool]]:
        """Exactly price one round of ``(location, size_class)`` candidates.

        The round is split into size-capped chunks
        (:func:`~repro.core.single_site.pricing_chunk_count` — the split
        depends only on the round's size, never on the executor or worker
        count) and each chunk is priced either as one block-diagonal stack or
        through its own warm-started context, on the configured executor.
        Rows come back in ``sitings`` order for every executor kind.
        """
        num_chunks = pricing_chunk_count(
            len(sitings), single_site_row_estimate(pricing_problem)
        )
        if factory.effective_kind == "process" and len(sitings) > 1:
            chunks = split_chunks(sitings, num_chunks)
            tasks = [
                BatchPricingTask(
                    problem=pricing_problem.restricted_to([name for name, _ in chunk]),
                    sitings=tuple(chunk),
                    options=self.solver_options,
                    batch=use_batch,
                )
                for chunk in chunks
            ]
            rows: List[Tuple[str, float, bool]] = []
            with factory.create(len(tasks)) as pool:
                futures = [pool.submit(run_batch_pricing_chunk, task) for task in tasks]
                for future, task in zip(futures, tasks):
                    rows.extend(
                        result_with_serial_fallback(future, run_batch_pricing_chunk, task)
                    )
            return rows

        def run_chunk(chunk: List[Tuple[str, str]]) -> List[Tuple[str, float, bool]]:
            if use_batch:
                return price_batch(
                    pricing_problem, chunk, self.solver_options, compiler=compiler
                )
            return price_per_site(
                pricing_problem, chunk, self.solver_options, compiler=compiler
            )

        return priced_in_chunks(
            sitings, run_chunk, num_chunks=num_chunks, workers=self._workers(num_chunks)
        )

    # -- step 2: fixed-siting evaluation ----------------------------------------------
    def evaluate(
        self, siting: Dict[str, str], chain: Optional[int] = None
    ) -> ProvisioningResult:
        """Solve (and memoize) the provisioning LP for a siting decision.

        The memo is a table of futures keyed by the canonical sorted
        ``(location, class)`` tuple — different move orders reaching the same
        siting hit the same entry.  The first caller of a siting computes it,
        concurrent callers of the same siting block on the same future.
        Results are therefore independent of chain scheduling, which is what
        keeps the parallel search deterministic.  ``chain`` attributes memo
        hits: a hit on an entry another chain computed counts as cross-chain.
        """
        if len(siting) < self.problem.min_datacenters:
            return ProvisioningResult(
                feasible=False,
                monthly_cost=float("inf"),
                plan=None,
                message=(
                    f"{len(siting)} datacenters violate the availability requirement of "
                    f"{self.problem.min_datacenters}"
                ),
            )
        key = tuple(sorted(siting.items()))
        if self._request_log is not None:
            self._request_log.append(key)
        with self._cache_lock:
            future = self._cache.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._cache[key] = future
                self._cache_owner[key] = chain
                self._evaluations += 1
            else:
                self._cache_hits += 1
                owner_chain = self._cache_owner.get(key)
                # Only chain-to-chain sharing counts: the initial siting is
                # evaluated outside any chain (chain=None) and must not
                # inflate the cross-chain stat of single-chain runs.
                if chain is not None and owner_chain is not None and owner_chain != chain:
                    self._cross_chain_hits += 1
        if owner:
            try:
                if self._sa_incremental is not None:
                    # Sequential search: the persistent mutable model follows
                    # the chain's moves as column/row deltas.
                    result = self._sa_incremental.evaluate(siting)
                else:
                    context = None
                    if self._sa_warm_starts and _HIGHS_DIRECT_AVAILABLE:
                        shape = (
                            len(siting),
                            sum(1 for c in siting.values() if c == "small"),
                        )
                        context = self._sa_contexts.get(shape)
                        if context is None:
                            context = self._sa_contexts.setdefault(
                                shape, HighsSolveContext()
                            )
                    result = solve_provisioning(
                        self.problem,
                        siting,
                        options=self.solver_options,
                        compiler=self._compiler,
                        solver_context=context,
                    )
            except BaseException as error:  # propagate to all waiters
                future.set_exception(error)
                raise
            future.set_result(result)
            return result
        return future.result()

    # -- step 3: simulated annealing ----------------------------------------------------
    def solve(self) -> HeuristicSolution:
        """Run the full heuristic and return the best plan found."""
        settings = self.settings
        problem = self.problem
        if settings.coarse_epoch_factor > 1:
            adaptive = self._solve_adaptive()
            if adaptive is not None:
                return adaptive
        filter_started = time.perf_counter()
        candidates = self.filter_locations()
        filter_seconds = time.perf_counter() - filter_started
        if len(candidates) < problem.min_datacenters:
            return HeuristicSolution(
                plan=None,
                monthly_cost=float("inf"),
                feasible=False,
                evaluations=self._evaluations,
                filtered_locations=candidates,
                history=[],
                message=(
                    f"only {len(candidates)} feasible candidate locations, but the "
                    f"availability constraint requires {problem.min_datacenters}"
                ),
                cache_hits=self._cache_hits,
                stats={"filter_seconds": filter_seconds, **self._filter_stats},
            )

        search_started = time.perf_counter()
        factory = self._factory()
        chain_workers = factory.workers(settings.num_chains)
        parallel = bool(settings.parallel_chains) and settings.num_chains > 1
        process_chains = parallel and factory.effective_kind == "process"
        self._sa_warm_starts = not parallel
        use_incremental = (
            settings.incremental_lp if settings.incremental_lp is not None else True
        )
        if (
            parallel  # the evaluator is single-threaded; parallel chains solve cold
            or not use_incremental
            or not IncrementalSitingEvaluator.supported(problem, self.solver_options)
        ):
            self._sa_incremental = None
        elif self._sa_incremental is None:
            self._sa_incremental = IncrementalSitingEvaluator(
                self._compiler,
                options=self.solver_options,
                basis_mode=settings.basis_mode,
            )
        best_siting = self._initial_siting(candidates)
        best_result = self.evaluate(best_siting)
        history: List[Tuple[int, float]] = [(0, best_result.monthly_cost)]

        if process_chains:
            # Chains cross the pickling boundary: each worker rebuilds the
            # problem/compiler once per process and runs the identical chain
            # trajectory (cold solves, chain-seeded RNG), so the merged
            # costs and sitings are bit-identical to the thread path.  Only
            # a picklable outcome payload returns; the winning siting is
            # re-evaluated in the parent (one LP, same cold solve) to attach
            # a plan-bearing result.
            payloads = self._run_chains_process(best_siting, candidates, factory)
            winner: Optional[Dict[str, str]] = None
            best_cost = best_result.monthly_cost
            # Replay every chain's memo-request sequence against shared-memo
            # accounting: a key is an evaluation the first time any chain (or
            # the parent, for the start siting) requests it and a hit after
            # that.  The totals are order-independent, so they equal the
            # thread/serial paths' counts bit for bit — records built from
            # them never depend on the executor kind.
            seen: Dict[Tuple[Tuple[str, str], ...], Optional[int]] = {
                key: None for key in self._cache
            }
            for payload in payloads:
                offset = payload.chain * settings.max_iterations
                history.extend(
                    (offset + iteration, cost) for iteration, cost in payload.improvements
                )
                for key in payload.requests:
                    if key in seen:
                        self._cache_hits += 1
                        owner = seen[key]
                        if owner is not None and owner != payload.chain:
                            self._cross_chain_hits += 1
                    else:
                        self._evaluations += 1
                        seen[key] = payload.chain
                if payload.best_cost < best_cost - 1e-6:
                    best_cost = payload.best_cost
                    winner = dict(payload.best_siting)
            if winner is not None:
                best_siting = winner
                # Solve once more, outside the memo (the replay already
                # accounted for this siting), purely to attach a plan; the
                # reported cost stays the worker's value, which was computed
                # in the chain's own evaluation order — re-solving under the
                # merged (sorted) site order could differ in the last
                # floating-point bits.
                parent_result = solve_provisioning(
                    self.problem,
                    best_siting,
                    options=self.solver_options,
                    compiler=self._compiler,
                )
                best_result = ProvisioningResult(
                    feasible=parent_result.feasible,
                    monthly_cost=best_cost if parent_result.feasible else float("inf"),
                    plan=None,
                    message=parent_result.message,
                    extractor=lambda: parent_result.plan,
                )
        elif parallel:
            # All chains explore independently from the shared initial best and
            # synchronise at the end; the merge prefers lower cost, ties broken
            # by chain index, so the outcome is reproducible for a fixed seed.
            with factory.create(settings.num_chains) as pool:
                outcomes = list(
                    pool.map(
                        # This branch only ever sees thread/serial factories —
                        # the process path ships picklable ChainTask
                        # descriptors through _run_chains_process instead, and
                        # the closure captures live LP state that must never
                        # cross a pickle boundary.
                        lambda chain: self._run_chain(chain, best_siting, best_result, candidates),  # reprolint: ok(PKL001) thread/serial-only branch

                        range(settings.num_chains),
                    )
                )
            for outcome in outcomes:
                offset = outcome.chain * settings.max_iterations
                history.extend(
                    (offset + iteration, cost) for iteration, cost in outcome.improvements
                )
                if outcome.best_result.monthly_cost < best_result.monthly_cost - 1e-6:
                    best_siting, best_result = outcome.best_siting, outcome.best_result
        else:
            # Sequential chains: each starts from the best state found so far,
            # which plays the role of the paper's periodic synchronisation
            # between parallel instances.
            iteration_offset = 0
            for chain in range(settings.num_chains):
                outcome = self._run_chain(chain, best_siting, best_result, candidates)
                history.extend(
                    (iteration_offset + iteration, cost)
                    for iteration, cost in outcome.improvements
                )
                iteration_offset += settings.max_iterations
                if outcome.best_result.monthly_cost < best_result.monthly_cost - 1e-6:
                    best_siting, best_result = outcome.best_siting, outcome.best_result
        search_seconds = time.perf_counter() - search_started

        requests = self._evaluations + self._cache_hits
        return HeuristicSolution(
            plan=best_result.plan,
            monthly_cost=best_result.monthly_cost,
            feasible=best_result.feasible,
            evaluations=self._evaluations,
            filtered_locations=candidates,
            history=sorted(history),
            message=best_result.message,
            cache_hits=self._cache_hits,
            stats={
                "filter_seconds": filter_seconds,
                **self._filter_stats,
                "search_seconds": search_seconds,
                "parallel_chains": float(parallel),
                "process_chains": float(process_chains),
                "chain_workers": float(min(chain_workers, settings.num_chains)),
                "incremental_lp": float(self._sa_incremental is not None),
                "memo_hit_rate": self._cache_hits / requests if requests else 0.0,
                "memo_cross_chain_hits": float(self._cross_chain_hits),
            },
        )

    def _solve_adaptive(self) -> Optional[HeuristicSolution]:
        """Coarse-grid search plus targeted epoch refinement of the winner.

        The filter and the annealing chains run against a problem whose epoch
        grid is ``coarse_epoch_factor`` times coarser (every provisioning LP
        shrinks by that factor); the best siting found is then re-solved on
        adaptively refined grids — only the epochs where the plan is storage-
        or migration-bound return to full resolution — until the objective
        converges within ``refine_tolerance``.  Returns ``None`` when the
        problem's grid cannot be coarsened (the caller falls back to the
        plain fine-grid search).
        """
        from repro.core.adaptive_grid import (
            AdaptiveGridRefiner,
            can_coarsen,
            coarsen_problem,
        )
        from dataclasses import replace

        settings = self.settings
        factor = settings.coarse_epoch_factor
        if not can_coarsen(self.problem.epochs, factor):
            return None
        coarse_problem = coarsen_problem(self.problem, factor)
        sub = HeuristicSolver(
            coarse_problem,
            replace(settings, coarse_epoch_factor=1),
            self.solver_options,
        )
        coarse = sub.solve()
        # Accumulate (a solver can be solved more than once) so the public
        # counters stay consistent with the returned solution's stats.
        self._evaluations += sub._evaluations
        self._cache_hits += sub._cache_hits
        self._cross_chain_hits += sub._cross_chain_hits
        coarse.stats["coarse_epoch_factor"] = float(factor)
        coarse.stats["coarse_epochs"] = float(coarse_problem.num_epochs)
        coarse.stats["fine_epochs"] = float(self.problem.num_epochs)
        if not coarse.feasible or coarse.plan is None:
            return coarse
        refine_started = time.perf_counter()
        siting = {dc.name: dc.size_class for dc in coarse.plan.datacenters}
        refiner = AdaptiveGridRefiner(
            self.problem,
            factor=factor,
            tolerance=settings.refine_tolerance,
            max_rounds=settings.refine_max_rounds,
            options=self.solver_options,
        )
        final, report = refiner.refine(siting)
        self._evaluations += report.rounds  # the refinement LPs count too
        if not final.feasible:  # pragma: no cover - refinement keeps feasibility
            final = solve_provisioning(
                self.problem, siting, options=self.solver_options, compiler=self._compiler
            )
        stats = dict(coarse.stats)
        stats.update(
            {
                "refine_seconds": time.perf_counter() - refine_started,
                "refine_rounds": float(report.rounds),
                "refine_converged": float(report.converged),
                "refine_final_epochs": float(report.num_epochs_trace[-1]),
            }
        )
        return HeuristicSolution(
            plan=final.plan,
            monthly_cost=final.monthly_cost,
            feasible=final.feasible,
            evaluations=coarse.evaluations + report.rounds,
            filtered_locations=coarse.filtered_locations,
            history=coarse.history,
            message=final.message,
            cache_hits=coarse.cache_hits,
            stats=stats,
        )

    def _run_chains_process(
        self,
        start_siting: Dict[str, str],
        candidates: Sequence[str],
        factory: ExecutorFactory,
    ):
        """Fan the annealing chains out over a process pool.

        Each :class:`~repro.parallel.work.ChainTask` ships the problem
        restricted to the filtered candidates, the parent compiler's compiled
        skeletons/templates (plain arrays — never HiGHS handles) and the
        shared start siting *in its original insertion order*: the neighbour
        moves draw from ``list(siting)``, so the dict order is part of the
        chain's deterministic trajectory.  Chain tasks are submitted and
        collected in chain order; a chain that raises propagates when its
        future is collected, after every other chain future has been resolved
        by the pool (no waiter deadlocks, and the parent memo stays clean).
        """
        settings = self.settings
        worker_settings = replace(
            settings, executor="serial", parallel_chains=False, max_workers=1
        )
        search_problem = self.problem.restricted_to(list(candidates))
        compiler_state = self._compiler.export_shared_state()
        tasks = [
            ChainTask(
                token=self._chain_token,
                problem=search_problem,
                settings=worker_settings,
                options=self.solver_options,
                chain=chain,
                start_siting=tuple(start_siting.items()),
                candidates=tuple(candidates),
                compiler_state=compiler_state,
            )
            for chain in range(settings.num_chains)
        ]
        with factory.create(len(tasks)) as pool:
            futures = [pool.submit(run_chain_task, task) for task in tasks]
            return [
                result_with_serial_fallback(future, run_chain_task, task)
                for future, task in zip(futures, tasks)
            ]

    def _run_chain(
        self,
        chain: int,
        start_siting: Dict[str, str],
        start_result: ProvisioningResult,
        candidates: Sequence[str],
    ) -> _ChainOutcome:
        """One annealing chain; deterministic given its index and start state."""
        settings = self.settings
        rng = random.Random(settings.seed + 7919 * chain)
        move_weights = self._chain_move_weights(chain)
        current_siting = dict(start_siting)
        current_result = start_result
        best_siting = dict(start_siting)
        best_result = start_result
        improvements: List[Tuple[int, float]] = []
        temperature = settings.initial_temperature
        stale = 0
        for iteration in range(1, settings.max_iterations + 1):
            neighbour = self._neighbour(current_siting, candidates, rng, move_weights)
            if neighbour is None:
                continue
            result = self.evaluate(neighbour, chain=chain)
            if not result.feasible:
                continue
            if self._accept(current_result, result, temperature, rng):
                current_siting, current_result = neighbour, result
            if result.feasible and result.monthly_cost < best_result.monthly_cost - 1e-6:
                best_siting, best_result = dict(neighbour), result
                improvements.append((iteration, result.monthly_cost))
                stale = 0
            else:
                stale += 1
            temperature *= settings.cooling
            if stale >= settings.patience:
                break
        return _ChainOutcome(
            chain=chain,
            best_siting=best_siting,
            best_result=best_result,
            improvements=improvements,
        )

    # -- helpers --------------------------------------------------------------------------
    def _initial_siting(self, candidates: Sequence[str]) -> Dict[str, str]:
        """Start from the availability-minimum number of cheapest locations."""
        problem = self.problem
        count = min(len(candidates), max(problem.min_datacenters, 2))
        chosen = list(candidates[:count])
        return self._size_classes(chosen)

    def _size_classes(self, names: Sequence[str]) -> Dict[str, str]:
        problem = self.problem
        share_kw = problem.params.total_capacity_kw / max(1, len(names))
        siting = {}
        for name in names:
            max_pue = problem.profile_by_name(name).max_pue
            total_power = share_kw * max_pue
            siting[name] = "small" if total_power <= problem.params.small_dc_threshold_kw else "large"
        return siting

    def _chain_move_weights(self, chain: int) -> Dict[str, float]:
        """Each chain emphasises a different neighbour-generation mix."""
        weights = dict(self.settings.move_weights)
        emphasised = MOVES[chain % len(MOVES)]
        weights[emphasised] = weights.get(emphasised, 1.0) * 2.0
        return weights

    def _neighbour(
        self,
        siting: Dict[str, str],
        candidates: Sequence[str],
        rng: random.Random,
        move_weights: Dict[str, float],
    ) -> Optional[Dict[str, str]]:
        problem = self.problem
        settings = self.settings
        moves, weights = zip(*[(m, w) for m, w in move_weights.items() if w > 0])
        move = rng.choices(moves, weights=weights, k=1)[0]
        outside = [name for name in candidates if name not in siting]
        current = list(siting)

        if move == "add" and outside and len(siting) < settings.max_datacenters:
            names = current + [rng.choice(outside)]
            return self._size_classes(names)
        if move in ("remove", "merge") and len(siting) > problem.min_datacenters:
            victim = rng.choice(current)
            names = [name for name in current if name != victim]
            return self._size_classes(names)
        if move == "swap" and outside:
            victim = rng.choice(current)
            names = [name for name in current if name != victim]
            names.append(rng.choice(outside))
            return self._size_classes(names)
        if move == "resize":
            name = rng.choice(current)
            new_siting = dict(siting)
            new_siting[name] = "large" if siting[name] == "small" else "small"
            return new_siting
        return None

    @staticmethod
    def _accept(
        current: ProvisioningResult,
        candidate: ProvisioningResult,
        temperature: float,
        rng: random.Random,
    ) -> bool:
        if not current.feasible:
            return candidate.feasible
        if candidate.monthly_cost <= current.monthly_cost:
            return True
        if temperature <= 0:
            return False
        relative_increase = (candidate.monthly_cost - current.monthly_cost) / max(
            1.0, current.monthly_cost
        )
        return rng.random() < math.exp(-relative_increase / temperature)
