"""Heuristic solver: location filtering plus simulated-annealing siting search.

Section II-C of the paper makes the MILP tractable in three steps:

1. *Filter* the candidate locations down to the 50-100 most promising ones by
   pricing a few common single-datacenter configurations at every location and
   discarding expensive or redundant candidates.
2. *Fix the siting* (which locations host a datacenter and whether each is
   small or large), which turns the MILP into an LP solved exactly.
3. *Search* over sitings with a simulated-annealing procedure whose neighbour
   moves add, remove, swap, resize or merge datacenters, running several
   search chains with different move mixes that periodically synchronise on
   the best solution found.

The implementation mirrors those steps.  Chains are run sequentially (each
starting from the best state found so far, which plays the role of the
paper's periodic synchronisation between parallel instances).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.problem import EnergySources, SitingProblem, StorageMode
from repro.core.provisioning import ProvisioningResult, solve_provisioning
from repro.core.single_site import SingleSiteAnalyzer
from repro.core.solution import NetworkPlan
from repro.lpsolver import SolverOptions

#: Neighbour-move identifiers (the paper's four move kinds; "swap" is the
#: combination of a remove and an add in one step, and "merge" removes one
#: datacenter letting the LP grow the remaining ones).
MOVES = ("add", "remove", "swap", "resize", "merge")


@dataclass
class SearchSettings:
    """Tunables of the heuristic search."""

    keep_locations: int = 12          #: candidates kept after filtering
    max_iterations: int = 60          #: SA iterations per chain
    patience: int = 20                #: stop a chain after this many non-improving iterations
    initial_temperature: float = 0.05  #: SA temperature as a fraction of the current cost
    cooling: float = 0.93             #: geometric temperature decay per iteration
    num_chains: int = 2               #: number of sequential chains
    seed: int = 0                     #: RNG seed
    max_datacenters: int = 6          #: cap on simultaneously sited datacenters
    move_weights: Dict[str, float] = field(
        default_factory=lambda: {"add": 1.0, "remove": 1.0, "swap": 2.0, "resize": 1.0, "merge": 0.5}
    )

    def __post_init__(self) -> None:
        if self.keep_locations < 1:
            raise ValueError("at least one location must survive filtering")
        if self.max_iterations < 1 or self.num_chains < 1:
            raise ValueError("the search needs at least one iteration and one chain")
        if not 0.0 < self.cooling <= 1.0:
            raise ValueError("the cooling factor must lie in (0, 1]")
        unknown = set(self.move_weights) - set(MOVES)
        if unknown:
            raise ValueError(f"unknown neighbour moves: {sorted(unknown)}")


@dataclass
class HeuristicSolution:
    """Best plan found by the heuristic together with search diagnostics."""

    plan: Optional[NetworkPlan]
    monthly_cost: float
    feasible: bool
    evaluations: int
    filtered_locations: List[str]
    history: List[Tuple[int, float]]
    message: str = ""


class HeuristicSolver:
    """Filter + fixed-siting LP + simulated annealing (Section II-C)."""

    def __init__(
        self,
        problem: SitingProblem,
        settings: Optional[SearchSettings] = None,
        solver_options: Optional[SolverOptions] = None,
    ) -> None:
        self.problem = problem
        self.settings = settings or SearchSettings()
        self.solver_options = solver_options or SolverOptions()
        self._cache: Dict[FrozenSet[Tuple[str, str]], ProvisioningResult] = {}
        self._evaluations = 0

    # -- step 1: filtering ---------------------------------------------------------
    def filter_locations(self) -> List[str]:
        """Rank candidates by single-site cost and keep the cheapest ones.

        The score of a location is the cost of a single datacenter carrying an
        equal share of the service with the problem's green requirement and
        scenario switches — the "common configuration" pricing the paper uses.
        Infeasible locations (for example, ones whose nearest brown plant is
        too small) are discarded.

        Like the paper's filter, similar locations are not all kept: the
        survivors are spread across time zones (the paper removes "subsets of
        locations that are similar (e.g., same time zone)"), which is what
        allows follow-the-renewables solutions — especially solar-heavy,
        no-storage ones — to place datacenters around the globe.
        """
        problem = self.problem
        share_kw = problem.params.total_capacity_kw / max(1, problem.min_datacenters)
        analyzer = SingleSiteAnalyzer(problem.params, self.solver_options)
        # For the *scoring* step, require only a modest green share: a site can
        # be a valuable night-time/receiver location in a follow-the-renewables
        # network even if it cannot host the full green requirement by itself.
        score_green = min(problem.params.min_green_fraction, 0.5)
        scored: List[Tuple[float, str, float]] = []
        for profile in problem.profiles:
            result = analyzer.cost_at(
                profile,
                capacity_kw=share_kw,
                min_green_fraction=score_green,
                sources=problem.sources,
                storage=problem.storage,
            )
            if result.feasible:
                longitude = profile.location.point.longitude
                scored.append((result.monthly_cost, profile.name, longitude))
        scored.sort()
        keep = max(self.settings.keep_locations, problem.min_datacenters)

        # First pass: cheapest location of each 45-degree longitude band, so the
        # shortlist spans time zones; second pass: fill with the globally cheapest.
        selected: List[str] = []
        seen_bands: set = set()
        for cost, name, longitude in scored:
            band = int((longitude + 180.0) // 45.0)
            if band not in seen_bands and len(selected) < keep:
                selected.append(name)
                seen_bands.add(band)
        for cost, name, _ in scored:
            if len(selected) >= keep:
                break
            if name not in selected:
                selected.append(name)
        return selected

    # -- step 2: fixed-siting evaluation ----------------------------------------------
    def evaluate(self, siting: Dict[str, str]) -> ProvisioningResult:
        """Solve (and cache) the provisioning LP for a siting decision."""
        if len(siting) < self.problem.min_datacenters:
            return ProvisioningResult(
                feasible=False,
                monthly_cost=float("inf"),
                plan=None,
                message=(
                    f"{len(siting)} datacenters violate the availability requirement of "
                    f"{self.problem.min_datacenters}"
                ),
            )
        key = frozenset(siting.items())
        if key not in self._cache:
            self._evaluations += 1
            self._cache[key] = solve_provisioning(
                self.problem, siting, options=self.solver_options
            )
        return self._cache[key]

    # -- step 3: simulated annealing ----------------------------------------------------
    def solve(self) -> HeuristicSolution:
        """Run the full heuristic and return the best plan found."""
        settings = self.settings
        problem = self.problem
        candidates = self.filter_locations()
        if len(candidates) < problem.min_datacenters:
            return HeuristicSolution(
                plan=None,
                monthly_cost=float("inf"),
                feasible=False,
                evaluations=self._evaluations,
                filtered_locations=candidates,
                history=[],
                message=(
                    f"only {len(candidates)} feasible candidate locations, but the "
                    f"availability constraint requires {problem.min_datacenters}"
                ),
            )

        best_siting = self._initial_siting(candidates)
        best_result = self.evaluate(best_siting)
        history: List[Tuple[int, float]] = [(0, best_result.monthly_cost)]
        iteration = 0

        for chain in range(settings.num_chains):
            rng = random.Random(settings.seed + 7919 * chain)
            move_weights = self._chain_move_weights(chain)
            current_siting = dict(best_siting)
            current_result = best_result
            temperature = settings.initial_temperature
            stale = 0
            for _ in range(settings.max_iterations):
                iteration += 1
                neighbour = self._neighbour(current_siting, candidates, rng, move_weights)
                if neighbour is None:
                    continue
                result = self.evaluate(neighbour)
                if not result.feasible:
                    continue
                if self._accept(current_result, result, temperature, rng):
                    current_siting, current_result = neighbour, result
                if result.feasible and result.monthly_cost < best_result.monthly_cost - 1e-6:
                    best_siting, best_result = dict(neighbour), result
                    history.append((iteration, result.monthly_cost))
                    stale = 0
                else:
                    stale += 1
                temperature *= settings.cooling
                if stale >= settings.patience:
                    break

        return HeuristicSolution(
            plan=best_result.plan,
            monthly_cost=best_result.monthly_cost,
            feasible=best_result.feasible,
            evaluations=self._evaluations,
            filtered_locations=candidates,
            history=history,
            message=best_result.message,
        )

    # -- helpers --------------------------------------------------------------------------
    def _initial_siting(self, candidates: Sequence[str]) -> Dict[str, str]:
        """Start from the availability-minimum number of cheapest locations."""
        problem = self.problem
        count = min(len(candidates), max(problem.min_datacenters, 2))
        chosen = list(candidates[:count])
        return self._size_classes(chosen)

    def _size_classes(self, names: Sequence[str]) -> Dict[str, str]:
        problem = self.problem
        share_kw = problem.params.total_capacity_kw / max(1, len(names))
        siting = {}
        for name in names:
            max_pue = problem.profile_by_name(name).max_pue
            total_power = share_kw * max_pue
            siting[name] = "small" if total_power <= problem.params.small_dc_threshold_kw else "large"
        return siting

    def _chain_move_weights(self, chain: int) -> Dict[str, float]:
        """Each chain emphasises a different neighbour-generation mix."""
        weights = dict(self.settings.move_weights)
        emphasised = MOVES[chain % len(MOVES)]
        weights[emphasised] = weights.get(emphasised, 1.0) * 2.0
        return weights

    def _neighbour(
        self,
        siting: Dict[str, str],
        candidates: Sequence[str],
        rng: random.Random,
        move_weights: Dict[str, float],
    ) -> Optional[Dict[str, str]]:
        problem = self.problem
        settings = self.settings
        moves, weights = zip(*[(m, w) for m, w in move_weights.items() if w > 0])
        move = rng.choices(moves, weights=weights, k=1)[0]
        outside = [name for name in candidates if name not in siting]
        current = list(siting)

        if move == "add" and outside and len(siting) < settings.max_datacenters:
            names = current + [rng.choice(outside)]
            return self._size_classes(names)
        if move in ("remove", "merge") and len(siting) > problem.min_datacenters:
            victim = rng.choice(current)
            names = [name for name in current if name != victim]
            return self._size_classes(names)
        if move == "swap" and outside:
            victim = rng.choice(current)
            names = [name for name in current if name != victim]
            names.append(rng.choice(outside))
            return self._size_classes(names)
        if move == "resize":
            name = rng.choice(current)
            new_siting = dict(siting)
            new_siting[name] = "large" if siting[name] == "small" else "small"
            return new_siting
        return None

    @staticmethod
    def _accept(
        current: ProvisioningResult,
        candidate: ProvisioningResult,
        temperature: float,
        rng: random.Random,
    ) -> bool:
        if not current.feasible:
            return candidate.feasible
        if candidate.monthly_cost <= current.monthly_cost:
            return True
        if temperature <= 0:
            return False
        relative_increase = (candidate.monthly_cost - current.monthly_cost) / max(
            1.0, current.monthly_cost
        )
        return rng.random() < math.exp(-relative_increase / temperature)
