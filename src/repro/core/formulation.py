"""Full MILP formulation of the siting problem (Fig. 1).

The MILP chooses *where* to place datacenters (binary ``at(d)``) and whether
each is small or large, simultaneously with the provisioning and energy
scheduling decisions.  Solving it is only practical for small candidate sets
(the paper reports days of solver time for 50-100 locations); we use it to
validate the heuristic on small instances, exactly as the paper validated its
heuristic against the MILP at the 0 % and 100 % green extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.costs import CostModel
from repro.core.problem import SitingProblem, StorageMode
from repro.core.provisioning import ProvisioningResult, solve_provisioning
from repro.lpsolver import LinearExpression, Model, SolverOptions, Variable


@dataclass
class _MilpSite:
    name: str
    sited_small: Variable
    sited_large: Variable
    capacity_small: Variable
    capacity_large: Variable
    solar: Variable
    wind: Variable
    battery: Variable
    compute: List[Variable]
    migrate: List[Variable]
    brown: List[Variable]
    green_direct: List[Variable]
    battery_charge: List[Variable]
    battery_discharge: List[Variable]
    battery_level: List[Variable]
    net_charge: List[Variable]
    net_discharge: List[Variable]
    net_level: List[Variable]

    @property
    def capacity(self) -> LinearExpression:
        return self.capacity_small + self.capacity_large

    @property
    def sited(self) -> LinearExpression:
        return self.sited_small + self.sited_large


def build_full_milp(problem: SitingProblem) -> tuple[Model, List[_MilpSite]]:
    """Build the Fig. 1 MILP over all candidate locations of ``problem``."""
    params = problem.params
    epochs = problem.epochs
    num_epochs = epochs.num_epochs
    weights = epochs.epoch_weights_hours()
    # Scalar on uniform grids, per-epoch array on adaptively refined ones.
    epoch_hours = np.broadcast_to(np.asarray(epochs.epoch_hours, dtype=float), (num_epochs,))
    cost_model = CostModel(params)
    use_batteries = problem.storage is StorageMode.BATTERIES
    use_net_metering = problem.storage is StorageMode.NET_METERING
    allow_solar = problem.sources.allows_solar
    allow_wind = problem.sources.allows_wind
    # Big-M for per-site capacity: no single DC ever needs more compute power
    # than the whole service requires.
    big_m = params.total_capacity_kw

    model = Model(name="siting-milp", sense="min")
    sites: List[_MilpSite] = []
    objective_terms: List = []

    for profile in problem.profiles:
        name = profile.name
        sited_small = model.add_binary(f"at_small[{name}]")
        sited_large = model.add_binary(f"at_large[{name}]")
        model.add_constraint(sited_small + sited_large <= 1.0, name=f"one_size[{name}]")

        capacity_small = model.add_variable(f"capacity_small[{name}]")
        capacity_large = model.add_variable(f"capacity_large[{name}]")
        solar = model.add_variable(f"solar[{name}]", upper=float("inf") if allow_solar else 0.0)
        wind = model.add_variable(f"wind[{name}]", upper=float("inf") if allow_wind else 0.0)
        battery = model.add_variable(
            f"battery[{name}]", upper=float("inf") if use_batteries else 0.0
        )

        small_limit_kw = params.small_dc_threshold_kw / profile.max_pue
        model.add_constraint(
            capacity_small <= small_limit_kw * sited_small, name=f"small_limit[{name}]"
        )
        model.add_constraint(
            capacity_large <= big_m * sited_large, name=f"large_limit[{name}]"
        )
        model.add_constraint(
            capacity_large >= small_limit_kw * sited_large, name=f"large_floor[{name}]"
        )
        # Constraint 4: unsited locations host nothing.
        model.add_constraint(
            solar <= 20.0 * big_m * (sited_small + sited_large), name=f"solar_gate[{name}]"
        )
        model.add_constraint(
            wind <= 20.0 * big_m * (sited_small + sited_large), name=f"wind_gate[{name}]"
        )

        def per_epoch(prefix: str, upper: float = float("inf")) -> List[Variable]:
            return [
                model.add_variable(f"{prefix}[{name},{t}]", upper=upper)
                for t in range(num_epochs)
            ]

        compute = per_epoch("compute")
        migrate = per_epoch("migrate")
        brown_cap = params.brown_plant_cap_fraction * profile.near_plant_capacity_kw
        brown = per_epoch("brown", upper=max(0.0, brown_cap))
        green_direct = per_epoch("green_direct")
        storage_upper = float("inf") if use_batteries else 0.0
        battery_charge = per_epoch("battery_charge", upper=storage_upper)
        battery_discharge = per_epoch("battery_discharge", upper=storage_upper)
        battery_level = per_epoch("battery_level", upper=storage_upper)
        net_upper = float("inf") if use_net_metering else 0.0
        net_charge = per_epoch("net_charge", upper=net_upper)
        net_discharge = per_epoch("net_discharge", upper=net_upper)
        net_level = per_epoch("net_level", upper=net_upper)

        site = _MilpSite(
            name=name,
            sited_small=sited_small,
            sited_large=sited_large,
            capacity_small=capacity_small,
            capacity_large=capacity_large,
            solar=solar,
            wind=wind,
            battery=battery,
            compute=compute,
            migrate=migrate,
            brown=brown,
            green_direct=green_direct,
            battery_charge=battery_charge,
            battery_discharge=battery_discharge,
            battery_level=battery_level,
            net_charge=net_charge,
            net_discharge=net_discharge,
            net_level=net_level,
        )
        sites.append(site)

        for t in range(num_epochs):
            previous = (t - 1) % num_epochs
            model.add_constraint(
                migrate[t] >= compute[previous] - compute[t], name=f"migration[{name},{t}]"
            )
            model.add_constraint(
                site.capacity - compute[t] - migrate[t] >= 0.0,
                name=f"capacity_cover[{name},{t}]",
            )
            demand = (compute[t] + params.migration_factor * migrate[t]) * profile.pue[t]
            supply = green_direct[t] + battery_discharge[t] + net_discharge[t] + brown[t]
            model.add_constraint(supply - demand >= 0.0, name=f"power_balance[{name},{t}]")
            delivered = green_direct[t] + battery_discharge[t] + net_discharge[t]
            model.add_constraint(
                demand - delivered >= 0.0, name=f"green_delivery_cap[{name},{t}]"
            )
            production = profile.solar_alpha[t] * solar + profile.wind_beta[t] * wind
            model.add_constraint(
                production - green_direct[t] - battery_charge[t] - net_charge[t] >= 0.0,
                name=f"green_allocation[{name},{t}]",
            )
            if use_batteries:
                model.add_constraint(
                    battery_level[t]
                    == battery_level[previous]
                    + params.battery_efficiency * battery_charge[t] * epoch_hours[t]
                    - battery_discharge[t] * epoch_hours[t],
                    name=f"battery_dynamics[{name},{t}]",
                )
                model.add_constraint(
                    battery_level[t] <= battery, name=f"battery_capacity[{name},{t}]"
                )
            if use_net_metering:
                model.add_constraint(
                    net_level[t]
                    == net_level[previous]
                    + net_charge[t] * epoch_hours[t]
                    - net_discharge[t] * epoch_hours[t],
                    name=f"net_dynamics[{name},{t}]",
                )

        small_coeffs = cost_model.linear_coefficients(profile, "small")
        large_coeffs = cost_model.linear_coefficients(profile, "large")
        objective_terms.append(small_coeffs["fixed"] * sited_small)
        objective_terms.append(large_coeffs["fixed"] * sited_large)
        objective_terms.append(small_coeffs["capacity_kw"] * capacity_small)
        objective_terms.append(large_coeffs["capacity_kw"] * capacity_large)
        objective_terms.append(small_coeffs["solar_kw"] * solar)
        objective_terms.append(small_coeffs["wind_kw"] * wind)
        objective_terms.append(small_coeffs["battery_kwh"] * battery)
        for t in range(num_epochs):
            objective_terms.append(small_coeffs["brown_kwh_year"] * weights[t] * brown[t])
            if use_net_metering:
                objective_terms.append(
                    small_coeffs["net_discharge_kwh_year"] * weights[t] * net_discharge[t]
                )
                objective_terms.append(
                    small_coeffs["net_charge_kwh_year"] * weights[t] * net_charge[t]
                )

    # Network-wide constraints.
    for t in range(num_epochs):
        total_compute = LinearExpression.sum(site.compute[t] for site in sites)
        model.add_constraint(
            total_compute >= params.total_capacity_kw, name=f"total_capacity[{t}]"
        )
    if params.min_green_fraction > 0:
        green_terms = []
        demand_terms = []
        for site in sites:
            profile = problem.profile_by_name(site.name)
            for t in range(num_epochs):
                used_green = (
                    site.green_direct[t] + site.battery_discharge[t] + site.net_discharge[t]
                )
                green_terms.append(weights[t] * used_green)
                demand = (
                    site.compute[t] + params.migration_factor * site.migrate[t]
                ) * profile.pue[t]
                demand_terms.append(weights[t] * demand)
        model.add_constraint(
            LinearExpression.sum(green_terms)
            - params.min_green_fraction * LinearExpression.sum(demand_terms)
            >= 0.0,
            name="min_green_fraction",
        )
    # Constraint 11: availability, expressed as a minimum number of datacenters.
    total_sited = LinearExpression.sum(site.sited for site in sites)
    model.add_constraint(
        total_sited >= float(problem.min_datacenters), name="availability"
    )
    model.set_objective(LinearExpression.sum(objective_terms))
    return model, sites


def solve_full_milp(
    problem: SitingProblem, options: Optional[SolverOptions] = None
) -> ProvisioningResult:
    """Solve the full MILP, then re-solve the fixed-siting LP to extract the plan.

    The two-stage extraction keeps the plan construction logic in one place
    (:mod:`repro.core.provisioning`): the MILP determines the siting and size
    classes, and the provisioning LP — which has the identical objective for a
    fixed siting — rebuilds the detailed plan.
    """
    options = options or SolverOptions(time_limit=120.0)
    model, sites = build_full_milp(problem)
    result = model.solve(options)
    if not result.is_optimal:
        return ProvisioningResult(
            feasible=False,
            monthly_cost=float("inf"),
            plan=None,
            message=f"MILP {result.status.value}: {result.message}",
        )
    siting: Dict[str, str] = {}
    for site in sites:
        if result.value(site.sited_small) > 0.5:
            siting[site.name] = "small"
        elif result.value(site.sited_large) > 0.5:
            siting[site.name] = "large"
    if not siting:
        return ProvisioningResult(
            feasible=False,
            monthly_cost=float("inf"),
            plan=None,
            message="MILP selected no locations",
        )
    return solve_provisioning(problem, siting, enforce_spread=False)
