"""The placement tool (Section III).

:class:`PlacementTool` is the high-level API a cloud provider would use: it
takes the desired computing power, the minimum percentage of green energy and
the minimum availability, and it outputs the number of datacenters, their
locations, their provisioning (including on-site green plants and storage) and
their costs.  Internally it wires together the world catalogue, the profile
builder, the cost model and the heuristic solver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.heuristic import HeuristicSolution, HeuristicSolver, SearchSettings
from repro.core.parameters import FrameworkParameters
from repro.core.problem import EnergySources, GreenEnforcement, SitingProblem, StorageMode
from repro.core.single_site import SingleSiteAnalyzer, SingleSiteCost
from repro.core.solution import NetworkPlan
from repro.energy.profiles import EpochGrid, LocationProfile, ProfileBuilder
from repro.lpsolver import SolverOptions
from repro.weather.locations import WorldCatalog, build_world_catalog


class PlacementTool:
    """Site and provision a network of green datacenters.

    Parameters
    ----------
    catalog:
        World catalogue of candidate locations; a default catalogue is built
        when omitted (``num_locations`` controls its size in that case).
    params:
        Framework parameters (Table I defaults when omitted).
    epoch_grid:
        Time discretisation used for the optimisation; defaults to four
        seasonal representative days with three-hour epochs.
    candidate_names:
        Restrict the candidate set to these catalogue locations.
    num_locations:
        Size of the default catalogue when ``catalog`` is omitted.
    """

    def __init__(
        self,
        catalog: Optional[WorldCatalog] = None,
        params: Optional[FrameworkParameters] = None,
        epoch_grid: Optional[EpochGrid] = None,
        candidate_names: Optional[Sequence[str]] = None,
        num_locations: int = 200,
        solver_options: Optional[SolverOptions] = None,
    ) -> None:
        self.catalog = catalog or build_world_catalog(num_locations=num_locations)
        self.params = params or FrameworkParameters()
        self.epoch_grid = epoch_grid or EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3)
        self.profile_builder = ProfileBuilder(self.catalog)
        self.candidate_names = list(candidate_names) if candidate_names else self.catalog.names
        self.solver_options = solver_options or SolverOptions()
        self._profiles: Optional[List[LocationProfile]] = None

    @classmethod
    def from_spec(
        cls,
        spec,
        catalog: Optional[WorldCatalog] = None,
        base_params: Optional[FrameworkParameters] = None,
        solver_options: Optional[SolverOptions] = None,
    ) -> "PlacementTool":
        """A tool wired for a :class:`~repro.scenarios.spec.ScenarioSpec`.

        The spec describes the catalogue, epoch grid, candidate restriction
        and cost-parameter overrides; pass a prebuilt ``catalog`` (for example
        the :class:`~repro.scenarios.runner.ExperimentRunner`'s shared one) to
        skip rebuilding it.  Scenario switches (capacity, green fraction,
        sources, storage...) are per-call arguments of :meth:`plan_network`,
        which the runner fills from the same spec.
        """
        return cls(
            catalog=catalog or spec.build_catalog(),
            params=spec.build_params(base_params),
            epoch_grid=spec.build_epoch_grid(),
            candidate_names=spec.candidate_names,
            solver_options=solver_options,
        )

    def plan_spec(self, spec, settings=None):
        """Site and provision the network a plan-workflow spec describes."""
        return self.plan_network(
            total_capacity_kw=spec.total_capacity_kw,
            min_green_fraction=spec.min_green_fraction,
            sources=spec.sources_enum,
            storage=spec.storage_enum,
            migration_factor=spec.migration_factor,
            net_meter_credit=spec.net_meter_credit,
            settings=settings if settings is not None else spec.build_search_settings(),
            min_availability=spec.min_availability,
            green_enforcement=spec.green_enforcement_enum,
        )

    # -- candidate profiles -----------------------------------------------------------
    @property
    def profiles(self) -> List[LocationProfile]:
        """Profiles of all candidate locations (built lazily and cached)."""
        if self._profiles is None:
            self._profiles = self.profile_builder.build_all(
                self.epoch_grid, names=self.candidate_names
            )
        return self._profiles

    def profile(self, name: str) -> LocationProfile:
        return self.profile_builder.build(self.catalog.get(name), self.epoch_grid)

    # -- problem construction ------------------------------------------------------------
    def build_problem(
        self,
        total_capacity_kw: float = 50_000.0,
        min_green_fraction: float = 0.5,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
        migration_factor: float = 1.0,
        net_meter_credit: float = 1.0,
        min_availability: Optional[float] = None,
        green_enforcement: GreenEnforcement = GreenEnforcement.ANNUAL,
    ) -> SitingProblem:
        """Assemble a :class:`SitingProblem` for the given scenario."""
        params = self.params.with_updates(
            total_capacity_kw=total_capacity_kw,
            min_green_fraction=min_green_fraction,
            migration_factor=migration_factor,
            credit_net_meter=net_meter_credit,
            min_availability=(
                min_availability if min_availability is not None else self.params.min_availability
            ),
        )
        effective_sources = sources
        if min_green_fraction == 0.0:  # reprolint: ok(FLT001) config sentinel, not a solver result
            effective_sources = EnergySources.NONE
        return SitingProblem(
            profiles=self.profiles,
            params=params,
            sources=effective_sources,
            storage=storage,
            green_enforcement=green_enforcement,
        )

    # -- solving ---------------------------------------------------------------------------
    def plan_network(
        self,
        total_capacity_kw: float = 50_000.0,
        min_green_fraction: float = 0.5,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
        migration_factor: float = 1.0,
        net_meter_credit: float = 1.0,
        settings: Optional[SearchSettings] = None,
        min_availability: Optional[float] = None,
        green_enforcement: GreenEnforcement = GreenEnforcement.ANNUAL,
    ) -> HeuristicSolution:
        """Site and provision a datacenter network for the scenario.

        Returns the full :class:`HeuristicSolution`; its ``plan`` attribute is
        the :class:`NetworkPlan` (None when the scenario is infeasible with the
        given candidates).
        """
        problem = self.build_problem(
            total_capacity_kw=total_capacity_kw,
            min_green_fraction=min_green_fraction,
            sources=sources,
            storage=storage,
            migration_factor=migration_factor,
            net_meter_credit=net_meter_credit,
            min_availability=min_availability,
            green_enforcement=green_enforcement,
        )
        solver = HeuristicSolver(problem, settings=settings, solver_options=self.solver_options)
        return solver.solve()

    def green_percentage_sweep(
        self,
        green_fractions: Sequence[float],
        total_capacity_kw: float = 50_000.0,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
        settings: Optional[SearchSettings] = None,
    ) -> Dict[float, HeuristicSolution]:
        """Cost-vs-green-percentage sweep (Figs. 8-12)."""
        results: Dict[float, HeuristicSolution] = {}
        for fraction in green_fractions:
            results[fraction] = self.plan_network(
                total_capacity_kw=total_capacity_kw,
                min_green_fraction=fraction,
                sources=sources,
                storage=storage,
                settings=settings,
            )
        return results

    # -- single-site analysis ---------------------------------------------------------------
    def single_site_costs(
        self,
        capacity_kw: float = 25_000.0,
        min_green_fraction: float = 0.0,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
        names: Optional[Sequence[str]] = None,
    ) -> List[SingleSiteCost]:
        """Per-location single-datacenter costs (Fig. 6 / Table II)."""
        analyzer = SingleSiteAnalyzer(self.params, self.solver_options)
        profiles = self.profiles if names is None else [self.profile(name) for name in names]
        return analyzer.cost_distribution(
            profiles,
            capacity_kw=capacity_kw,
            min_green_fraction=min_green_fraction,
            sources=sources,
            storage=storage,
        )
