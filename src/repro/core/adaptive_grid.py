"""Adaptive epoch-grid refinement for the siting heuristic.

Fine epoch grids (hourly, multi-day seasons) make every provisioning LP of
the annealing search proportionally larger, yet most of the optimised cost is
determined by a handful of epochs: the ones where the plan actually cycles
its batteries or net-metering bank, or shifts load between sites.  This
module implements the scheme the ROADMAP calls for:

1. the *search* (location filter + annealing chains) runs on a grid whose
   epochs are ``factor`` times coarser — every LP shrinks by that factor;
2. the best siting found is then re-solved on *selectively refined* grids:
   only the coarse epochs where the plan is storage- or migration-bound are
   split back to full resolution (a :class:`~repro.energy.profiles.RefinedEpochGrid`
   with non-uniform epoch durations), and the loop stops once the objective
   changes by less than a relative tolerance between rounds.

Coarse profiles are *group means of the fine profiles* (equal-duration
groups, so this matches aggregating the underlying hourly data exactly and
preserves each location's annual energy), which is what makes the refined
objectives converge to the fine-grid objective as groups split.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Mapping, Optional, Tuple

import numpy as np

from repro.core.problem import SitingProblem
from repro.core.provisioning import ProvisioningResult, solve_provisioning
from repro.energy.profiles import EpochGrid, LocationProfile, RefinedEpochGrid
from repro.lpsolver import SolverOptions


def can_coarsen(grid, factor: int) -> bool:
    """Whether ``factor``-epoch groups tile every day of a uniform grid."""
    if factor <= 1:
        return False
    hours = getattr(grid, "hours_per_epoch", None)
    if not isinstance(hours, int):
        return False  # already refined / non-uniform
    epochs_per_day = getattr(grid, "epochs_per_day", 0)
    return epochs_per_day % factor == 0 and hours * factor <= 24


def _grouped_profile(
    profile: LocationProfile, grid, group_bounds: np.ndarray
) -> LocationProfile:
    """The profile's series averaged over fine-epoch groups, on ``grid``."""

    def group_means(series: np.ndarray) -> np.ndarray:
        # Groups are contiguous runs of equal-duration fine epochs, so the
        # duration-weighted mean is the plain mean: reduceat + divide.
        sums = np.add.reduceat(series, group_bounds[:-1])
        return sums / np.diff(group_bounds)

    return replace(
        profile,
        epochs=grid,
        solar_alpha=group_means(profile.solar_alpha),
        wind_beta=group_means(profile.wind_beta),
        pue=group_means(profile.pue),
    )


def coarsen_problem(problem: SitingProblem, factor: int) -> SitingProblem:
    """The same problem on a grid ``factor`` times coarser.

    The coarse profiles are group means of the problem's (already
    calibrated) fine profiles, so scenario overrides such as pinned capacity
    factors survive the coarsening.
    """
    fine = problem.epochs
    if not can_coarsen(fine, factor):
        raise ValueError(f"cannot coarsen a {fine!r} grid by {factor}")
    coarse_hours = fine.hours_per_epoch * factor
    if 24 % coarse_hours == 0:
        grid = EpochGrid(
            representative_days=fine.representative_days, hours_per_epoch=coarse_hours
        )
    else:
        # Coarse epochs of e.g. 9 hours do not divide 24; carry them as a
        # uniform RefinedEpochGrid instead.
        pattern = tuple([coarse_hours] * (fine.epochs_per_day // factor))
        grid = RefinedEpochGrid(
            representative_days=fine.representative_days,
            day_patterns=tuple([pattern] * len(fine.representative_days)),
        )
    bounds = np.arange(0, fine.num_epochs + 1, factor)
    profiles = [_grouped_profile(p, grid, bounds) for p in problem.profiles]
    return replace(problem, profiles=profiles)


@dataclass
class AdaptiveGridReport:
    """Diagnostics of one refinement run."""

    rounds: int
    converged: bool
    objective_trace: List[float]
    num_epochs_trace: List[int]


class AdaptiveGridRefiner:
    """Refines a fixed siting's provisioning solve toward the fine grid.

    The refiner keeps, per representative day, a partition of the day's fine
    epochs into contiguous groups (initially all of size ``factor``).  Each
    round solves the provisioning LP on the partition's grid, finds the
    epochs where the plan is storage- or migration-bound (battery or
    net-metering charge/discharge, or migration power, above
    ``activity_threshold`` relative to the service capacity) and splits those
    groups to full resolution.  The loop stops when the objective moves by
    less than ``tolerance`` (relative) between rounds, when nothing is left
    to split, or after ``max_rounds`` rounds.
    """

    def __init__(
        self,
        problem: SitingProblem,
        factor: int,
        tolerance: float = 0.002,
        max_rounds: int = 6,
        options: Optional[SolverOptions] = None,
        activity_threshold: float = 1e-6,
    ) -> None:
        fine = problem.epochs
        if not can_coarsen(fine, factor):
            raise ValueError(f"cannot coarsen a {fine!r} grid by {factor}")
        self.problem = problem
        self.factor = factor
        self.tolerance = tolerance
        self.max_rounds = max_rounds
        self.options = options or SolverOptions()
        self.activity_threshold = activity_threshold
        self._fine_epochs_per_day = fine.epochs_per_day
        self._fine_hours = fine.hours_per_epoch
        # Group sizes (in fine epochs) per representative day.
        self._partition: List[List[int]] = [
            [factor] * (fine.epochs_per_day // factor)
            for _ in fine.representative_days
        ]

    # -- partition helpers --------------------------------------------------------
    def _is_fine(self) -> bool:
        return all(size == 1 for day in self._partition for size in day)

    def _partition_problem(self, base: SitingProblem) -> SitingProblem:
        if self._is_fine():
            return base
        fine = base.epochs
        day_patterns = tuple(
            tuple(size * self._fine_hours for size in day) for day in self._partition
        )
        grid = RefinedEpochGrid(
            representative_days=fine.representative_days, day_patterns=day_patterns
        )
        sizes = np.array([size for day in self._partition for size in day])
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        profiles = [_grouped_profile(p, grid, bounds) for p in base.profiles]
        return replace(base, profiles=profiles)

    def _bound_epochs(self, result: ProvisioningResult) -> np.ndarray:
        """Mask of partition epochs where the plan is storage- or migration-bound."""
        plan = result.plan
        activity = None
        for dc in plan.datacenters:
            for series in (
                dc.battery_charge_kw,
                dc.battery_discharge_kw,
                dc.net_charge_kw,
                dc.net_discharge_kw,
                dc.migrate_power_kw,
            ):
                series = np.asarray(series, dtype=float)
                activity = series if activity is None else np.maximum(activity, series)
        threshold = self.activity_threshold * self.problem.params.total_capacity_kw
        return activity > threshold

    def _split(self, bound: np.ndarray) -> int:
        """Split every bound, still-coarse group to fine; return split count."""
        splits = 0
        index = 0
        for day, groups in enumerate(self._partition):
            refined: List[int] = []
            for size in groups:
                if size > 1 and bound[index]:
                    refined.extend([1] * size)
                    splits += 1
                else:
                    refined.append(size)
                index += 1
            self._partition[day] = refined
        return splits

    def _split_all(self) -> None:
        """Split every remaining coarse group to full resolution."""
        for day, groups in enumerate(self._partition):
            self._partition[day] = [1] * sum(groups)

    # -- driver -------------------------------------------------------------------
    def refine(
        self, siting: Mapping[str, str], enforce_spread: bool = True
    ) -> Tuple[ProvisioningResult, AdaptiveGridReport]:
        """Solve ``siting`` on successively refined grids until convergence."""
        objective_trace: List[float] = []
        num_epochs_trace: List[int] = []
        converged = False
        result: Optional[ProvisioningResult] = None
        rounds = 0
        # Only the sited locations' profiles matter to the refinement solves;
        # re-aggregating the full candidate set every round would cost
        # O(num_locations x rounds) at the 1373-candidate scale.
        base = self.problem.restricted_to(list(siting))
        while rounds < self.max_rounds:
            problem = self._partition_problem(base)
            result = solve_provisioning(
                problem, siting, options=self.options, enforce_spread=enforce_spread
            )
            rounds += 1
            num_epochs_trace.append(problem.num_epochs)
            objective_trace.append(result.monthly_cost)
            if not result.feasible:
                break
            if len(objective_trace) > 1:
                previous = objective_trace[-2]
                if abs(result.monthly_cost - previous) <= self.tolerance * max(
                    1.0, abs(previous)
                ):
                    converged = True
                    break
            if self._is_fine():
                converged = True
                break
            if self._split(self._bound_epochs(result)) == 0:
                # Nothing storage- or migration-bound is still coarse — but
                # averaging also moves the per-epoch power-balance and green
                # constraints (no-storage plans have no bound epochs at
                # all), so finish with one full-resolution round instead of
                # declaring the coarse objective converged.
                self._split_all()
        if not converged and result is not None and result.feasible:
            # max_rounds exhausted before the objective settled: the reported
            # cost must still be the fine-grid one, so pay one full-resolution
            # solve rather than returning a partially refined approximation.
            self._split_all()
            result = solve_provisioning(
                self._partition_problem(base),
                siting,
                options=self.options,
                enforce_spread=enforce_spread,
            )
            rounds += 1
            num_epochs_trace.append(base.num_epochs)
            objective_trace.append(result.monthly_cost)
            converged = result.feasible
        report = AdaptiveGridReport(
            rounds=rounds,
            converged=converged,
            objective_trace=objective_trace,
            num_epochs_trace=num_epochs_trace,
        )
        return result, report
