"""CAPEX/OPEX cost accounting with financing and amortisation.

The paper finances every CAPEX component at a fixed annual interest rate and
amortises it over the component's lifetime (12 years for the datacenter
building, power line and fiber, 24 years for solar/wind plants, 4 years for IT
equipment and batteries); land is fully recoverable, so only its financing
interest is a cost.  All cost figures in the paper's evaluation are quoted per
month, and that is the unit every method of :class:`CostModel` returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.parameters import FrameworkParameters
from repro.energy.profiles import LocationProfile

MONTHS_PER_YEAR = 12.0


#: Magnitude below which a negative capital value is treated as LP solver
#: float noise (optimal provisioning variables sit on their zero bound and
#: come back as values like ``-2.9e-08``) and clamped to zero rather than
#: rejected.  Genuinely negative capital still raises.
CAPITAL_NOISE_TOLERANCE = 1e-3


def _clamp_capital(value: float, what: str = "capital") -> float:
    """Clamp tiny negative ``value`` from LP float noise; reject real negatives."""
    if value < 0:
        if value >= -CAPITAL_NOISE_TOLERANCE:
            return 0.0
        raise ValueError(f"{what} cannot be negative")
    return value


@dataclass(frozen=True)
class FinancingModel:
    """Turns an upfront capital cost into a monthly carrying cost.

    The monthly cost of a financed, amortised asset is modelled as interest on
    the outstanding capital plus straight-line depreciation over the
    amortisation period:

    ``monthly = capital * (annual_rate / 12) + capital / (amortisation_years * 12)``

    For fully recoverable assets (land) only the interest term applies.

    Capital values within ``CAPITAL_NOISE_TOLERANCE`` below zero are clamped
    to zero: cost entry points are routinely fed optimal LP variable values,
    which can undershoot their zero lower bound by solver tolerances.
    """

    annual_interest_rate: float = 0.0325

    def __post_init__(self) -> None:
        if self.annual_interest_rate < 0:
            raise ValueError("the interest rate cannot be negative")

    def monthly_cost(self, capital: float, amortisation_years: float) -> float:
        """Monthly carrying cost of a depreciating, financed asset."""
        capital = _clamp_capital(capital)
        if amortisation_years <= 0:
            raise ValueError("the amortisation period must be positive")
        interest = capital * self.annual_interest_rate / MONTHS_PER_YEAR
        depreciation = capital / (amortisation_years * MONTHS_PER_YEAR)
        return interest + depreciation

    def monthly_interest_only(self, capital: float) -> float:
        """Monthly financing cost of a fully recoverable asset (land)."""
        capital = _clamp_capital(capital)
        return capital * self.annual_interest_rate / MONTHS_PER_YEAR


@dataclass
class CostModel:
    """Per-location cost components of Table I, expressed in $/month.

    Every method that involves a provisioning decision takes the decision as
    an explicit argument (compute capacity, installed solar/wind, battery
    capacity, epoch energy series), which makes the model usable both for
    pricing a finished plan and as the coefficient source for the LP/MILP
    objective (all components are linear in the decision variables).
    """

    params: FrameworkParameters
    financing: FinancingModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.financing is None:
            self.financing = FinancingModel(self.params.annual_interest_rate)

    # -- CAPEX, size independent ------------------------------------------------
    def line_power_monthly(self, profile: LocationProfile) -> float:
        """Monthly cost of laying the power line to the nearest brown plant."""
        capital = self.params.cost_line_power_per_km * profile.distance_power_km
        return self.financing.monthly_cost(capital, self.params.datacenter_lifetime_years)

    def line_network_monthly(self, profile: LocationProfile) -> float:
        """Monthly cost of laying fiber to the nearest backbone point."""
        capital = self.params.cost_line_network_per_km * profile.distance_network_km
        return self.financing.monthly_cost(capital, self.params.datacenter_lifetime_years)

    def capex_independent_monthly(self, profile: LocationProfile) -> float:
        """``CAP_ind(d)``: size-independent CAPEX, $/month."""
        return self.line_power_monthly(profile) + self.line_network_monthly(profile)

    # -- CAPEX, size dependent -----------------------------------------------------
    def land_monthly(
        self,
        profile: LocationProfile,
        capacity_kw: float,
        solar_kw: float,
        wind_kw: float,
    ) -> float:
        """``landCost(d)`` financing: land is recoverable, only interest is paid."""
        area_m2 = (
            capacity_kw * self.params.area_dc_m2_per_kw
            + solar_kw * self.params.area_solar_m2_per_kw
            + wind_kw * self.params.area_wind_m2_per_kw
        )
        capital = profile.land_price_per_m2 * area_m2
        return self.financing.monthly_interest_only(capital)

    def building_dc_monthly(
        self, profile: LocationProfile, capacity_kw: float, size_class: str = "auto"
    ) -> float:
        """Monthly cost of constructing the datacenter building itself."""
        total_power_kw = capacity_kw * profile.max_pue
        price_per_kw = self._dc_price_per_kw(total_power_kw, size_class)
        capital = total_power_kw * price_per_kw
        return self.financing.monthly_cost(capital, self.params.datacenter_lifetime_years)

    def building_solar_monthly(self, solar_kw: float) -> float:
        """Monthly cost of constructing the solar plant."""
        capital = solar_kw * self.params.price_build_solar_per_kw
        return self.financing.monthly_cost(capital, self.params.renewable_lifetime_years)

    def building_wind_monthly(self, wind_kw: float) -> float:
        """Monthly cost of constructing the wind plant."""
        capital = wind_kw * self.params.price_build_wind_per_kw
        return self.financing.monthly_cost(capital, self.params.renewable_lifetime_years)

    def it_equipment_monthly(self, capacity_kw: float) -> float:
        """Monthly cost of servers and switches (``serverCost`` + ``switchCost``)."""
        capacity_kw = _clamp_capital(capacity_kw, what="capacity")
        servers = self.params.num_servers(capacity_kw)
        capital = servers * self.params.price_server
        capital += (servers / self.params.servers_per_switch) * self.params.price_switch
        return self.financing.monthly_cost(capital, self.params.it_lifetime_years)

    def battery_monthly(self, battery_kwh: float) -> float:
        """Monthly cost of the battery bank (``battCost``)."""
        capital = battery_kwh * self.params.price_battery_per_kwh
        return self.financing.monthly_cost(capital, self.params.battery_lifetime_years)

    def capex_dependent_monthly(
        self,
        profile: LocationProfile,
        capacity_kw: float,
        solar_kw: float,
        wind_kw: float,
        battery_kwh: float,
        size_class: str = "auto",
    ) -> float:
        """``CAP_dep(d)``: size-dependent CAPEX, $/month."""
        return (
            self.land_monthly(profile, capacity_kw, solar_kw, wind_kw)
            + self.building_dc_monthly(profile, capacity_kw, size_class)
            + self.building_solar_monthly(solar_kw)
            + self.building_wind_monthly(wind_kw)
            + self.it_equipment_monthly(capacity_kw)
            + self.battery_monthly(battery_kwh)
        )

    # -- OPEX ---------------------------------------------------------------------------
    def network_bandwidth_monthly(self, capacity_kw: float) -> float:
        """``networkCost(d)``: external bandwidth, $/month."""
        capacity_kw = _clamp_capital(capacity_kw, what="capacity")
        return self.params.num_servers(capacity_kw) * self.params.price_bandwidth_per_server_month

    def brown_energy_monthly(
        self,
        profile: LocationProfile,
        brown_power_kw: np.ndarray,
        net_discharge_kw: np.ndarray | None = None,
        net_charge_kw: np.ndarray | None = None,
        credit_net_meter: float | None = None,
    ) -> float:
        """``brownCost(d)``: grid energy bill including net-metering settlement.

        ``brown_power_kw``, ``net_discharge_kw`` and ``net_charge_kw`` are epoch
        series aligned with ``profile.epochs``; the epoch weights convert them
        into annual energy, which is then divided by 12.
        """
        weights = profile.epochs.epoch_weights_hours()
        credit = self.params.credit_net_meter if credit_net_meter is None else credit_net_meter
        brown = np.asarray(brown_power_kw, dtype=float)
        if brown.shape != weights.shape:
            raise ValueError("the brown power series must have one value per epoch")
        net_dis = np.zeros_like(brown) if net_discharge_kw is None else np.asarray(net_discharge_kw, dtype=float)
        net_chg = np.zeros_like(brown) if net_charge_kw is None else np.asarray(net_charge_kw, dtype=float)
        annual_kwh = float(np.sum(weights * (brown + net_dis - credit * net_chg)))
        return profile.energy_price_per_kwh * annual_kwh / MONTHS_PER_YEAR

    def opex_monthly(
        self,
        profile: LocationProfile,
        capacity_kw: float,
        brown_power_kw: np.ndarray,
        net_discharge_kw: np.ndarray | None = None,
        net_charge_kw: np.ndarray | None = None,
        credit_net_meter: float | None = None,
    ) -> float:
        """``OP(d)``: operational cost, $/month."""
        return self.network_bandwidth_monthly(capacity_kw) + self.brown_energy_monthly(
            profile, brown_power_kw, net_discharge_kw, net_charge_kw, credit_net_meter
        )

    # -- linear coefficients for the optimiser --------------------------------------------
    def linear_coefficients(self, profile: LocationProfile, size_class: str) -> Dict[str, float]:
        """Monthly cost per unit of each decision variable at this location.

        Keys: ``capacity_kw``, ``solar_kw``, ``wind_kw``, ``battery_kwh``,
        ``brown_kwh_year``, ``net_discharge_kwh_year``, ``net_charge_kwh_year``
        and the constant ``fixed`` (CAP_ind).  The optimiser's objective is the
        sum over sited locations of these coefficients times the corresponding
        variables, which by construction equals the plan cost computed by the
        explicit methods above.
        """
        params = self.params
        per_kw_dc_land = self.financing.monthly_interest_only(
            profile.land_price_per_m2 * params.area_dc_m2_per_kw
        )
        per_kw_solar_land = self.financing.monthly_interest_only(
            profile.land_price_per_m2 * params.area_solar_m2_per_kw
        )
        per_kw_wind_land = self.financing.monthly_interest_only(
            profile.land_price_per_m2 * params.area_wind_m2_per_kw
        )
        dc_price_per_kw = (
            params.price_build_dc_small_per_kw
            if size_class == "small"
            else params.price_build_dc_large_per_kw
        )
        per_kw_building = self.financing.monthly_cost(
            profile.max_pue * dc_price_per_kw, params.datacenter_lifetime_years
        )
        per_kw_it = self.financing.monthly_cost(
            (params.price_server + params.price_switch / params.servers_per_switch)
            / params.power_per_server_kw,
            params.it_lifetime_years,
        )
        per_kw_bandwidth = params.price_bandwidth_per_server_month / params.power_per_server_kw
        return {
            "fixed": self.capex_independent_monthly(profile),
            "capacity_kw": per_kw_dc_land + per_kw_building + per_kw_it + per_kw_bandwidth,
            "solar_kw": per_kw_solar_land
            + self.financing.monthly_cost(
                params.price_build_solar_per_kw, params.renewable_lifetime_years
            ),
            "wind_kw": per_kw_wind_land
            + self.financing.monthly_cost(
                params.price_build_wind_per_kw, params.renewable_lifetime_years
            ),
            "battery_kwh": self.financing.monthly_cost(
                params.price_battery_per_kwh, params.battery_lifetime_years
            ),
            "brown_kwh_year": profile.energy_price_per_kwh / MONTHS_PER_YEAR,
            "net_discharge_kwh_year": profile.energy_price_per_kwh / MONTHS_PER_YEAR,
            "net_charge_kwh_year": -params.credit_net_meter
            * profile.energy_price_per_kwh
            / MONTHS_PER_YEAR,
        }

    # -- helpers -------------------------------------------------------------------------------
    def _dc_price_per_kw(self, total_power_kw: float, size_class: str) -> float:
        if size_class == "small":
            return self.params.price_build_dc_small_per_kw
        if size_class == "large":
            return self.params.price_build_dc_large_per_kw
        if size_class == "auto":
            return self.params.price_build_dc_per_kw(total_power_kw)
        raise ValueError(f"unknown datacenter size class {size_class!r}")
