"""Fixed-siting provisioning LP (step 2 of the paper's heuristic).

Once the heuristic has decided *where* datacenters are placed and whether each
is "small" or "large" (which fixes the per-kW construction price), the
remaining problem — how much compute capacity, solar, wind and storage to
provision at each site, and how to distribute load and energy over the epochs
— is a pure LP.  This module builds and solves that LP and converts the
optimum into :class:`~repro.core.solution.NetworkPlan` objects.

The formulation follows Fig. 1 with one refinement: green energy is allocated
explicitly into "used directly", "stored to batteries", "stored to the grid"
and (implicitly) "curtailed", so that the green-fraction constraint counts
only green energy that actually serves the load (directly or via storage).
This closes a loophole in the figure's aggregate form in which simultaneous
charge/discharge could inflate the green numerator, and matches the intent
described in Sections II-B and IV.

Two model builders emit the identical LP:

* the **vectorized** builder (default) emits each per-epoch constraint family
  — power balance, battery dynamics, net-metering bank, migration coupling —
  as one :meth:`~repro.lpsolver.model.Model.add_linear_block` call of COO
  triplets, with the per-site triplet skeleton cached by a
  :class:`ProvisioningCompiler` so the annealing search pays assembly costs
  only once per ``(location, size class)`` pair it visits;
* the **scalar** builder keeps the original readable
  ``for t in range(num_epochs)`` object-API construction, selected with
  ``backend="scalar"`` and used by the differential tests to pin the fast
  path to the reference formulation.

Plan extraction is lazy: :class:`ProvisioningResult` materialises the
:class:`NetworkPlan` on first access of ``.plan``, so the thousands of
intermediate LPs the annealing search discards never pay extraction costs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.costs import CostModel
from repro.core.problem import GreenEnforcement, SitingProblem, StorageMode
from repro.core.solution import DatacenterPlan, NetworkPlan
from repro.energy.profiles import LocationProfile
from repro.lpsolver import (
    ConstraintSense,
    LinearExpression,
    Model,
    RowFormLP,
    SolverOptions,
    Variable,
)
from repro.lpsolver import highs_backend
from repro.lpsolver import validate as lp_validate

#: Per-epoch variable families of one site, in registration order (after the
#: four scalar sizing variables capacity/solar/wind/battery).
_EPOCH_FAMILIES = (
    "compute",
    "migrate",
    "brown",
    "green_direct",
    "battery_charge",
    "battery_discharge",
    "battery_level",
    "net_charge",
    "net_discharge",
    "net_level",
)

#: Default model-construction backend; ``"scalar"`` keeps the readable
#: object-API builder for differential testing.
DEFAULT_BACKEND = "vectorized"


@dataclass
class _SiteLayout:
    """Index layout of one site's variables inside the model's vector.

    Both builders register variables in the same order, so the layout is
    fully determined by the site's base offset and the number of epochs:
    ``[capacity, solar, wind, battery]`` followed by the ten per-epoch
    families of ``_EPOCH_FAMILIES``.
    """

    profile: LocationProfile
    size_class: str
    base: int
    num_epochs: int

    def __post_init__(self) -> None:
        t = np.arange(self.num_epochs, dtype=np.int64)
        self.capacity = self.base
        self.solar = self.base + 1
        self.wind = self.base + 2
        self.battery = self.base + 3
        for k, family in enumerate(_EPOCH_FAMILIES):
            setattr(self, family, self.base + 4 + k * self.num_epochs + t)

    @property
    def num_variables(self) -> int:
        return 4 + len(_EPOCH_FAMILIES) * self.num_epochs


@dataclass
class _SiteVariables:
    """Handles to the LP variables of one sited location (scalar builder)."""

    profile: LocationProfile
    size_class: str
    capacity: Variable
    solar: Variable
    wind: Variable
    battery: Variable
    compute: List[Variable]
    migrate: List[Variable]
    brown: List[Variable]
    green_direct: List[Variable]
    battery_charge: List[Variable]
    battery_discharge: List[Variable]
    battery_level: List[Variable]
    net_charge: List[Variable]
    net_discharge: List[Variable]
    net_level: List[Variable]


@dataclass
class _SiteSkeleton:
    """Cached constraint/objective skeleton of one ``(location, size class)``.

    Everything is expressed in site-local variable indices ``0..n-1``; the
    compiler offsets rows and columns when stitching sites into a model.
    ``blocks`` holds ``(rows, cols, vals, sense, rhs, name)`` tuples; the
    ``tri_*``/``rhs``/mask fields carry the same triplets pre-concatenated
    (with block-local row offsets applied) for the templated row-form path.
    ``green_*`` holds the site's contribution to the cross-site minimum-green
    coupling constraint.  Variable names are generated lazily — only the
    Model route needs them.
    """

    location_name: str
    num_epochs: int
    lower: np.ndarray
    upper: np.ndarray
    blocks: List[Tuple[np.ndarray, np.ndarray, np.ndarray, ConstraintSense, np.ndarray, str]]
    objective_cols: np.ndarray
    objective_vals: np.ndarray
    fixed_cost: float
    tri_rows: np.ndarray
    tri_cols: np.ndarray
    tri_vals: np.ndarray
    rhs: np.ndarray
    le_mask: np.ndarray
    ge_mask: np.ndarray
    green_rows: np.ndarray
    green_cols: np.ndarray
    green_vals: np.ndarray
    _names: Optional[List[str]] = None

    @property
    def num_rows(self) -> int:
        return int(self.rhs.shape[0])

    @property
    def names(self) -> List[str]:
        """Variable names in layout order (generated on first Model build)."""
        if self._names is None:
            name = self.location_name
            names = [f"capacity[{name}]", f"solar[{name}]", f"wind[{name}]", f"battery[{name}]"]
            for family in _EPOCH_FAMILIES:
                names.extend(f"{family}[{name},{epoch}]" for epoch in range(self.num_epochs))
            self._names = names
        return self._names


@dataclass
class _SkeletonTemplate:
    """Location-independent structure of a site skeleton (one per class).

    All candidate locations of a problem share every index array, sense mask
    and right-hand side of their skeletons — only a handful of value slots
    (PUE and production series, the brown-plant cap, objective prices) differ.
    The template keeps a donor skeleton plus the slot positions inside its
    ``tri_vals``/``green_vals`` concatenations, so deriving the skeleton of a
    new location is a couple of array copies and slice writes instead of a
    full rebuild — the dominant cost of pricing large candidate sets.
    """

    donor: "_SiteSkeleton"
    block_offsets: List[int]
    block_labels: List[str]
    #: label -> (start offset into tri_vals); slot layout is fixed per block.
    slots: Dict[str, int]
    brown_cols: np.ndarray


@dataclass
class _IncrementalSiteData:
    """Per-site delta arrays for the incremental (mutable-model) solve path.

    The incremental layout keeps every site block *uniform across size
    classes*: the ``small_dc`` row is always present (it is the first block
    row) and is relaxed to a free row for "large" sites, so a size-class flip
    is a pure value edit (objective coefficients + one row's bounds) and
    add/remove moves always splice ranges of identical shape.  ``row_*``
    carry the block rows row-wise over site-local columns (for ``addRows``);
    ``coupling_*`` carry this site's entries in the cross-site coupling rows
    column-wise (for ``addCols``; the coupling rows sit at fixed global
    indices ``0..T+G`` so these never need remapping).
    """

    name: str
    num_vars: int
    lower: np.ndarray
    upper: np.ndarray
    row_lower: np.ndarray
    row_upper: np.ndarray
    row_starts: np.ndarray
    row_cols: np.ndarray
    row_vals: np.ndarray
    small_dc_upper: float
    coupling_starts: np.ndarray
    coupling_rows: np.ndarray
    coupling_vals: np.ndarray
    cost_cols: np.ndarray
    cost_vals: Dict[str, np.ndarray]
    fixed: Dict[str, float]

    @property
    def num_rows(self) -> int:
        return int(self.row_lower.shape[0])


@dataclass
class BatchCompiledLP:
    """A block-diagonal stack of independent single-site pricing LPs.

    Produced by :meth:`ProvisioningCompiler.compile_batch`: one solve of
    ``row_form`` prices every site at once, and :meth:`site_costs` maps the
    stacked solution vector back to per-site monthly costs (each site's slice
    of the objective plus its fixed cost).  The blocks share no variables or
    rows, so the per-site costs equal the optima of the individual pricing
    LPs.
    """

    row_form: RowFormLP
    names: List[str]
    col_offsets: np.ndarray
    row_offsets: np.ndarray
    constants: np.ndarray

    def site_costs(self, x: np.ndarray) -> np.ndarray:
        """Per-site objective values of a stacked solution vector."""
        contributions = self.row_form.cost * np.asarray(x, dtype=float)
        return np.add.reduceat(contributions, self.col_offsets[:-1]) + self.constants


@dataclass
class _ModelTemplate:
    """Cached CSC sparsity pattern of one siting *shape*.

    Sitings whose ordered size-class tuples match produce LPs with identical
    sparsity patterns (per-site skeletons keep explicit zeros precisely so
    this holds across locations); only the coefficient values differ.  The
    template maps the deterministic triplet concatenation order onto CSC data
    order (``perm``) so assembling a new model of the same shape is a single
    fancy-index, and caches the per-row sense masks used to expand right-hand
    sides into HiGHS row bounds.
    """

    shape: Tuple[int, int]
    perm: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    le_mask: np.ndarray
    ge_mask: np.ndarray


class ProvisioningResult:
    """Outcome of a fixed-siting provisioning solve.

    ``monthly_cost`` is the LP objective.  The :class:`NetworkPlan` behind
    ``plan`` is extracted lazily on first access — the annealing search
    evaluates thousands of sitings but only ever reads the plan of the best
    one, so eager extraction would dominate the hot path.
    """

    __slots__ = ("feasible", "monthly_cost", "message", "_plan", "_extractor")

    def __init__(
        self,
        feasible: bool,
        monthly_cost: float,
        plan: Optional[NetworkPlan] = None,
        message: str = "",
        extractor: Optional[Callable[[], NetworkPlan]] = None,
    ) -> None:
        self.feasible = feasible
        self.monthly_cost = monthly_cost
        self.message = message
        self._plan = plan
        self._extractor = extractor

    @property
    def plan(self) -> Optional[NetworkPlan]:
        # Snapshot the extractor: results are shared across threads through
        # the siting memo, and two concurrent first reads must both see a
        # callable (duplicate extraction is harmless; both produce the same
        # plan from the same solve vector).
        extractor = self._extractor
        if self._plan is None and extractor is not None:
            self._plan = extractor()
            self._extractor = None
        return self._plan

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.feasible

    def __repr__(self) -> str:
        return (
            f"ProvisioningResult(feasible={self.feasible}, "
            f"monthly_cost={self.monthly_cost:.6g}, message={self.message!r})"
        )


class ProvisioningCompiler:
    """Compiles siting decisions of one problem into provisioning models.

    The compiler caches the per-site constraint skeleton (COO triplets,
    bounds, objective coefficients) keyed by ``(location, size class)``.
    The annealing moves — add, remove, swap, resize, merge — revisit the same
    pairs constantly, so after warm-up a model assembly is little more than
    concatenating cached arrays and adding the cross-site coupling rows.
    Thread-safe; the parallel annealing chains share one compiler.
    """

    def __init__(self, problem: SitingProblem) -> None:
        self.problem = problem
        self.cost_model = CostModel(problem.params)
        self._profiles = problem.profile_map()
        self._skeletons: Dict[Tuple[str, str], _SiteSkeleton] = {}
        # Per-shape CSC pattern cache; False marks shapes that cannot be
        # templated (degenerate grids with duplicate COO coordinates).
        self._templates: Dict[Tuple, object] = {}
        # Per-site delta arrays for the incremental solve path.
        self._incremental: Dict[str, _IncrementalSiteData] = {}
        # Location-independent skeleton structure per size class; once built,
        # new locations' skeletons are derived by slot rewrites.
        self._skeleton_templates: Dict[str, _SkeletonTemplate] = {}
        self._lock = threading.Lock()
        # Warm-vs-cold skeleton accounting: hits reuse a compiled skeleton,
        # derives rewrite a class template's value slots, builds pay full
        # assembly.  Reported through ExperimentRunner.cache_stats() and the
        # serve daemon's /metrics.
        self.skeleton_hits = 0
        self.skeleton_derives = 0
        self.skeleton_builds = 0

    # -- per-site skeleton -------------------------------------------------------
    def site_skeleton(self, name: str, size_class: str) -> _SiteSkeleton:
        key = (name, size_class)
        with self._lock:
            skeleton = self._skeletons.get(key)
            template = self._skeleton_templates.get(size_class)
            if skeleton is not None:
                self.skeleton_hits += 1
                return skeleton
        if template is not None:
            # Fast path: every location shares the structure; only the
            # profile-dependent value slots are rewritten.
            skeleton = self._derive_site_skeleton(template, name, size_class)
            with self._lock:
                self.skeleton_derives += 1
        else:
            skeleton, template = self._build_site_skeleton(name, size_class)
            with self._lock:
                self.skeleton_builds += 1
                self._skeleton_templates.setdefault(size_class, template)
        with self._lock:
            skeleton = self._skeletons.setdefault(key, skeleton)
        return skeleton

    def skeleton_stats(self) -> Dict[str, int]:
        """Cumulative warm-vs-cold skeleton counters for this compiler."""
        with self._lock:
            return {
                "skeleton_hits": self.skeleton_hits,
                "skeleton_derives": self.skeleton_derives,
                "skeleton_builds": self.skeleton_builds,
            }

    def _derive_site_skeleton(
        self, template: _SkeletonTemplate, name: str, size_class: str
    ) -> _SiteSkeleton:
        """Skeleton of a new location derived from the class's template.

        Mirrors :meth:`_build_site_skeleton` exactly (the differential tests
        pin this): only the PUE/production value slots, the brown-plant cap
        bound, the objective prices and the green-coupling demand slots
        depend on the profile.
        """
        problem = self.problem
        params = problem.params
        profile = self._profiles.get(name)
        if profile is None:
            raise KeyError(f"siting refers to unknown location {name!r}")
        donor = template.donor
        T = donor.num_epochs
        weights = problem.epochs.epoch_weights_hours()
        pue = profile.pue
        mf_pue = params.migration_factor * pue

        tri_vals = donor.tri_vals.copy()
        slots = template.slots
        if "small_dc" in slots:
            tri_vals[slots["small_dc"]] = profile.max_pue
        o = slots["power_balance"]
        tri_vals[o + 4 * T : o + 5 * T] = -pue
        tri_vals[o + 5 * T : o + 6 * T] = -mf_pue
        o = slots["green_delivery_cap"]
        tri_vals[o : o + T] = pue
        tri_vals[o + T : o + 2 * T] = mf_pue
        o = slots["green_allocation"]
        tri_vals[o : o + T] = profile.solar_alpha
        tri_vals[o + T : o + 2 * T] = profile.wind_beta

        upper = donor.upper.copy()
        brown_cap = params.brown_plant_cap_fraction * profile.near_plant_capacity_kw
        upper[template.brown_cols] = max(0.0, brown_cap)

        coefficients = self.cost_model.linear_coefficients(profile, size_class)
        obj_vals = [
            np.array(
                [
                    coefficients["capacity_kw"],
                    coefficients["solar_kw"],
                    coefficients["wind_kw"],
                    coefficients["battery_kwh"],
                ]
            ),
            coefficients["brown_kwh_year"] * weights,
        ]
        if problem.storage is StorageMode.NET_METERING:
            obj_vals.append(coefficients["net_discharge_kwh_year"] * weights)
            obj_vals.append(coefficients["net_charge_kwh_year"] * weights)

        if params.min_green_fraction > 0:
            frac = params.min_green_fraction
            green_vals = donor.green_vals.copy()
            if problem.green_enforcement is GreenEnforcement.PER_EPOCH:
                green_vals[3 * T : 4 * T] = -(pue * frac)
                green_vals[4 * T : 5 * T] = -(mf_pue * frac)
            else:
                green_vals[3 * T : 4 * T] = -((pue * weights) * frac)
                green_vals[4 * T : 5 * T] = -((mf_pue * weights) * frac)
        else:
            green_vals = donor.green_vals

        # Block value arrays are views into tri_vals (which concatenates them
        # in block order); index arrays and right-hand sides are shared.
        blocks = []
        for (rows, cols, vals, sense, rhs, _), offset, label in zip(
            donor.blocks, template.block_offsets, template.block_labels
        ):
            blocks.append(
                (rows, cols, tri_vals[offset : offset + len(vals)], sense, rhs,
                 f"{label}[{name}]")
            )
        return _SiteSkeleton(
            location_name=name,
            num_epochs=T,
            lower=donor.lower,
            upper=upper,
            blocks=blocks,
            objective_cols=donor.objective_cols,
            objective_vals=np.concatenate(obj_vals),
            fixed_cost=coefficients["fixed"],
            tri_rows=donor.tri_rows,
            tri_cols=donor.tri_cols,
            tri_vals=tri_vals,
            rhs=donor.rhs,
            le_mask=donor.le_mask,
            ge_mask=donor.ge_mask,
            green_rows=donor.green_rows,
            green_cols=donor.green_cols,
            green_vals=green_vals,
        )

    def _build_site_skeleton(
        self, name: str, size_class: str
    ) -> Tuple[_SiteSkeleton, _SkeletonTemplate]:
        problem = self.problem
        params = problem.params
        profile = self._profiles.get(name)
        if profile is None:
            raise KeyError(f"siting refers to unknown location {name!r}")
        epochs = problem.epochs
        T = epochs.num_epochs
        weights = epochs.epoch_weights_hours()
        # Scalar on uniform grids, per-epoch array on adaptively refined ones.
        hours = np.broadcast_to(np.asarray(epochs.epoch_hours, dtype=float), (T,))
        t = np.arange(T, dtype=np.int64)
        prev = (t - 1) % T
        ones = np.ones(T)

        allow_solar = problem.sources.allows_solar
        allow_wind = problem.sources.allows_wind
        use_batteries = problem.storage is StorageMode.BATTERIES
        use_net_metering = problem.storage is StorageMode.NET_METERING
        inf = float("inf")

        # Local variable layout mirrors _SiteLayout / the scalar builder.
        cap, sol, wnd, bat = 0, 1, 2, 3
        fam = {
            family: 4 + k * T + t for k, family in enumerate(_EPOCH_FAMILIES)
        }
        n_vars = 4 + len(_EPOCH_FAMILIES) * T
        lower = np.zeros(n_vars)
        upper = np.full(n_vars, inf)
        upper[sol] = inf if allow_solar else 0.0
        upper[wnd] = inf if allow_wind else 0.0
        upper[bat] = inf if use_batteries else 0.0
        brown_cap = params.brown_plant_cap_fraction * profile.near_plant_capacity_kw
        upper[fam["brown"]] = max(0.0, brown_cap)
        storage_upper = inf if use_batteries else 0.0
        upper[fam["battery_charge"]] = storage_upper
        upper[fam["battery_discharge"]] = storage_upper
        upper[fam["battery_level"]] = storage_upper
        net_upper = inf if use_net_metering else 0.0
        upper[fam["net_charge"]] = net_upper
        upper[fam["net_discharge"]] = net_upper
        upper[fam["net_level"]] = net_upper

        pue = profile.pue
        mf_pue = params.migration_factor * pue

        blocks: List[Tuple[np.ndarray, np.ndarray, np.ndarray, ConstraintSense, np.ndarray, str]] = []
        block_offsets: List[int] = []
        block_labels: List[str] = []
        vals_offset = 0

        def block(row_lists, col_lists, val_lists, sense, rhs, label):
            nonlocal vals_offset
            vals = np.concatenate(val_lists)
            blocks.append(
                (
                    np.concatenate(row_lists),
                    np.concatenate(col_lists),
                    vals,
                    sense,
                    np.asarray(rhs, dtype=float),
                    f"{label}[{name}]",
                )
            )
            block_offsets.append(vals_offset)
            block_labels.append(label)
            vals_offset += len(vals)

        # Size-class consistency: the construction price per kW assumed in the
        # objective is only valid within the class's power range.
        if size_class == "small":
            block(
                [np.zeros(1, dtype=np.int64)],
                [np.array([cap], dtype=np.int64)],
                [np.array([profile.max_pue])],
                ConstraintSense.LESS_EQUAL,
                [params.small_dc_threshold_kw],
                "small_dc",
            )
        # Migration overhead: load that left this site since the previous epoch
        # still consumes energy here during this epoch.
        block(
            [t, t, t],
            [fam["migrate"], fam["compute"][prev], fam["compute"]],
            [ones, -ones, ones],
            ConstraintSense.GREATER_EQUAL,
            np.zeros(T),
            "migration",
        )
        # Constraint 1: provisioned capacity covers compute plus incoming load.
        block(
            [t, t, t],
            [np.full(T, cap, dtype=np.int64), fam["compute"], fam["migrate"]],
            [ones, -ones, -ones],
            ConstraintSense.GREATER_EQUAL,
            np.zeros(T),
            "capacity_cover",
        )
        # Constraint 5: demand is met by direct green, storage draws and brown.
        block(
            [t, t, t, t, t, t],
            [
                fam["green_direct"],
                fam["battery_discharge"],
                fam["net_discharge"],
                fam["brown"],
                fam["compute"],
                fam["migrate"],
            ],
            [ones, ones, ones, ones, -pue, -mf_pue],
            ConstraintSense.GREATER_EQUAL,
            np.zeros(T),
            "power_balance",
        )
        # Green energy only counts toward the requirement when it actually
        # serves load: what is delivered (directly or from storage) in an epoch
        # cannot exceed that epoch's demand.  Surplus production is curtailed
        # (or, with net metering, banked for later).
        block(
            [t, t, t, t, t],
            [
                fam["compute"],
                fam["migrate"],
                fam["green_direct"],
                fam["battery_discharge"],
                fam["net_discharge"],
            ],
            [pue, mf_pue, -ones, -ones, -ones],
            ConstraintSense.GREATER_EQUAL,
            np.zeros(T),
            "green_delivery_cap",
        )
        # Green allocation: direct use plus storage charging cannot exceed production.
        block(
            [t, t, t, t, t],
            [
                np.full(T, sol, dtype=np.int64),
                np.full(T, wnd, dtype=np.int64),
                fam["green_direct"],
                fam["battery_charge"],
                fam["net_charge"],
            ],
            [profile.solar_alpha, profile.wind_beta, -ones, -ones, -ones],
            ConstraintSense.GREATER_EQUAL,
            np.zeros(T),
            "green_allocation",
        )
        if use_batteries:
            # Constraints 6-7: battery level dynamics (cyclic over the year).
            eff_hours = params.battery_efficiency * hours
            block(
                [t, t, t, t],
                [
                    fam["battery_level"],
                    fam["battery_level"][prev],
                    fam["battery_charge"],
                    fam["battery_discharge"],
                ],
                [ones, -ones, -eff_hours, hours],
                ConstraintSense.EQUAL,
                np.zeros(T),
                "battery_dynamics",
            )
            block(
                [t, t],
                [fam["battery_level"], np.full(T, bat, dtype=np.int64)],
                [ones, -ones],
                ConstraintSense.LESS_EQUAL,
                np.zeros(T),
                "battery_capacity",
            )
        if use_net_metering:
            # Constraints 8-9: net-metered energy bank (cyclic over the year).
            block(
                [t, t, t, t],
                [
                    fam["net_level"],
                    fam["net_level"][prev],
                    fam["net_charge"],
                    fam["net_discharge"],
                ],
                [ones, -ones, -hours, hours],
                ConstraintSense.EQUAL,
                np.zeros(T),
                "net_dynamics",
            )

        # Objective contribution of this site.
        coefficients = self.cost_model.linear_coefficients(profile, size_class)
        obj_cols = [np.array([cap, sol, wnd, bat], dtype=np.int64), fam["brown"]]
        obj_vals = [
            np.array(
                [
                    coefficients["capacity_kw"],
                    coefficients["solar_kw"],
                    coefficients["wind_kw"],
                    coefficients["battery_kwh"],
                ]
            ),
            coefficients["brown_kwh_year"] * weights,
        ]
        if use_net_metering:
            obj_cols.append(fam["net_discharge"])
            obj_vals.append(coefficients["net_discharge_kwh_year"] * weights)
            obj_cols.append(fam["net_charge"])
            obj_vals.append(coefficients["net_charge_kwh_year"] * weights)

        # Pre-concatenated triplets (block-local row offsets applied) and
        # per-row sense masks for the templated row-form fast path.
        tri_rows_parts: List[np.ndarray] = []
        rhs_parts: List[np.ndarray] = []
        le_parts: List[np.ndarray] = []
        ge_parts: List[np.ndarray] = []
        row_offset = 0
        for rows, _cols, _vals, sense, rhs, _label in blocks:
            tri_rows_parts.append(rows + row_offset)
            rhs_parts.append(rhs)
            n_rows = len(rhs)
            le_parts.append(
                np.full(n_rows, sense is ConstraintSense.LESS_EQUAL, dtype=bool)
            )
            ge_parts.append(
                np.full(n_rows, sense is ConstraintSense.GREATER_EQUAL, dtype=bool)
            )
            row_offset += n_rows

        # This site's slice of the cross-site minimum-green coupling row(s):
        # delivered green counts positive, a ``frac`` share of the demand
        # counts negative (annual form weights epochs by their hours).
        if params.min_green_fraction > 0:
            frac = params.min_green_fraction
            per_epoch = problem.green_enforcement is GreenEnforcement.PER_EPOCH
            if per_epoch:
                green_val = np.ones(T)
                compute_val = -(pue * frac)
                migrate_val = -(mf_pue * frac)
                green_rows = np.concatenate([t] * 5)
            else:
                green_val = weights.astype(float)
                compute_val = -((pue * weights) * frac)
                migrate_val = -((mf_pue * weights) * frac)
                green_rows = np.zeros(5 * T, dtype=np.int64)
            green_cols = np.concatenate(
                [
                    fam["green_direct"],
                    fam["battery_discharge"],
                    fam["net_discharge"],
                    fam["compute"],
                    fam["migrate"],
                ]
            )
            green_vals = np.concatenate(
                [green_val, green_val, green_val, compute_val, migrate_val]
            )
        else:
            green_rows = np.empty(0, dtype=np.int64)
            green_cols = np.empty(0, dtype=np.int64)
            green_vals = np.empty(0)

        skeleton = _SiteSkeleton(
            location_name=name,
            num_epochs=T,
            lower=lower,
            upper=upper,
            blocks=blocks,
            objective_cols=np.concatenate(obj_cols),
            objective_vals=np.concatenate(obj_vals),
            fixed_cost=coefficients["fixed"],
            tri_rows=np.concatenate(tri_rows_parts),
            tri_cols=np.concatenate([cols for _rows, cols, *_rest in blocks]),
            tri_vals=np.concatenate([vals for _rows, _cols, vals, *_rest in blocks]),
            rhs=np.concatenate(rhs_parts),
            le_mask=np.concatenate(le_parts),
            ge_mask=np.concatenate(ge_parts),
            green_rows=green_rows,
            green_cols=green_cols,
            green_vals=green_vals,
        )
        template = _SkeletonTemplate(
            donor=skeleton,
            block_offsets=block_offsets,
            block_labels=block_labels,
            slots={
                label: offset
                for label, offset in zip(block_labels, block_offsets)
                if label in ("small_dc", "power_balance", "green_delivery_cap", "green_allocation")
            },
            brown_cols=fam["brown"],
        )
        return skeleton, template

    # -- cross-process skeleton shipping -------------------------------------------
    def export_shared_state(self) -> Dict[str, Dict]:
        """Snapshot of the compiled per-site skeletons and class templates.

        Everything in the snapshot is plain data (numpy arrays, dataclasses),
        so it pickles across a process boundary; a worker-side compiler built
        for an *equivalent* problem seeds itself with
        :meth:`seed_shared_state` and then derives any further location's
        skeleton by slot rewrites instead of a full donor build.  Live HiGHS
        state (CSC templates, mutable models, solver contexts) never ships.
        """
        with self._lock:
            return {
                "templates": dict(self._skeleton_templates),
                "skeletons": dict(self._skeletons),
            }

    def seed_shared_state(self, state: Mapping[str, Dict]) -> None:
        """Adopt another compiler's exported skeletons (first writer wins)."""
        with self._lock:
            for size_class, template in state.get("templates", {}).items():
                self._skeleton_templates.setdefault(size_class, template)
            for key, skeleton in state.get("skeletons", {}).items():
                name = key[0]
                if name in self._profiles:
                    self._skeletons.setdefault(key, skeleton)

    # -- per-site incremental delta arrays ----------------------------------------
    def incremental_site_data(self, name: str) -> _IncrementalSiteData:
        """Delta arrays for splicing one site in/out of a mutable model."""
        with self._lock:
            data = self._incremental.get(name)
        if data is None:
            data = self._build_incremental_site_data(name)
            with self._lock:
                data = self._incremental.setdefault(name, data)
        return data

    def _build_incremental_site_data(self, name: str) -> _IncrementalSiteData:
        # The "small" skeleton carries the full structure (its small_dc row is
        # the one the "large" class relaxes); the class only changes objective
        # coefficients and the fixed cost.
        small = self.site_skeleton(name, "small")
        large = self.site_skeleton(name, "large")
        params = self.problem.params
        T = small.num_epochs
        n_vars = len(small.lower)
        if not small.blocks or not small.blocks[0][5].startswith("small_dc"):
            raise RuntimeError("incremental layout expects the small_dc row first")

        row_lower = np.where(small.le_mask, -np.inf, small.rhs)
        row_upper = np.where(small.ge_mask, np.inf, small.rhs)
        order = np.argsort(small.tri_rows, kind="stable")
        row_starts = np.zeros(small.num_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(small.tri_rows, minlength=small.num_rows), out=row_starts[1:])

        # This site's entries in the coupling rows: compute columns feed the
        # total-capacity rows [0, T); the green contribution lands on the
        # min-green row(s) at [T, T+G).
        t = np.arange(T, dtype=np.int64)
        coup_cols = [4 + t]
        coup_rows = [t]
        coup_vals = [np.ones(T)]
        if params.min_green_fraction > 0:
            coup_cols.append(small.green_cols)
            coup_rows.append(T + small.green_rows)
            coup_vals.append(small.green_vals)
        cols = np.concatenate(coup_cols)
        rows = np.concatenate(coup_rows)
        vals = np.concatenate(coup_vals)
        col_order = np.argsort(cols, kind="stable")
        coupling_starts = np.zeros(n_vars + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=n_vars), out=coupling_starts[1:])

        if not np.array_equal(small.objective_cols, large.objective_cols):
            raise RuntimeError("objective support must not depend on the size class")
        return _IncrementalSiteData(
            name=name,
            num_vars=n_vars,
            lower=small.lower,
            upper=small.upper,
            row_lower=row_lower,
            row_upper=row_upper,
            row_starts=row_starts,
            row_cols=small.tri_cols[order],
            row_vals=small.tri_vals[order],
            small_dc_upper=float(row_upper[0]),
            coupling_starts=coupling_starts,
            coupling_rows=rows[col_order],
            coupling_vals=vals[col_order],
            cost_cols=small.objective_cols,
            cost_vals={"small": small.objective_vals, "large": large.objective_vals},
            fixed={"small": small.fixed_cost, "large": large.fixed_cost},
        )

    # -- whole-model assembly -----------------------------------------------------
    def compile(
        self, siting: Mapping[str, str], enforce_spread: bool = True
    ) -> Tuple[Model, List[_SiteLayout]]:
        """Assemble the provisioning LP for one siting decision as a Model."""
        problem = self.problem
        params = problem.params
        T = problem.num_epochs
        t = np.arange(T, dtype=np.int64)
        model = Model(name="provisioning", sense="min")
        layouts: List[_SiteLayout] = []
        skeletons: List[_SiteSkeleton] = []
        profiles = self._profiles

        objective_cols: List[np.ndarray] = []
        objective_vals: List[np.ndarray] = []
        fixed_cost = 0.0
        for name, size_class in siting.items():
            skeleton = self.site_skeleton(name, size_class)
            base = model.num_variables
            model.add_variable_array(skeleton.names, skeleton.lower, skeleton.upper)
            layouts.append(
                _SiteLayout(
                    profile=profiles[name], size_class=size_class, base=base, num_epochs=T
                )
            )
            skeletons.append(skeleton)
            for rows, cols, vals, sense, rhs, label in skeleton.blocks:
                model.add_linear_block(
                    rows, cols + base, vals, sense, rhs, name=label, validate=False
                )
            objective_cols.append(skeleton.objective_cols + base)
            objective_vals.append(skeleton.objective_vals)
            fixed_cost += skeleton.fixed_cost

        # Constraint 2: the network must provide the requested compute power in
        # every epoch.
        model.add_linear_block(
            np.concatenate([t] * len(layouts)),
            np.concatenate([layout.compute for layout in layouts]),
            np.ones(T * len(layouts)),
            ConstraintSense.GREATER_EQUAL,
            np.full(T, params.total_capacity_kw),
            name="total_capacity",
            validate=False,
        )

        # Constraint 3: minimum share of green energy, enforced either over the
        # whole year (the paper's main formulation) or in every epoch (the
        # stricter variant studied in the technical report).  The per-site
        # contributions are cached in the skeletons.
        if params.min_green_fraction > 0:
            per_epoch = problem.green_enforcement is GreenEnforcement.PER_EPOCH
            model.add_linear_block(
                np.concatenate([skeleton.green_rows for skeleton in skeletons]),
                np.concatenate(
                    [
                        skeleton.green_cols + layout.base
                        for skeleton, layout in zip(skeletons, layouts)
                    ]
                ),
                np.concatenate([skeleton.green_vals for skeleton in skeletons]),
                ConstraintSense.GREATER_EQUAL,
                np.zeros(T) if per_epoch else np.zeros(1),
                name="min_green_fraction",
                validate=False,
            )

        # Availability spread: every sited DC keeps at least S/n servers.
        if enforce_spread and layouts:
            floor = params.total_capacity_kw / len(layouts)
            model.add_linear_block(
                np.arange(len(layouts), dtype=np.int64),
                np.array([layout.capacity for layout in layouts], dtype=np.int64),
                np.ones(len(layouts)),
                ConstraintSense.GREATER_EQUAL,
                np.full(len(layouts), floor),
                name="capacity_spread",
                validate=False,
            )

        model.set_objective(
            LinearExpression(
                dict(
                    zip(
                        np.concatenate(objective_cols).tolist(),
                        np.concatenate(objective_vals).tolist(),
                    )
                ),
                fixed_cost,
            )
        )
        return model, layouts

    # -- templated row-form assembly ------------------------------------------------
    def compile_row_form(
        self, siting: Mapping[str, str], enforce_spread: bool = True
    ) -> Optional[Tuple[RowFormLP, List[_SiteLayout]]]:
        """Assemble the LP directly in HiGHS row form via the pattern cache.

        Sitings with the same ordered size-class tuple share one CSC sparsity
        pattern, so after the first assembly of a shape only the coefficient
        values, bounds and right-hand sides are rebuilt (a few array
        concatenations and one fancy-index).  Returns ``None`` when the shape
        cannot be templated (degenerate single-epoch grids produce duplicate
        COO coordinates); callers then fall back to :meth:`compile`.
        """
        problem = self.problem
        params = problem.params
        T = problem.num_epochs
        if T < 2:
            return None
        skeletons: List[_SiteSkeleton] = []
        classes: List[str] = []
        for name, size_class in siting.items():
            skeletons.append(self.site_skeleton(name, size_class))
            classes.append(size_class)
        num_sites = len(skeletons)
        nvars_site = len(skeletons[0].lower)
        has_green = params.min_green_fraction > 0
        per_epoch = problem.green_enforcement is GreenEnforcement.PER_EPOCH

        key = (tuple(classes), bool(enforce_spread))
        with self._lock:
            template = self._templates.get(key)
        if template is False:
            return None
        if template is None:
            template = self._build_template(
                key, skeletons, enforce_spread, has_green, per_epoch
            )
            with self._lock:
                self._templates.setdefault(key, template if template is not None else False)
            if template is None:
                return None

        # Values, right-hand sides, bounds and costs in the same deterministic
        # order the template's pattern was built in.
        vals_parts = [skeleton.tri_vals for skeleton in skeletons]
        rhs_parts = [skeleton.rhs for skeleton in skeletons]
        vals_parts.append(np.ones(T * num_sites))  # total_capacity
        rhs_parts.append(np.full(T, params.total_capacity_kw))
        if has_green:
            vals_parts.extend(skeleton.green_vals for skeleton in skeletons)
            rhs_parts.append(np.zeros(T if per_epoch else 1))
        if enforce_spread:
            vals_parts.append(np.ones(num_sites))
            rhs_parts.append(np.full(num_sites, params.total_capacity_kw / num_sites))
        vals = np.concatenate(vals_parts)
        rhs = np.concatenate(rhs_parts)
        if len(vals) != len(template.perm) or len(rhs) != template.shape[0]:
            return None  # pattern drifted; let the Model path handle it

        num_cols = num_sites * nvars_site
        cost = np.zeros(num_cols)
        fixed_cost = 0.0
        for index, skeleton in enumerate(skeletons):
            cost[skeleton.objective_cols + index * nvars_site] = skeleton.objective_vals
            fixed_cost += skeleton.fixed_cost
        row_form = RowFormLP(
            cost=cost,
            a_indptr=template.indptr,
            a_indices=template.indices,
            a_data=vals[template.perm],
            shape=template.shape,
            row_lower=np.where(template.le_mask, -np.inf, rhs),
            row_upper=np.where(template.ge_mask, np.inf, rhs),
            lower=np.concatenate([skeleton.lower for skeleton in skeletons]),
            upper=np.concatenate([skeleton.upper for skeleton in skeletons]),
            integrality=np.zeros(num_cols, dtype=np.int64),
            maximise=False,
            objective_constant=fixed_cost,
        )
        if lp_validate.validation_enabled():
            lp_validate.validate_row_form(
                row_form,
                f"compiled skeleton instantiation ({num_sites} sites x {T} epochs)",
            )
        profiles = self._profiles
        layouts = [
            _SiteLayout(
                profile=profiles[name],
                size_class=size_class,
                base=index * nvars_site,
                num_epochs=T,
            )
            for index, (name, size_class) in enumerate(siting.items())
        ]
        return row_form, layouts

    def compile_batch(
        self,
        sitings: Sequence[Tuple[str, str]],
        enforce_spread: bool = False,
    ) -> Optional[BatchCompiledLP]:
        """Stack independent single-site LPs into one block-diagonal mega-LP.

        ``sitings`` lists ``(location, size_class)`` pairs; each becomes its
        own complete pricing LP — including its total-capacity and green
        coupling rows, exactly as :meth:`compile_row_form` builds them for a
        one-site siting — and the blocks are concatenated block-diagonally in
        the given order.  One solve of the result prices every location at
        once; :meth:`BatchCompiledLP.site_costs` recovers the per-site costs.

        Returns ``None`` when any site's LP cannot be templated (degenerate
        epoch grids); callers then fall back to per-site solves.
        """
        from repro.lpsolver.batch import stack_block_diagonal

        if not sitings:
            return None
        blocks: List[RowFormLP] = []
        names: List[str] = []
        for name, size_class in sitings:
            compiled = self.compile_row_form({name: size_class}, enforce_spread)
            if compiled is None:
                return None
            blocks.append(compiled[0])
            names.append(name)
        stacked, col_offsets, row_offsets = stack_block_diagonal(blocks)
        return BatchCompiledLP(
            row_form=stacked,
            names=names,
            col_offsets=col_offsets,
            row_offsets=row_offsets,
            constants=np.array([block.objective_constant for block in blocks]),
        )

    def _build_template(
        self,
        key: Tuple,
        skeletons: List[_SiteSkeleton],
        enforce_spread: bool,
        has_green: bool,
        per_epoch: bool,
    ) -> Optional[_ModelTemplate]:
        problem = self.problem
        T = problem.num_epochs
        t = np.arange(T, dtype=np.int64)
        num_sites = len(skeletons)
        nvars_site = len(skeletons[0].lower)
        num_cols = num_sites * nvars_site
        compute_local = 4 + t  # compute is the first per-epoch family
        capacity_local = 0

        rows_parts: List[np.ndarray] = []
        cols_parts: List[np.ndarray] = []
        le_parts: List[np.ndarray] = []
        ge_parts: List[np.ndarray] = []
        row_offset = 0
        for index, skeleton in enumerate(skeletons):
            rows_parts.append(skeleton.tri_rows + row_offset)
            cols_parts.append(skeleton.tri_cols + index * nvars_site)
            le_parts.append(skeleton.le_mask)
            ge_parts.append(skeleton.ge_mask)
            row_offset += skeleton.num_rows
        rows_parts.append(np.tile(t, num_sites) + row_offset)
        cols_parts.append(
            np.concatenate([compute_local + index * nvars_site for index in range(num_sites)])
        )
        le_parts.append(np.zeros(T, dtype=bool))
        ge_parts.append(np.ones(T, dtype=bool))
        row_offset += T
        if has_green:
            green_rows = T if per_epoch else 1
            for index, skeleton in enumerate(skeletons):
                rows_parts.append(skeleton.green_rows + row_offset)
                cols_parts.append(skeleton.green_cols + index * nvars_site)
            le_parts.append(np.zeros(green_rows, dtype=bool))
            ge_parts.append(np.ones(green_rows, dtype=bool))
            row_offset += green_rows
        if enforce_spread:
            rows_parts.append(np.arange(num_sites, dtype=np.int64) + row_offset)
            cols_parts.append(
                np.array(
                    [capacity_local + index * nvars_site for index in range(num_sites)],
                    dtype=np.int64,
                )
            )
            le_parts.append(np.zeros(num_sites, dtype=bool))
            ge_parts.append(np.ones(num_sites, dtype=bool))
            row_offset += num_sites

        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        num_rows = row_offset
        # CSC order: sort entries by (column, row); bail out on duplicate
        # coordinates, which would be silently summed by scipy but not HiGHS.
        codes = cols * np.int64(num_rows) + rows
        perm = np.argsort(codes, kind="stable")
        sorted_codes = codes[perm]
        if np.any(sorted_codes[1:] == sorted_codes[:-1]):
            return None
        indptr = np.zeros(num_cols + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=num_cols), out=indptr[1:])
        return _ModelTemplate(
            shape=(num_rows, num_cols),
            perm=perm,
            indices=rows[perm].astype(np.int32),
            indptr=indptr.astype(np.int32),
            le_mask=np.concatenate(le_parts),
            ge_mask=np.concatenate(ge_parts),
        )


class ProvisioningModelBuilder:
    """Builds the Fig. 1 constraints for a given siting decision.

    Parameters
    ----------
    problem:
        The siting problem (candidate profiles, parameters, scenario switches).
    siting:
        Mapping from location name to size class (``"small"`` or ``"large"``)
        for the locations where a datacenter is placed.
    enforce_spread:
        When True (default), each sited datacenter must host at least
        ``totalCapacity / n`` compute capacity so that the failure of ``n - 1``
        datacenters leaves ``S/n`` servers, the paper's stricter availability
        condition.
    backend:
        ``"vectorized"`` (default) emits blocked constraints through a
        :class:`ProvisioningCompiler`; ``"scalar"`` uses the original
        per-epoch object-API loops.  Both compile to the same LP.
    compiler:
        Optional shared :class:`ProvisioningCompiler` whose per-site skeleton
        cache should be reused (the heuristic passes one per search).
    """

    def __init__(
        self,
        problem: SitingProblem,
        siting: Mapping[str, str],
        enforce_spread: bool = True,
        backend: Optional[str] = None,
        compiler: Optional[ProvisioningCompiler] = None,
    ) -> None:
        if not siting:
            raise ValueError("the siting decision must place at least one datacenter")
        for name, size_class in siting.items():
            if size_class not in ("small", "large"):
                raise ValueError(f"unknown size class {size_class!r} for {name!r}")
        backend = backend or DEFAULT_BACKEND
        if backend not in ("vectorized", "scalar"):
            raise ValueError(f"unknown provisioning builder backend {backend!r}")
        self.problem = problem
        self.siting = dict(siting)
        self.enforce_spread = enforce_spread
        self.backend = backend
        if compiler is not None and compiler.problem is not problem:
            raise ValueError("the shared compiler was built for a different problem")
        self.compiler = compiler or ProvisioningCompiler(problem)
        self.cost_model = self.compiler.cost_model
        self.sites: List[_SiteLayout] = []
        self._model: Optional[Model] = None
        self._row_form: Optional[RowFormLP] = None
        if backend == "vectorized":
            if highs_backend.AVAILABLE:
                # Fast path: templated row-form assembly straight to HiGHS; the
                # Model object is only materialised if someone asks for it.
                fast = self.compiler.compile_row_form(siting, enforce_spread)
                if fast is not None:
                    self._row_form, self.sites = fast
            if self._row_form is None:
                self._model, self.sites = self.compiler.compile(siting, enforce_spread)
        else:
            self._model = Model(name="provisioning", sense="min")
            self._objective_terms: List[LinearExpression | float] = []
            self._build_scalar()

    @property
    def model(self) -> Model:
        """The provisioning LP as a :class:`Model` (built on demand)."""
        if self._model is None:
            self._model, layouts = self.compiler.compile(self.siting, self.enforce_spread)
            if not self.sites:
                self.sites = layouts
        return self._model

    # -- scalar model construction (reference implementation) ----------------------
    def _build_scalar(self) -> None:
        problem = self.problem
        params = problem.params
        epochs = problem.epochs
        num_epochs = epochs.num_epochs
        weights = epochs.epoch_weights_hours()
        profiles = self.compiler._profiles

        scalar_sites: List[_SiteVariables] = []
        for name, size_class in self.siting.items():
            profile = profiles.get(name)
            if profile is None:
                raise KeyError(f"siting refers to unknown location {name!r}")
            base = self.model.num_variables
            scalar_sites.append(self._add_site(profile, size_class, num_epochs))
            self.sites.append(
                _SiteLayout(
                    profile=profile, size_class=size_class, base=base, num_epochs=num_epochs
                )
            )

        # Constraint 2: the network must provide the requested compute power in
        # every epoch.
        for epoch in range(num_epochs):
            total_compute = LinearExpression.sum(site.compute[epoch] for site in scalar_sites)
            self.model.add_constraint(
                total_compute >= params.total_capacity_kw, name=f"total_capacity[{epoch}]"
            )

        # Constraint 3: minimum share of green energy, enforced either over the
        # whole year (the paper's main formulation) or in every epoch (the
        # stricter variant studied in the technical report).
        if params.min_green_fraction > 0:
            if problem.green_enforcement is GreenEnforcement.PER_EPOCH:
                for epoch in range(num_epochs):
                    green_terms = []
                    demand_terms = []
                    for site in scalar_sites:
                        used_green = (
                            site.green_direct[epoch]
                            + site.battery_discharge[epoch]
                            + site.net_discharge[epoch]
                        )
                        green_terms.append(used_green)
                        demand_terms.append(self._power_demand(site, epoch))
                    self.model.add_constraint(
                        LinearExpression.sum(green_terms)
                        - params.min_green_fraction * LinearExpression.sum(demand_terms)
                        >= 0.0,
                        name=f"min_green_fraction[{epoch}]",
                    )
            else:
                green_terms = []
                demand_terms = []
                for site in scalar_sites:
                    for epoch in range(num_epochs):
                        used_green = (
                            site.green_direct[epoch]
                            + site.battery_discharge[epoch]
                            + site.net_discharge[epoch]
                        )
                        green_terms.append(weights[epoch] * used_green)
                        demand_terms.append(weights[epoch] * self._power_demand(site, epoch))
                total_green = LinearExpression.sum(green_terms)
                total_demand = LinearExpression.sum(demand_terms)
                self.model.add_constraint(
                    total_green - params.min_green_fraction * total_demand >= 0.0,
                    name="min_green_fraction",
                )

        # Availability spread: every sited DC keeps at least S/n servers.
        if self.enforce_spread and len(scalar_sites) > 0:
            floor = params.total_capacity_kw / len(scalar_sites)
            for site in scalar_sites:
                self.model.add_constraint(
                    site.capacity >= floor, name=f"capacity_spread[{site.profile.name}]"
                )

        self.model.set_objective(LinearExpression.sum(self._objective_terms))

    def _add_site(
        self, profile: LocationProfile, size_class: str, num_epochs: int
    ) -> _SiteVariables:
        problem = self.problem
        params = problem.params
        epochs = problem.epochs
        weights = epochs.epoch_weights_hours()
        epoch_hours = np.broadcast_to(
            np.asarray(epochs.epoch_hours, dtype=float), (num_epochs,)
        )
        model = self.model
        name = profile.name

        allow_solar = problem.sources.allows_solar
        allow_wind = problem.sources.allows_wind
        use_batteries = problem.storage is StorageMode.BATTERIES
        use_net_metering = problem.storage is StorageMode.NET_METERING

        capacity = model.add_variable(f"capacity[{name}]")
        solar = model.add_variable(f"solar[{name}]", upper=float("inf") if allow_solar else 0.0)
        wind = model.add_variable(f"wind[{name}]", upper=float("inf") if allow_wind else 0.0)
        battery = model.add_variable(
            f"battery[{name}]", upper=float("inf") if use_batteries else 0.0
        )

        def per_epoch(prefix: str, upper: float = float("inf")) -> List[Variable]:
            return [
                model.add_variable(f"{prefix}[{name},{t}]", upper=upper)
                for t in range(num_epochs)
            ]

        compute = per_epoch("compute")
        migrate = per_epoch("migrate")
        brown_cap = params.brown_plant_cap_fraction * profile.near_plant_capacity_kw
        brown = per_epoch("brown", upper=max(0.0, brown_cap))
        green_direct = per_epoch("green_direct")
        storage_upper = float("inf") if use_batteries else 0.0
        battery_charge = per_epoch("battery_charge", upper=storage_upper)
        battery_discharge = per_epoch("battery_discharge", upper=storage_upper)
        battery_level = per_epoch("battery_level", upper=float("inf") if use_batteries else 0.0)
        net_upper = float("inf") if use_net_metering else 0.0
        net_charge = per_epoch("net_charge", upper=net_upper)
        net_discharge = per_epoch("net_discharge", upper=net_upper)
        net_level = per_epoch("net_level", upper=net_upper)

        site = _SiteVariables(
            profile=profile,
            size_class=size_class,
            capacity=capacity,
            solar=solar,
            wind=wind,
            battery=battery,
            compute=compute,
            migrate=migrate,
            brown=brown,
            green_direct=green_direct,
            battery_charge=battery_charge,
            battery_discharge=battery_discharge,
            battery_level=battery_level,
            net_charge=net_charge,
            net_discharge=net_discharge,
            net_level=net_level,
        )

        # Size-class consistency: the construction price per kW assumed in the
        # objective is only valid within the class's power range.
        total_power_per_kw = profile.max_pue
        if size_class == "small":
            model.add_constraint(
                total_power_per_kw * capacity <= params.small_dc_threshold_kw,
                name=f"small_dc[{name}]",
            )

        for t in range(num_epochs):
            previous = (t - 1) % num_epochs
            # Migration overhead: load that left this site since the previous
            # epoch still consumes energy here during this epoch.
            model.add_constraint(
                migrate[t] >= compute[previous] - compute[t], name=f"migration[{name},{t}]"
            )
            # Constraint 1: provisioned capacity covers compute plus incoming load.
            model.add_constraint(
                capacity >= compute[t] + migrate[t], name=f"capacity_cover[{name},{t}]"
            )
            demand = self._power_demand(site, t)
            # Constraint 5: demand is met by direct green, storage draws and brown.
            supply = green_direct[t] + battery_discharge[t] + net_discharge[t] + brown[t]
            self.model.add_constraint(supply - demand >= 0.0, name=f"power_balance[{name},{t}]")
            # Green energy only counts toward the requirement when it actually
            # serves load: what is delivered (directly or from storage) in an
            # epoch cannot exceed that epoch's demand.  Surplus production is
            # curtailed (or, with net metering, banked for later).
            delivered = green_direct[t] + battery_discharge[t] + net_discharge[t]
            self.model.add_constraint(
                demand - delivered >= 0.0, name=f"green_delivery_cap[{name},{t}]"
            )
            # Green allocation: direct use plus storage charging cannot exceed production.
            production = profile.solar_alpha[t] * solar + profile.wind_beta[t] * wind
            self.model.add_constraint(
                production - green_direct[t] - battery_charge[t] - net_charge[t] >= 0.0,
                name=f"green_allocation[{name},{t}]",
            )
            if use_batteries:
                # Constraints 6-7: battery level dynamics (cyclic over the year).
                model.add_constraint(
                    battery_level[t]
                    == battery_level[previous]
                    + params.battery_efficiency * battery_charge[t] * epoch_hours[t]
                    - battery_discharge[t] * epoch_hours[t],
                    name=f"battery_dynamics[{name},{t}]",
                )
                model.add_constraint(
                    battery_level[t] <= battery, name=f"battery_capacity[{name},{t}]"
                )
            if use_net_metering:
                # Constraints 8-9: net-metered energy bank (cyclic over the year).
                model.add_constraint(
                    net_level[t]
                    == net_level[previous]
                    + net_charge[t] * epoch_hours[t]
                    - net_discharge[t] * epoch_hours[t],
                    name=f"net_dynamics[{name},{t}]",
                )

        # Objective contribution of this site.
        coefficients = self.cost_model.linear_coefficients(profile, size_class)
        self._objective_terms.append(coefficients["fixed"])
        self._objective_terms.append(coefficients["capacity_kw"] * capacity)
        self._objective_terms.append(coefficients["solar_kw"] * solar)
        self._objective_terms.append(coefficients["wind_kw"] * wind)
        self._objective_terms.append(coefficients["battery_kwh"] * battery)
        for t in range(num_epochs):
            self._objective_terms.append(
                coefficients["brown_kwh_year"] * weights[t] * brown[t]
            )
            if use_net_metering:
                self._objective_terms.append(
                    coefficients["net_discharge_kwh_year"] * weights[t] * net_discharge[t]
                )
                self._objective_terms.append(
                    coefficients["net_charge_kwh_year"] * weights[t] * net_charge[t]
                )
        return site

    def _power_demand(self, site: _SiteVariables, t: int) -> LinearExpression:
        """``powDemand(d, t)``: (compute + migration overhead) * PUE."""
        migration_factor = self.problem.params.migration_factor
        pue = site.profile.pue[t]
        demand = site.compute[t] + migration_factor * site.migrate[t]
        return pue * demand

    # -- solving ------------------------------------------------------------------------------
    def solve(
        self, options: Optional[SolverOptions] = None, context: Optional[object] = None
    ) -> ProvisioningResult:
        """Solve the LP; the resulting :class:`NetworkPlan` extracts lazily."""
        options = options or SolverOptions()
        if (
            self._row_form is not None
            and options.backend in ("auto", "highs-direct")
            and highs_backend.AVAILABLE
        ):
            result = highs_backend.solve_row_form(self._row_form, options, context)
            dims = (self._row_form.shape[1], self._row_form.shape[0])
        else:
            result = self.model.solve(options, context=context)
            dims = (self.model.num_variables, self.model.num_constraints)
        if not result.is_optimal:
            return ProvisioningResult(
                feasible=False,
                monthly_cost=float("inf"),
                plan=None,
                message=f"{result.status.value}: {result.message}",
            )
        # The extractor closes over small snapshots (layouts, cost model,
        # solution vector) rather than the builder itself, so memoized results
        # do not pin the compiled model arrays for the search's lifetime.
        problem, cost_model, sites = self.problem, self.cost_model, self.sites
        return ProvisioningResult(
            feasible=True,
            monthly_cost=result.objective,
            plan=None,
            message=result.message,
            extractor=lambda: _extract_network_plan(problem, cost_model, sites, dims, result),
        )


class IncrementalSitingEvaluator:
    """Evaluates siting decisions as deltas on one persistent HiGHS model.

    The annealing search's neighbour moves change one or two sites at a time,
    but the rebuild path re-passes the whole LP and cold-solves it for every
    move.  This evaluator instead keeps a
    :class:`~repro.lpsolver.highs_backend.MutableHighsModel` loaded with the
    *current* siting's LP and expresses each requested siting as a structural
    delta against it:

    * **remove** deletes the site's column and row ranges (HiGHS drops the
      columns' coupling-row entries with them),
    * **add** appends the site's columns (with their coupling-row entries)
      and block rows,
    * **resize** flips objective coefficients and the ``small_dc`` row bounds
      in place, and
    * the availability-spread floors are value edits whenever the site count
      changes.

    Row layout: coupling rows first (``total_capacity`` at ``[0, T)``, the
    min-green row(s) at ``[T, T+G)``), then one uniform block per site — the
    skeleton rows with ``small_dc`` always present (relaxed to a free row for
    "large" sites) plus the spread row when enforced.  Columns are the
    per-site variable blocks in site order.  The previous optimal basis is
    projected across every delta, so the dual simplex warm-starts across
    moves; objective values are identical to a cold solve (the LP optimum is
    unique in value), which the differential tests pin against the rebuild
    path.  Instances are not thread-safe: one evaluator per annealing chain.
    """

    def __init__(
        self,
        compiler: ProvisioningCompiler,
        enforce_spread: bool = True,
        options: Optional[SolverOptions] = None,
        basis_mode: str = "shape",
    ) -> None:
        if not highs_backend.AVAILABLE:  # pragma: no cover - guarded by callers
            raise RuntimeError("the direct HiGHS backend is not available in this SciPy")
        if basis_mode not in ("shape", "site-block"):
            raise ValueError(f"unknown basis mode {basis_mode!r}; expected 'shape' or 'site-block'")
        problem = compiler.problem
        if problem.num_epochs < 2:
            raise ValueError("the incremental evaluator needs at least two epochs")
        self.compiler = compiler
        self.problem = problem
        self.enforce_spread = enforce_spread
        self.options = options or SolverOptions()
        params = problem.params
        self._T = problem.num_epochs
        if params.min_green_fraction > 0:
            per_epoch = problem.green_enforcement is GreenEnforcement.PER_EPOCH
            self._G = self._T if per_epoch else 1
        else:
            self._G = 0
        self._coupling = self._T + self._G
        self._model = highs_backend.MutableHighsModel()
        self._sites: List[Tuple[str, str]] = []
        self._fixed = 0.0
        self._loaded = False
        #: Per-site block row count (uniform across sites and classes);
        #: resolved from the first site's data.
        self._block_rows = 0
        self._num_vars = 0
        #: Last optimal basis per siting *shape* (site count, small count).
        #: Site blocks are structurally identical, so a same-shape basis
        #: transfers across location mixes far better than padding newly
        #: spliced columns nonbasic — structural moves restore the shape's
        #: stored (native) basis, pure value edits keep the carried basis.
        #: ``basis_mode="site-block"`` instead transplants each *leaving*
        #: site's statuses onto the entering site (the ROADMAP's per-site-
        #: block basis-memory idea; measured by
        #: ``benchmarks/bench_basis_memory.py`` — per-shape reuse wins on the
        #: swap-heavy mixes, so it stays the default).
        self.basis_mode = basis_mode
        self._shape_bases: Dict[Tuple[int, int], object] = {}
        self.solves = 0

    @staticmethod
    def supported(problem: SitingProblem, options: SolverOptions) -> bool:
        """Whether the incremental path can serve this problem's evaluations."""
        return (
            highs_backend.AVAILABLE
            and problem.num_epochs >= 2
            and options.backend in ("auto", "highs-direct")
        )

    # -- model mutation -----------------------------------------------------------
    def _append_site(self, name: str, size_class: str) -> None:
        data = self.compiler.incremental_site_data(name)
        if self._block_rows == 0:
            self._block_rows = data.num_rows + 1  # + spread row
            self._num_vars = data.num_vars
        base = self._model.num_cols
        cost = np.zeros(data.num_vars)
        cost[data.cost_cols] = data.cost_vals[size_class]
        self._model.add_cols(
            cost,
            data.lower,
            data.upper,
            data.coupling_starts,
            data.coupling_rows,
            data.coupling_vals,
        )
        row_lower = data.row_lower.copy()
        row_upper = data.row_upper.copy()
        if size_class == "large":
            row_upper[0] = np.inf  # small_dc row relaxed to a free row
        # Block rows plus the availability-spread row (capacity >= floor; the
        # floor is set by _set_spread_floors once the site count is known).
        starts = np.concatenate([data.row_starts, [data.row_starts[-1] + 1]])
        cols = np.concatenate([data.row_cols + base, [base]])
        vals = np.concatenate([data.row_vals, [1.0]])
        self._model.add_rows(
            np.concatenate([row_lower, [0.0]]),
            np.concatenate([row_upper, [np.inf]]),
            starts,
            cols,
            vals,
        )
        self._fixed += data.fixed[size_class]

    def _set_spread_floors(self) -> None:
        # The spread row is always part of the block layout; without the
        # availability constraint its floor simply stays at zero.
        if not self.enforce_spread:
            return
        floor = self.problem.params.total_capacity_kw / len(self._sites)
        for index in range(len(self._sites)):
            row = self._coupling + index * self._block_rows + self._block_rows - 1
            self._model.change_row_bounds(row, floor, np.inf)

    def _initial_load(self, siting: Mapping[str, str]) -> None:
        params = self.problem.params
        T, G = self._T, self._G
        row_lower = np.concatenate([np.full(T, params.total_capacity_kw), np.zeros(G)])
        row_upper = np.full(T + G, np.inf)
        empty = RowFormLP(
            cost=np.zeros(0),
            a_indptr=np.zeros(1, dtype=np.int32),
            a_indices=np.zeros(0, dtype=np.int32),
            a_data=np.zeros(0),
            shape=(T + G, 0),
            row_lower=row_lower,
            row_upper=row_upper,
            lower=np.zeros(0),
            upper=np.zeros(0),
            integrality=np.zeros(0, dtype=np.int64),
            maximise=False,
            objective_constant=0.0,
        )
        self._model.load(empty)
        self._fixed = 0.0
        for name, size_class in siting.items():
            self._append_site(name, size_class)
        self._sites = list(siting.items())
        self._set_spread_floors()
        self._loaded = True

    def _apply(self, siting: Mapping[str, str]) -> bool:
        """Mutate the model to ``siting``; True when sites were spliced."""
        removed = [i for i, (name, _) in enumerate(self._sites) if name not in siting]
        captured_blocks: List[Tuple[np.ndarray, np.ndarray]] = []
        if removed:
            coupling, R, n = self._coupling, self._block_rows, self._num_vars
            if self.basis_mode == "site-block":
                # Remember the leaving blocks' statuses so an entering site
                # can inherit them (site blocks are structurally identical).
                for i in removed:
                    captured = self._model.capture_block_status(
                        i * n, (i + 1) * n, coupling + i * R, coupling + (i + 1) * R
                    )
                    if captured is not None:
                        captured_blocks.append(captured)
            col_ranges = [np.arange(i * n, (i + 1) * n, dtype=np.int64) for i in removed]
            row_ranges = [
                np.arange(coupling + i * R, coupling + (i + 1) * R, dtype=np.int64)
                for i in removed
            ]
            self._model.delete_cols(np.concatenate(col_ranges))
            self._model.delete_rows(np.concatenate(row_ranges))
            for i in removed:
                name, size_class = self._sites[i]
                self._fixed -= self.compiler.incremental_site_data(name).fixed[size_class]
            self._sites = [s for i, s in enumerate(self._sites) if i not in set(removed)]
        # Size-class flips on retained sites are pure value edits.
        for index, (name, old_class) in enumerate(self._sites):
            new_class = siting[name]
            if new_class == old_class:
                continue
            data = self.compiler.incremental_site_data(name)
            base = index * self._num_vars
            self._model.change_col_costs(
                data.cost_cols + base, data.cost_vals[new_class]
            )
            small_dc_row = self._coupling + index * self._block_rows
            upper = data.small_dc_upper if new_class == "small" else np.inf
            self._model.change_row_bounds(small_dc_row, -np.inf, upper)
            self._fixed += data.fixed[new_class] - data.fixed[old_class]
            self._sites[index] = (name, new_class)
        current = {name for name, _ in self._sites}
        added = False
        appended_indices: List[int] = []
        for name, size_class in siting.items():
            if name not in current:
                self._append_site(name, size_class)
                self._sites.append((name, size_class))
                appended_indices.append(len(self._sites) - 1)
                added = True
        if captured_blocks and appended_indices:
            coupling, R, n = self._coupling, self._block_rows, self._num_vars
            for captured, index in zip(captured_blocks, appended_indices):
                self._model.overlay_block_status(
                    index * n, captured[0], coupling + index * R, captured[1]
                )
        # New blocks carry a zero floor placeholder and the floor value
        # itself depends on the site count, so floors must be reset whenever
        # a site was spliced in or out — including swaps, where the count is
        # unchanged but a fresh block arrived.
        if added or removed:
            self._set_spread_floors()
        return bool(added or removed)

    # -- evaluation ---------------------------------------------------------------
    def evaluate(self, siting: Mapping[str, str]) -> ProvisioningResult:
        """Mutate the persistent model to ``siting`` and solve it warm."""
        if not siting:
            raise ValueError("the siting decision must place at least one datacenter")
        if not self._loaded:
            self._initial_load(siting)
            structural = True
        else:
            structural = self._apply(siting)
        shape = (
            len(self._sites),
            sum(1 for _, size_class in self._sites if size_class == "small"),
        )
        if structural and self.basis_mode == "shape":
            stored = self._shape_bases.get(shape)
            if stored is not None:
                self._model.restore_basis(stored)
        result = self._model.solve(self.options)
        self.solves += 1
        if result.is_optimal and self.basis_mode == "shape":
            snapshot = self._model.basis_snapshot()
            if snapshot is not None:
                self._shape_bases[shape] = snapshot
        if not result.is_optimal:
            return ProvisioningResult(
                feasible=False,
                monthly_cost=float("inf"),
                plan=None,
                message=f"{result.status.value}: {result.message}",
            )
        result.objective = result.objective + self._fixed
        profiles = self.compiler._profiles
        T, n = self._T, self._num_vars
        layouts = [
            _SiteLayout(
                profile=profiles[name], size_class=size_class, base=index * n, num_epochs=T
            )
            for index, (name, size_class) in enumerate(self._sites)
        ]
        dims = (self._model.num_cols, self._model.num_rows)
        problem, cost_model = self.problem, self.compiler.cost_model
        return ProvisioningResult(
            feasible=True,
            monthly_cost=result.objective,
            plan=None,
            message=result.message,
            extractor=lambda: _extract_network_plan(problem, cost_model, layouts, dims, result),
        )

    def rebuild(self, siting: Mapping[str, str]) -> ProvisioningResult:
        """Differential oracle: the same siting, rebuilt and cold-solved."""
        return solve_provisioning(
            self.problem,
            siting,
            options=self.options,
            enforce_spread=self.enforce_spread,
            compiler=self.compiler,
        )


def _extract_network_plan(
    problem: SitingProblem,
    cost_model: CostModel,
    sites: List[_SiteLayout],
    dims: Tuple[int, int],
    result,
) -> NetworkPlan:
    datacenters = [_extract_datacenter_plan(cost_model, site, result) for site in sites]
    return NetworkPlan(
        datacenters=datacenters,
        params=problem.params,
        storage=problem.storage.value,
        sources=problem.sources.value,
        solver_info={
            "objective": result.objective,
            "num_variables": dims[0],
            "num_constraints": dims[1],
        },
    )


def _extract_datacenter_plan(cost_model: CostModel, site: _SiteLayout, result) -> DatacenterPlan:
    profile = site.profile
    scalars = result.value_array(
        np.array([site.capacity, site.solar, site.wind, site.battery])
    )
    capacity_kw, solar_kw, wind_kw, battery_kwh = (float(v) for v in scalars)
    series = {
        "compute_power_kw": result.value_array(site.compute),
        "migrate_power_kw": result.value_array(site.migrate),
        "brown_power_kw": result.value_array(site.brown),
        "green_direct_kw": result.value_array(site.green_direct),
        "battery_charge_kw": result.value_array(site.battery_charge),
        "battery_discharge_kw": result.value_array(site.battery_discharge),
        "net_charge_kw": result.value_array(site.net_charge),
        "net_discharge_kw": result.value_array(site.net_discharge),
    }
    monthly_costs = {
        "land_dc": cost_model.land_monthly(profile, capacity_kw, 0.0, 0.0),
        "land_solar": cost_model.land_monthly(profile, 0.0, solar_kw, 0.0),
        "land_wind": cost_model.land_monthly(profile, 0.0, 0.0, wind_kw),
        "building_dc": cost_model.building_dc_monthly(profile, capacity_kw, site.size_class),
        "building_solar": cost_model.building_solar_monthly(solar_kw),
        "building_wind": cost_model.building_wind_monthly(wind_kw),
        "it_equipment": cost_model.it_equipment_monthly(capacity_kw),
        "battery": cost_model.battery_monthly(battery_kwh),
        "connection": cost_model.capex_independent_monthly(profile),
        "network_bandwidth": cost_model.network_bandwidth_monthly(capacity_kw),
        "brown_energy": cost_model.brown_energy_monthly(
            profile,
            series["brown_power_kw"],
            series["net_discharge_kw"],
            series["net_charge_kw"],
        ),
    }
    return DatacenterPlan(
        profile=profile,
        size_class=site.size_class,
        capacity_kw=capacity_kw,
        solar_kw=solar_kw,
        wind_kw=wind_kw,
        battery_kwh=battery_kwh,
        monthly_costs=monthly_costs,
        **series,
    )


def solve_provisioning(
    problem: SitingProblem,
    siting: Mapping[str, str],
    options: Optional[SolverOptions] = None,
    enforce_spread: bool = True,
    backend: Optional[str] = None,
    compiler: Optional[ProvisioningCompiler] = None,
    solver_context: Optional[object] = None,
) -> ProvisioningResult:
    """Convenience wrapper: build and solve the fixed-siting LP in one call.

    ``compiler`` shares a per-site skeleton cache across calls on the same
    problem; ``solver_context`` enables HiGHS basis reuse across structurally
    identical solves (see :class:`~repro.lpsolver.HighsSolveContext`).
    """
    builder = ProvisioningModelBuilder(
        problem, siting, enforce_spread=enforce_spread, backend=backend, compiler=compiler
    )
    return builder.solve(options, context=solver_context)


def cheapest_size_classes(problem: SitingProblem, names: List[str]) -> Dict[str, str]:
    """Initial small/large guess: "large" when an even capacity split exceeds 10 MW."""
    if not names:
        return {}
    share_kw = problem.params.total_capacity_kw / len(names)
    size = "large" if share_kw * 1.1 > problem.params.small_dc_threshold_kw else "small"
    return {name: size for name in names}
