"""Fixed-siting provisioning LP (step 2 of the paper's heuristic).

Once the heuristic has decided *where* datacenters are placed and whether each
is "small" or "large" (which fixes the per-kW construction price), the
remaining problem — how much compute capacity, solar, wind and storage to
provision at each site, and how to distribute load and energy over the epochs
— is a pure LP.  This module builds and solves that LP and converts the
optimum into :class:`~repro.core.solution.NetworkPlan` objects.

The formulation follows Fig. 1 with one refinement: green energy is allocated
explicitly into "used directly", "stored to batteries", "stored to the grid"
and (implicitly) "curtailed", so that the green-fraction constraint counts
only green energy that actually serves the load (directly or via storage).
This closes a loophole in the figure's aggregate form in which simultaneous
charge/discharge could inflate the green numerator, and matches the intent
described in Sections II-B and IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.costs import CostModel
from repro.core.problem import EnergySources, GreenEnforcement, SitingProblem, StorageMode
from repro.core.solution import DatacenterPlan, NetworkPlan
from repro.energy.profiles import LocationProfile
from repro.lpsolver import LinearExpression, Model, SolverOptions, Variable


@dataclass
class _SiteVariables:
    """Handles to the LP variables of one sited location."""

    profile: LocationProfile
    size_class: str
    capacity: Variable
    solar: Variable
    wind: Variable
    battery: Variable
    compute: List[Variable]
    migrate: List[Variable]
    brown: List[Variable]
    green_direct: List[Variable]
    battery_charge: List[Variable]
    battery_discharge: List[Variable]
    battery_level: List[Variable]
    net_charge: List[Variable]
    net_discharge: List[Variable]
    net_level: List[Variable]


@dataclass
class ProvisioningResult:
    """Outcome of a fixed-siting provisioning solve."""

    feasible: bool
    monthly_cost: float
    plan: Optional[NetworkPlan]
    message: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.feasible


class ProvisioningModelBuilder:
    """Builds the Fig. 1 constraints for a given siting decision.

    Parameters
    ----------
    problem:
        The siting problem (candidate profiles, parameters, scenario switches).
    siting:
        Mapping from location name to size class (``"small"`` or ``"large"``)
        for the locations where a datacenter is placed.
    enforce_spread:
        When True (default), each sited datacenter must host at least
        ``totalCapacity / n`` compute capacity so that the failure of ``n - 1``
        datacenters leaves ``S/n`` servers, the paper's stricter availability
        condition.
    """

    def __init__(
        self,
        problem: SitingProblem,
        siting: Mapping[str, str],
        enforce_spread: bool = True,
    ) -> None:
        if not siting:
            raise ValueError("the siting decision must place at least one datacenter")
        for name, size_class in siting.items():
            if size_class not in ("small", "large"):
                raise ValueError(f"unknown size class {size_class!r} for {name!r}")
        self.problem = problem
        self.siting = dict(siting)
        self.enforce_spread = enforce_spread
        self.cost_model = CostModel(problem.params)
        self.model = Model(name="provisioning", sense="min")
        self.sites: List[_SiteVariables] = []
        self._objective_terms: List[LinearExpression | float] = []
        self._build()

    # -- model construction -------------------------------------------------------------
    def _build(self) -> None:
        problem = self.problem
        params = problem.params
        epochs = problem.epochs
        num_epochs = epochs.num_epochs
        weights = epochs.epoch_weights_hours()
        profiles = problem.profile_map()

        for name, size_class in self.siting.items():
            profile = profiles.get(name)
            if profile is None:
                raise KeyError(f"siting refers to unknown location {name!r}")
            self.sites.append(self._add_site(profile, size_class, num_epochs))

        # Constraint 2: the network must provide the requested compute power in
        # every epoch.
        for t in range(num_epochs):
            total_compute = LinearExpression.sum(site.compute[t] for site in self.sites)
            self.model.add_constraint(
                total_compute >= params.total_capacity_kw, name=f"total_capacity[{t}]"
            )

        # Constraint 3: minimum share of green energy, enforced either over the
        # whole year (the paper's main formulation) or in every epoch (the
        # stricter variant studied in the technical report).
        if params.min_green_fraction > 0:
            if problem.green_enforcement is GreenEnforcement.PER_EPOCH:
                for t in range(num_epochs):
                    green_terms = []
                    demand_terms = []
                    for site in self.sites:
                        used_green = (
                            site.green_direct[t]
                            + site.battery_discharge[t]
                            + site.net_discharge[t]
                        )
                        green_terms.append(used_green)
                        demand_terms.append(self._power_demand(site, t))
                    self.model.add_constraint(
                        LinearExpression.sum(green_terms)
                        - params.min_green_fraction * LinearExpression.sum(demand_terms)
                        >= 0.0,
                        name=f"min_green_fraction[{t}]",
                    )
            else:
                green_terms = []
                demand_terms = []
                for site in self.sites:
                    for t in range(num_epochs):
                        used_green = (
                            site.green_direct[t]
                            + site.battery_discharge[t]
                            + site.net_discharge[t]
                        )
                        green_terms.append(weights[t] * used_green)
                        demand_terms.append(weights[t] * self._power_demand(site, t))
                total_green = LinearExpression.sum(green_terms)
                total_demand = LinearExpression.sum(demand_terms)
                self.model.add_constraint(
                    total_green - params.min_green_fraction * total_demand >= 0.0,
                    name="min_green_fraction",
                )

        # Availability spread: every sited DC keeps at least S/n servers.
        if self.enforce_spread and len(self.sites) > 0:
            floor = params.total_capacity_kw / len(self.sites)
            for site in self.sites:
                self.model.add_constraint(
                    site.capacity >= floor, name=f"capacity_spread[{site.profile.name}]"
                )

        self.model.set_objective(LinearExpression.sum(self._objective_terms))

    def _add_site(
        self, profile: LocationProfile, size_class: str, num_epochs: int
    ) -> _SiteVariables:
        problem = self.problem
        params = problem.params
        epochs = problem.epochs
        weights = epochs.epoch_weights_hours()
        epoch_hours = epochs.epoch_hours
        model = self.model
        name = profile.name

        allow_solar = problem.sources.allows_solar
        allow_wind = problem.sources.allows_wind
        use_batteries = problem.storage is StorageMode.BATTERIES
        use_net_metering = problem.storage is StorageMode.NET_METERING

        capacity = model.add_variable(f"capacity[{name}]")
        solar = model.add_variable(f"solar[{name}]", upper=float("inf") if allow_solar else 0.0)
        wind = model.add_variable(f"wind[{name}]", upper=float("inf") if allow_wind else 0.0)
        battery = model.add_variable(
            f"battery[{name}]", upper=float("inf") if use_batteries else 0.0
        )

        def per_epoch(prefix: str, upper: float = float("inf")) -> List[Variable]:
            return [
                model.add_variable(f"{prefix}[{name},{t}]", upper=upper)
                for t in range(num_epochs)
            ]

        compute = per_epoch("compute")
        migrate = per_epoch("migrate")
        brown_cap = params.brown_plant_cap_fraction * profile.near_plant_capacity_kw
        brown = per_epoch("brown", upper=max(0.0, brown_cap))
        green_direct = per_epoch("green_direct")
        storage_upper = float("inf") if use_batteries else 0.0
        battery_charge = per_epoch("battery_charge", upper=storage_upper)
        battery_discharge = per_epoch("battery_discharge", upper=storage_upper)
        battery_level = per_epoch("battery_level", upper=float("inf") if use_batteries else 0.0)
        net_upper = float("inf") if use_net_metering else 0.0
        net_charge = per_epoch("net_charge", upper=net_upper)
        net_discharge = per_epoch("net_discharge", upper=net_upper)
        net_level = per_epoch("net_level", upper=net_upper)

        site = _SiteVariables(
            profile=profile,
            size_class=size_class,
            capacity=capacity,
            solar=solar,
            wind=wind,
            battery=battery,
            compute=compute,
            migrate=migrate,
            brown=brown,
            green_direct=green_direct,
            battery_charge=battery_charge,
            battery_discharge=battery_discharge,
            battery_level=battery_level,
            net_charge=net_charge,
            net_discharge=net_discharge,
            net_level=net_level,
        )

        # Size-class consistency: the construction price per kW assumed in the
        # objective is only valid within the class's power range.
        total_power_per_kw = profile.max_pue
        if size_class == "small":
            model.add_constraint(
                total_power_per_kw * capacity <= params.small_dc_threshold_kw,
                name=f"small_dc[{name}]",
            )

        for t in range(num_epochs):
            previous = (t - 1) % num_epochs
            # Migration overhead: load that left this site since the previous
            # epoch still consumes energy here during this epoch.
            model.add_constraint(
                migrate[t] >= compute[previous] - compute[t], name=f"migration[{name},{t}]"
            )
            # Constraint 1: provisioned capacity covers compute plus incoming load.
            model.add_constraint(
                capacity >= compute[t] + migrate[t], name=f"capacity_cover[{name},{t}]"
            )
            demand = self._power_demand(site, t)
            # Constraint 5: demand is met by direct green, storage draws and brown.
            supply = green_direct[t] + battery_discharge[t] + net_discharge[t] + brown[t]
            self.model.add_constraint(supply - demand >= 0.0, name=f"power_balance[{name},{t}]")
            # Green energy only counts toward the requirement when it actually
            # serves load: what is delivered (directly or from storage) in an
            # epoch cannot exceed that epoch's demand.  Surplus production is
            # curtailed (or, with net metering, banked for later).
            delivered = green_direct[t] + battery_discharge[t] + net_discharge[t]
            self.model.add_constraint(
                demand - delivered >= 0.0, name=f"green_delivery_cap[{name},{t}]"
            )
            # Green allocation: direct use plus storage charging cannot exceed production.
            production = profile.solar_alpha[t] * solar + profile.wind_beta[t] * wind
            self.model.add_constraint(
                production - green_direct[t] - battery_charge[t] - net_charge[t] >= 0.0,
                name=f"green_allocation[{name},{t}]",
            )
            if use_batteries:
                # Constraints 6-7: battery level dynamics (cyclic over the year).
                model.add_constraint(
                    battery_level[t]
                    == battery_level[previous]
                    + params.battery_efficiency * battery_charge[t] * epoch_hours
                    - battery_discharge[t] * epoch_hours,
                    name=f"battery_dynamics[{name},{t}]",
                )
                model.add_constraint(
                    battery_level[t] <= battery, name=f"battery_capacity[{name},{t}]"
                )
            if use_net_metering:
                # Constraints 8-9: net-metered energy bank (cyclic over the year).
                model.add_constraint(
                    net_level[t]
                    == net_level[previous]
                    + net_charge[t] * epoch_hours
                    - net_discharge[t] * epoch_hours,
                    name=f"net_dynamics[{name},{t}]",
                )

        # Objective contribution of this site.
        coefficients = self.cost_model.linear_coefficients(profile, size_class)
        self._objective_terms.append(coefficients["fixed"])
        self._objective_terms.append(coefficients["capacity_kw"] * capacity)
        self._objective_terms.append(coefficients["solar_kw"] * solar)
        self._objective_terms.append(coefficients["wind_kw"] * wind)
        self._objective_terms.append(coefficients["battery_kwh"] * battery)
        for t in range(num_epochs):
            self._objective_terms.append(
                coefficients["brown_kwh_year"] * weights[t] * brown[t]
            )
            if use_net_metering:
                self._objective_terms.append(
                    coefficients["net_discharge_kwh_year"] * weights[t] * net_discharge[t]
                )
                self._objective_terms.append(
                    coefficients["net_charge_kwh_year"] * weights[t] * net_charge[t]
                )
        return site

    def _power_demand(self, site: _SiteVariables, t: int) -> LinearExpression:
        """``powDemand(d, t)``: (compute + migration overhead) * PUE."""
        migration_factor = self.problem.params.migration_factor
        pue = site.profile.pue[t]
        demand = site.compute[t] + migration_factor * site.migrate[t]
        return pue * demand

    # -- solving ------------------------------------------------------------------------------
    def solve(self, options: Optional[SolverOptions] = None) -> ProvisioningResult:
        """Solve the LP and convert the optimum into a :class:`NetworkPlan`."""
        result = self.model.solve(options)
        if not result.is_optimal:
            return ProvisioningResult(
                feasible=False,
                monthly_cost=float("inf"),
                plan=None,
                message=f"{result.status.value}: {result.message}",
            )
        plan = self._extract_plan(result)
        return ProvisioningResult(
            feasible=True,
            monthly_cost=plan.total_monthly_cost,
            plan=plan,
            message=result.message,
        )

    def _extract_plan(self, result) -> NetworkPlan:
        datacenters = []
        for site in self.sites:
            datacenters.append(self._extract_datacenter(site, result))
        plan = NetworkPlan(
            datacenters=datacenters,
            params=self.problem.params,
            storage=self.problem.storage.value,
            sources=self.problem.sources.value,
            solver_info={
                "objective": result.objective,
                "num_variables": self.model.num_variables,
                "num_constraints": self.model.num_constraints,
            },
        )
        return plan

    def _extract_datacenter(self, site: _SiteVariables, result) -> DatacenterPlan:
        value = result.value
        profile = site.profile
        capacity_kw = value(site.capacity)
        solar_kw = value(site.solar)
        wind_kw = value(site.wind)
        battery_kwh = value(site.battery)
        series = {
            "compute_power_kw": np.array([value(v) for v in site.compute]),
            "migrate_power_kw": np.array([value(v) for v in site.migrate]),
            "brown_power_kw": np.array([value(v) for v in site.brown]),
            "green_direct_kw": np.array([value(v) for v in site.green_direct]),
            "battery_charge_kw": np.array([value(v) for v in site.battery_charge]),
            "battery_discharge_kw": np.array([value(v) for v in site.battery_discharge]),
            "net_charge_kw": np.array([value(v) for v in site.net_charge]),
            "net_discharge_kw": np.array([value(v) for v in site.net_discharge]),
        }
        cost_model = self.cost_model
        monthly_costs = {
            "land_dc": cost_model.land_monthly(profile, capacity_kw, 0.0, 0.0),
            "land_solar": cost_model.land_monthly(profile, 0.0, solar_kw, 0.0),
            "land_wind": cost_model.land_monthly(profile, 0.0, 0.0, wind_kw),
            "building_dc": cost_model.building_dc_monthly(profile, capacity_kw, site.size_class),
            "building_solar": cost_model.building_solar_monthly(solar_kw),
            "building_wind": cost_model.building_wind_monthly(wind_kw),
            "it_equipment": cost_model.it_equipment_monthly(capacity_kw),
            "battery": cost_model.battery_monthly(battery_kwh),
            "connection": cost_model.capex_independent_monthly(profile),
            "network_bandwidth": cost_model.network_bandwidth_monthly(capacity_kw),
            "brown_energy": cost_model.brown_energy_monthly(
                profile,
                series["brown_power_kw"],
                series["net_discharge_kw"],
                series["net_charge_kw"],
            ),
        }
        return DatacenterPlan(
            profile=profile,
            size_class=site.size_class,
            capacity_kw=capacity_kw,
            solar_kw=solar_kw,
            wind_kw=wind_kw,
            battery_kwh=battery_kwh,
            monthly_costs=monthly_costs,
            **series,
        )


def solve_provisioning(
    problem: SitingProblem,
    siting: Mapping[str, str],
    options: Optional[SolverOptions] = None,
    enforce_spread: bool = True,
) -> ProvisioningResult:
    """Convenience wrapper: build and solve the fixed-siting LP in one call."""
    builder = ProvisioningModelBuilder(problem, siting, enforce_spread=enforce_spread)
    return builder.solve(options)


def cheapest_size_classes(problem: SitingProblem, names: List[str]) -> Dict[str, str]:
    """Initial small/large guess: "large" when an even capacity split exceeds 10 MW."""
    if not names:
        return {}
    share_kw = problem.params.total_capacity_kw / len(names)
    size = "large" if share_kw * 1.1 > problem.params.small_dc_threshold_kw else "small"
    return {name: size for name in names}
