"""Single-datacenter cost analysis.

Section III-B of the paper explores the per-month cost of building one 25 MW
datacenter at each of the 1373 locations under three configurations — brown
(no renewables), 50 % solar and 50 % wind — producing the CDF of Fig. 6 and
the per-location attributes of Table II.  The same machinery doubles as the
location-filtering score of the heuristic solver (Section II-C).

The pricing LPs of a sweep are structurally identical (same epoch grid, same
scenario switches, one site), so sweeps accept a shared
:class:`~repro.lpsolver.HighsSolveContext` whose basis carry-over roughly
halves the per-location solve time, and :meth:`SingleSiteAnalyzer.cost_distribution`
can fan chunks out over a thread pool (``workers=...``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.parameters import FrameworkParameters
from repro.core.problem import EnergySources, SitingProblem, StorageMode
from repro.core.provisioning import ProvisioningResult, solve_provisioning
from repro.core.solution import NetworkPlan
from repro.energy.profiles import LocationProfile
from repro.lpsolver import SolverOptions
from repro.lpsolver.highs_backend import AVAILABLE as _HIGHS_DIRECT_AVAILABLE
from repro.lpsolver.highs_backend import HighsSolveContext
from repro.parallel.executors import ExecutorFactory, result_with_serial_fallback


def scoring_parameters(
    params: FrameworkParameters, capacity_kw: float, min_green_fraction: float
) -> FrameworkParameters:
    """The single-datacenter pricing configuration (shared with the filter).

    Availability is halved so a single datacenter is admissible — the score
    of one location must not be forced infeasible by the network-level
    availability constraint.
    """
    return params.with_updates(
        total_capacity_kw=capacity_kw,
        min_green_fraction=min_green_fraction,
        min_availability=params.datacenter_availability / 2.0,
    )


def scoring_sources(min_green_fraction: float, sources: EnergySources) -> EnergySources:
    """No renewables are built (or allowed) when no green share is required."""
    return EnergySources.NONE if min_green_fraction == 0.0 else sources


def single_site_size_class(
    capacity_kw: float, profile: LocationProfile, params: FrameworkParameters
) -> str:
    """Construction size class of one datacenter carrying ``capacity_kw``."""
    total_power = capacity_kw * profile.max_pue
    return "small" if total_power <= params.small_dc_threshold_kw else "large"


def split_chunks(items, num_chunks: int) -> list:
    """``items`` split into at most ``num_chunks`` contiguous chunks.

    The split depends only on ``num_chunks`` — never on how many workers end
    up executing the chunks — which is what keeps per-chunk warm-start
    sequences (and therefore pricing scores, bit for bit) independent of the
    executor kind and worker count.
    """
    if not items:
        return []
    num_chunks = max(1, min(num_chunks, len(items)))
    chunk_size = -(-len(items) // num_chunks)
    return [list(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]


def priced_in_chunks(items, price_chunk, num_chunks: int, workers: int) -> list:
    """Price ``items`` in contiguous chunks, optionally on a thread pool.

    ``price_chunk`` maps a list of items to a list of results (creating its
    own warm-start solver context per chunk); the per-chunk results are
    concatenated in chunk order, which preserves the original item order by
    construction.  The chunk split comes from :func:`split_chunks`, so scores
    are identical no matter how many threads execute them.
    """
    chunks = split_chunks(items, num_chunks)
    if not chunks:
        return []
    if workers <= 1 or len(chunks) == 1:
        return [result for chunk in chunks for result in price_chunk(chunk)]
    with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as executor:
        return [result for chunk_results in executor.map(price_chunk, chunks) for result in chunk_results]


@dataclass
class SingleSiteCost:
    """Cost and attributes of a single datacenter at one location.

    ``plan`` defers to the underlying provisioning result, so sweeps that
    only rank costs (the heuristic's location filter, the Fig. 6 CDF) never
    pay plan-extraction costs.
    """

    profile: LocationProfile
    configuration: str
    monthly_cost: float
    feasible: bool
    result: Optional[ProvisioningResult] = field(default=None, repr=False)

    @property
    def plan(self) -> Optional[NetworkPlan]:
        return self.result.plan if self.result is not None else None

    @property
    def name(self) -> str:
        return self.profile.name

    def table_row(self) -> Dict[str, float]:
        """The Table II attributes for this location."""
        return {
            "location": self.name,
            "configuration": self.configuration,
            "monthly_cost_musd": self.monthly_cost / 1e6,
            "solar_capacity_factor_pct": 100.0 * self.profile.solar_capacity_factor,
            "wind_capacity_factor_pct": 100.0 * self.profile.wind_capacity_factor,
            "max_pue": self.profile.max_pue,
            "electricity_usd_per_mwh": 1000.0 * self.profile.energy_price_per_kwh,
            "land_usd_per_m2": self.profile.land_price_per_m2,
            "distance_power_km": self.profile.distance_power_km,
            "distance_network_km": self.profile.distance_network_km,
        }


class SingleSiteAnalyzer:
    """Computes single-datacenter costs for Fig. 6, Table II and filtering."""

    def __init__(
        self,
        params: Optional[FrameworkParameters] = None,
        solver_options: Optional[SolverOptions] = None,
    ) -> None:
        self.params = params or FrameworkParameters()
        self.solver_options = solver_options or SolverOptions()

    @classmethod
    def from_spec(
        cls,
        spec,
        base_params: Optional[FrameworkParameters] = None,
        solver_options: Optional[SolverOptions] = None,
    ) -> "SingleSiteAnalyzer":
        """An analyzer carrying a scenario spec's cost-parameter overrides.

        The per-call arguments of :meth:`cost_at` / :meth:`cost_distribution`
        (capacity, green fraction, sources, storage) come from the same spec;
        the :class:`~repro.scenarios.runner.ExperimentRunner` fills them when
        it executes a ``single_site`` workflow.
        """
        return cls(params=spec.build_params(base_params), solver_options=solver_options)

    def cost_at(
        self,
        profile: LocationProfile,
        capacity_kw: float = 25_000.0,
        min_green_fraction: float = 0.0,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
        solver_context: Optional[HighsSolveContext] = None,
    ) -> SingleSiteCost:
        """Cost of one datacenter of ``capacity_kw`` at ``profile``'s location.

        ``solver_context`` warm-starts HiGHS from the previous pricing LP's
        basis; pass one context per sequential sweep (contexts are not
        thread-safe).
        """
        if capacity_kw <= 0:
            raise ValueError("the datacenter capacity must be positive")
        sources_used = scoring_sources(min_green_fraction, sources)
        params = scoring_parameters(self.params, capacity_kw, min_green_fraction)
        problem = SitingProblem(
            profiles=[profile], params=params, sources=sources_used, storage=storage
        )
        size_class = single_site_size_class(capacity_kw, profile, params)
        result = solve_provisioning(
            problem,
            {profile.name: size_class},
            options=self.solver_options,
            enforce_spread=False,
            solver_context=solver_context,
        )
        configuration = self._configuration_label(min_green_fraction, sources_used)
        return SingleSiteCost(
            profile=profile,
            configuration=configuration,
            monthly_cost=result.monthly_cost,
            feasible=result.feasible,
            result=result,
        )

    def cost_distribution(
        self,
        profiles: Sequence[LocationProfile],
        capacity_kw: float = 25_000.0,
        min_green_fraction: float = 0.0,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
        workers: Optional[int] = None,
        executor: str = "thread",
    ) -> List[SingleSiteCost]:
        """Single-site costs for many locations (the Fig. 6 distribution).

        ``workers`` > 1 prices location chunks on a thread pool (or, with
        ``executor="process"``, a process pool — the chunks cross the
        pickling boundary of :mod:`repro.parallel.work` and the returned
        costs carry no live LP result, only the numbers).  Each chunk reuses
        its own warm-started HiGHS context, the chunk split depends only on
        ``workers``, and results keep the order of ``profiles`` for every
        executor kind.
        """
        workers = max(1, workers or 1)
        factory = ExecutorFactory(kind=executor, max_workers=workers)
        if factory.effective_kind == "process" and len(profiles) > 1:
            return self._cost_distribution_process(
                list(profiles), capacity_kw, min_green_fraction, sources, storage, factory
            )

        def price_chunk(chunk: Sequence[LocationProfile]) -> List[SingleSiteCost]:
            context = HighsSolveContext() if _HIGHS_DIRECT_AVAILABLE else None
            return [
                self.cost_at(
                    profile, capacity_kw, min_green_fraction, sources, storage,
                    solver_context=context,
                )
                for profile in chunk
            ]

        return priced_in_chunks(list(profiles), price_chunk, num_chunks=workers, workers=workers)

    def _cost_distribution_process(
        self,
        profiles: List[LocationProfile],
        capacity_kw: float,
        min_green_fraction: float,
        sources: EnergySources,
        storage: StorageMode,
        factory: ExecutorFactory,
    ) -> List[SingleSiteCost]:
        """The sweep fanned out over a process pool.

        Mirrors :meth:`cost_at` exactly — same pricing problem, same size
        classes, fresh warm-start context per chunk — so the costs are bit
        for bit those of the thread path; only the returned objects are slim
        (``result`` is ``None``, the LP lives and dies in the worker).
        """
        from repro.core.problem import SitingProblem
        from repro.parallel.work import PricingChunkTask, run_pricing_chunk

        sources_used = scoring_sources(min_green_fraction, sources)
        params = scoring_parameters(self.params, capacity_kw, min_green_fraction)
        configuration = self._configuration_label(min_green_fraction, sources_used)
        chunks = split_chunks(profiles, factory.workers(len(profiles)))
        tasks = [
            PricingChunkTask(
                problem=SitingProblem(
                    profiles=list(chunk),
                    params=params,
                    sources=sources_used,
                    storage=storage,
                ),
                sitings=tuple(
                    (
                        profile.name,
                        single_site_size_class(capacity_kw, profile, params),
                    )
                    for profile in chunk
                ),
                options=self.solver_options,
            )
            for chunk in chunks
        ]
        by_name = {profile.name: profile for profile in profiles}
        costs: List[SingleSiteCost] = []
        with factory.create(len(tasks)) as pool:
            futures = [pool.submit(run_pricing_chunk, task) for task in tasks]
            for future, task in zip(futures, tasks):
                rows = result_with_serial_fallback(future, run_pricing_chunk, task)
                for name, cost, feasible in rows:
                    costs.append(
                        SingleSiteCost(
                            profile=by_name[name],
                            configuration=configuration,
                            monthly_cost=cost,
                            feasible=feasible,
                        )
                    )
        return costs

    @staticmethod
    def _configuration_label(min_green_fraction: float, sources: EnergySources) -> str:
        if min_green_fraction == 0.0 or sources is EnergySources.NONE:
            return "brown"
        return f"{sources.value}-{int(round(100 * min_green_fraction))}%"
