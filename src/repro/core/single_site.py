"""Single-datacenter cost analysis.

Section III-B of the paper explores the per-month cost of building one 25 MW
datacenter at each of the 1373 locations under three configurations — brown
(no renewables), 50 % solar and 50 % wind — producing the CDF of Fig. 6 and
the per-location attributes of Table II.  The same machinery doubles as the
location-filtering score of the heuristic solver (Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.parameters import FrameworkParameters
from repro.core.problem import EnergySources, SitingProblem, StorageMode
from repro.core.provisioning import solve_provisioning
from repro.core.solution import NetworkPlan
from repro.energy.profiles import LocationProfile
from repro.lpsolver import SolverOptions


@dataclass
class SingleSiteCost:
    """Cost and attributes of a single datacenter at one location."""

    profile: LocationProfile
    configuration: str
    monthly_cost: float
    plan: Optional[NetworkPlan]
    feasible: bool

    @property
    def name(self) -> str:
        return self.profile.name

    def table_row(self) -> Dict[str, float]:
        """The Table II attributes for this location."""
        return {
            "location": self.name,
            "configuration": self.configuration,
            "monthly_cost_musd": self.monthly_cost / 1e6,
            "solar_capacity_factor_pct": 100.0 * self.profile.solar_capacity_factor,
            "wind_capacity_factor_pct": 100.0 * self.profile.wind_capacity_factor,
            "max_pue": self.profile.max_pue,
            "electricity_usd_per_mwh": 1000.0 * self.profile.energy_price_per_kwh,
            "land_usd_per_m2": self.profile.land_price_per_m2,
            "distance_power_km": self.profile.distance_power_km,
            "distance_network_km": self.profile.distance_network_km,
        }


class SingleSiteAnalyzer:
    """Computes single-datacenter costs for Fig. 6, Table II and filtering."""

    def __init__(
        self,
        params: Optional[FrameworkParameters] = None,
        solver_options: Optional[SolverOptions] = None,
    ) -> None:
        self.params = params or FrameworkParameters()
        self.solver_options = solver_options or SolverOptions()

    def cost_at(
        self,
        profile: LocationProfile,
        capacity_kw: float = 25_000.0,
        min_green_fraction: float = 0.0,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
    ) -> SingleSiteCost:
        """Cost of one datacenter of ``capacity_kw`` at ``profile``'s location."""
        if capacity_kw <= 0:
            raise ValueError("the datacenter capacity must be positive")
        if min_green_fraction == 0.0:
            sources_used = EnergySources.NONE
        else:
            sources_used = sources
        params = self.params.with_updates(
            total_capacity_kw=capacity_kw,
            min_green_fraction=min_green_fraction,
            min_availability=self.params.datacenter_availability / 2.0,
        )
        problem = SitingProblem(
            profiles=[profile], params=params, sources=sources_used, storage=storage
        )
        total_power = capacity_kw * profile.max_pue
        size_class = "small" if total_power <= params.small_dc_threshold_kw else "large"
        result = solve_provisioning(
            problem, {profile.name: size_class}, options=self.solver_options, enforce_spread=False
        )
        configuration = self._configuration_label(min_green_fraction, sources_used)
        return SingleSiteCost(
            profile=profile,
            configuration=configuration,
            monthly_cost=result.monthly_cost,
            plan=result.plan,
            feasible=result.feasible,
        )

    def cost_distribution(
        self,
        profiles: Sequence[LocationProfile],
        capacity_kw: float = 25_000.0,
        min_green_fraction: float = 0.0,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
    ) -> List[SingleSiteCost]:
        """Single-site costs for many locations (the Fig. 6 distribution)."""
        return [
            self.cost_at(profile, capacity_kw, min_green_fraction, sources, storage)
            for profile in profiles
        ]

    @staticmethod
    def _configuration_label(min_green_fraction: float, sources: EnergySources) -> str:
        if min_green_fraction == 0.0 or sources is EnergySources.NONE:
            return "brown"
        return f"{sources.value}-{int(round(100 * min_green_fraction))}%"
