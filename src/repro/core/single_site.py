"""Single-datacenter cost analysis.

Section III-B of the paper explores the per-month cost of building one 25 MW
datacenter at each of the 1373 locations under three configurations — brown
(no renewables), 50 % solar and 50 % wind — producing the CDF of Fig. 6 and
the per-location attributes of Table II.  The same machinery doubles as the
location-filtering score of the heuristic solver (Section II-C).

The pricing LPs of a sweep are structurally identical (same epoch grid, same
scenario switches, one site), so sweeps accept a shared
:class:`~repro.lpsolver.HighsSolveContext` whose basis carry-over roughly
halves the per-location solve time, and :meth:`SingleSiteAnalyzer.cost_distribution`
can fan chunks out over a thread pool (``workers=...``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.parameters import FrameworkParameters
from repro.core.problem import EnergySources, GreenEnforcement, SitingProblem, StorageMode
from repro.core.provisioning import ProvisioningResult, solve_provisioning
from repro.core.solution import NetworkPlan
from repro.energy.profiles import LocationProfile
from repro.lpsolver import SolverOptions
from repro.lpsolver.highs_backend import AVAILABLE as _HIGHS_DIRECT_AVAILABLE
from repro.lpsolver.highs_backend import HighsSolveContext
from repro.parallel.executors import ExecutorFactory, result_with_serial_fallback


def scoring_parameters(
    params: FrameworkParameters, capacity_kw: float, min_green_fraction: float
) -> FrameworkParameters:
    """The single-datacenter pricing configuration (shared with the filter).

    Availability is halved so a single datacenter is admissible — the score
    of one location must not be forced infeasible by the network-level
    availability constraint.
    """
    return params.with_updates(
        total_capacity_kw=capacity_kw,
        min_green_fraction=min_green_fraction,
        min_availability=params.datacenter_availability / 2.0,
    )


def scoring_sources(min_green_fraction: float, sources: EnergySources) -> EnergySources:
    """No renewables are built (or allowed) when no green share is required."""
    return EnergySources.NONE if min_green_fraction == 0.0 else sources  # reprolint: ok(FLT001) user-supplied config sentinel, not a solver result


def single_site_size_class(
    capacity_kw: float, profile: LocationProfile, params: FrameworkParameters
) -> str:
    """Construction size class of one datacenter carrying ``capacity_kw``."""
    total_power = capacity_kw * profile.max_pue
    return "small" if total_power <= params.small_dc_threshold_kw else "large"


#: Row budget of one pricing chunk: chunks are sized so the LP rows a single
#: worker holds (one warm-start sequence, or one block-diagonal stack) stay
#: bounded no matter how large the candidate catalogue grows.
PRICING_CHUNK_ROW_CAP = 20_000

#: Floor on the chunk count so mid-size sweeps still spread across workers
#: (the pre-batching filter always used 8 fixed chunks).
MIN_PRICING_CHUNKS = 8


def single_site_row_estimate(problem: SitingProblem) -> int:
    """Constraint rows of one single-site pricing LP of ``problem``.

    Mirrors the row blocks :class:`~repro.core.provisioning.ProvisioningCompiler`
    emits for a one-site siting (small-dc guard, migration, capacity cover,
    power balance, green delivery cap, green allocation, storage dynamics,
    total-capacity coupling and the green requirement row(s)).
    """
    T = problem.num_epochs
    rows = 1 + 5 * T  # small_dc guard + the five always-present epoch blocks
    if problem.storage is StorageMode.BATTERIES:
        rows += 2 * T  # battery dynamics + capacity
    elif problem.storage is StorageMode.NET_METERING:
        rows += T  # net-metering bank dynamics
    rows += T  # total-capacity coupling rows
    if problem.params.min_green_fraction > 0:
        rows += T if problem.green_enforcement is GreenEnforcement.PER_EPOCH else 1
    return rows


def pricing_chunk_count(
    num_items: int,
    rows_per_item: int,
    min_chunks: int = MIN_PRICING_CHUNKS,
    row_cap: int = PRICING_CHUNK_ROW_CAP,
) -> int:
    """Size-aware chunk count for a pricing sweep of ``num_items`` LPs.

    Chunks are capped at ``row_cap`` LP rows each so very large catalogues
    never ship thousands of sites to one worker, with at least ``min_chunks``
    chunks for worker spread.  The count depends only on the sweep size —
    never on the executor kind or worker count — which keeps per-chunk
    pricing sequences (and therefore scores, bit for bit) identical across
    serial, thread and process execution.
    """
    if num_items <= 0:
        return 1
    total_rows = num_items * max(1, rows_per_item)
    by_row_cap = -(-total_rows // max(1, row_cap))
    return min(num_items, max(min_chunks, int(by_row_cap)))


def split_chunks(items, num_chunks: int) -> list:
    """``items`` split into at most ``num_chunks`` contiguous chunks.

    The split depends only on ``num_chunks`` — never on how many workers end
    up executing the chunks — which is what keeps per-chunk warm-start
    sequences (and therefore pricing scores, bit for bit) independent of the
    executor kind and worker count.
    """
    if not items:
        return []
    num_chunks = max(1, min(num_chunks, len(items)))
    chunk_size = -(-len(items) // num_chunks)
    return [list(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]


def priced_in_chunks(items, price_chunk, num_chunks: int, workers: int) -> list:
    """Price ``items`` in contiguous chunks, optionally on a thread pool.

    ``price_chunk`` maps a list of items to a list of results (creating its
    own warm-start solver context per chunk); the per-chunk results are
    concatenated in chunk order, which preserves the original item order by
    construction.  The chunk split comes from :func:`split_chunks`, so scores
    are identical no matter how many threads execute them.
    """
    chunks = split_chunks(items, num_chunks)
    if not chunks:
        return []
    if workers <= 1 or len(chunks) == 1:
        return [result for chunk in chunks for result in price_chunk(chunk)]
    with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as executor:
        return [result for chunk_results in executor.map(price_chunk, chunks) for result in chunk_results]


@dataclass
class SingleSiteCost:
    """Cost and attributes of a single datacenter at one location.

    ``plan`` defers to the underlying provisioning result, so sweeps that
    only rank costs (the heuristic's location filter, the Fig. 6 CDF) never
    pay plan-extraction costs.
    """

    profile: LocationProfile
    configuration: str
    monthly_cost: float
    feasible: bool
    result: Optional[ProvisioningResult] = field(default=None, repr=False)

    @property
    def plan(self) -> Optional[NetworkPlan]:
        return self.result.plan if self.result is not None else None

    @property
    def name(self) -> str:
        return self.profile.name

    def table_row(self) -> Dict[str, float]:
        """The Table II attributes for this location."""
        return {
            "location": self.name,
            "configuration": self.configuration,
            "monthly_cost_musd": self.monthly_cost / 1e6,
            "solar_capacity_factor_pct": 100.0 * self.profile.solar_capacity_factor,
            "wind_capacity_factor_pct": 100.0 * self.profile.wind_capacity_factor,
            "max_pue": self.profile.max_pue,
            "electricity_usd_per_mwh": 1000.0 * self.profile.energy_price_per_kwh,
            "land_usd_per_m2": self.profile.land_price_per_m2,
            "distance_power_km": self.profile.distance_power_km,
            "distance_network_km": self.profile.distance_network_km,
        }


class SingleSiteAnalyzer:
    """Computes single-datacenter costs for Fig. 6, Table II and filtering."""

    def __init__(
        self,
        params: Optional[FrameworkParameters] = None,
        solver_options: Optional[SolverOptions] = None,
    ) -> None:
        self.params = params or FrameworkParameters()
        self.solver_options = solver_options or SolverOptions()

    @classmethod
    def from_spec(
        cls,
        spec,
        base_params: Optional[FrameworkParameters] = None,
        solver_options: Optional[SolverOptions] = None,
    ) -> "SingleSiteAnalyzer":
        """An analyzer carrying a scenario spec's cost-parameter overrides.

        The per-call arguments of :meth:`cost_at` / :meth:`cost_distribution`
        (capacity, green fraction, sources, storage) come from the same spec;
        the :class:`~repro.scenarios.runner.ExperimentRunner` fills them when
        it executes a ``single_site`` workflow.
        """
        return cls(params=spec.build_params(base_params), solver_options=solver_options)

    def cost_at(
        self,
        profile: LocationProfile,
        capacity_kw: float = 25_000.0,
        min_green_fraction: float = 0.0,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
        solver_context: Optional[HighsSolveContext] = None,
    ) -> SingleSiteCost:
        """Cost of one datacenter of ``capacity_kw`` at ``profile``'s location.

        ``solver_context`` warm-starts HiGHS from the previous pricing LP's
        basis; pass one context per sequential sweep (contexts are not
        thread-safe).
        """
        if capacity_kw <= 0:
            raise ValueError("the datacenter capacity must be positive")
        sources_used = scoring_sources(min_green_fraction, sources)
        params = scoring_parameters(self.params, capacity_kw, min_green_fraction)
        problem = SitingProblem(
            profiles=[profile], params=params, sources=sources_used, storage=storage
        )
        size_class = single_site_size_class(capacity_kw, profile, params)
        result = solve_provisioning(
            problem,
            {profile.name: size_class},
            options=self.solver_options,
            enforce_spread=False,
            solver_context=solver_context,
        )
        configuration = self._configuration_label(min_green_fraction, sources_used)
        return SingleSiteCost(
            profile=profile,
            configuration=configuration,
            monthly_cost=result.monthly_cost,
            feasible=result.feasible,
            result=result,
        )

    def cost_distribution(
        self,
        profiles: Sequence[LocationProfile],
        capacity_kw: float = 25_000.0,
        min_green_fraction: float = 0.0,
        sources: EnergySources = EnergySources.SOLAR_AND_WIND,
        storage: StorageMode = StorageMode.NET_METERING,
        workers: Optional[int] = None,
        executor: str = "thread",
        batch: Optional[bool] = None,
        screen_top_k: Optional[int] = None,
    ) -> List[SingleSiteCost]:
        """Single-site costs for many locations (the Fig. 6 distribution).

        ``workers`` > 1 prices location chunks on a thread pool (or, with
        ``executor="process"``, a process pool — the chunks cross the
        pickling boundary of :mod:`repro.parallel.work` and the returned
        costs carry no live LP result, only the numbers).  Chunk splits
        depend only on the sweep size, and results keep the order of
        ``profiles`` for every executor kind.

        ``batch`` prices each chunk as one block-diagonal mega-LP
        (:func:`~repro.core.screening.price_batch`) instead of per-site
        warm-started solves; ``None`` auto-enables it whenever the direct
        HiGHS backend is available.  Batched costs are slim (``result`` is
        ``None``); use :meth:`cost_at` when a plan is needed.

        ``screen_top_k`` returns only the ``k`` cheapest feasible locations,
        in ascending cost order, using the vectorized admissible screen of
        :func:`~repro.core.screening.screen_lower_bounds` to avoid pricing
        candidates that provably cannot make the top ``k`` — the selection
        is exact, only the work is reduced.
        """
        workers = max(1, workers or 1)
        factory = ExecutorFactory(kind=executor, max_workers=workers)
        profiles = list(profiles)
        use_batch = (
            batch
            if batch is not None
            else (
                _HIGHS_DIRECT_AVAILABLE
                and len(profiles) > 1
                and self.solver_options.backend in ("auto", "highs-direct")
            )
        )
        if screen_top_k is not None:
            if screen_top_k < 1:
                raise ValueError("screen_top_k must be at least 1")
            return self._cost_distribution_top_k(
                profiles, capacity_kw, min_green_fraction, sources, storage,
                factory, use_batch, screen_top_k,
            )
        if use_batch and len(profiles) > 1:
            return self._cost_distribution_batch(
                profiles, capacity_kw, min_green_fraction, sources, storage, factory
            )
        if factory.effective_kind == "process" and len(profiles) > 1:
            return self._cost_distribution_process(
                profiles, capacity_kw, min_green_fraction, sources, storage, factory
            )

        def price_chunk(chunk: Sequence[LocationProfile]) -> List[SingleSiteCost]:
            context = HighsSolveContext() if _HIGHS_DIRECT_AVAILABLE else None
            return [
                self.cost_at(
                    profile, capacity_kw, min_green_fraction, sources, storage,
                    solver_context=context,
                )
                for profile in chunk
            ]

        return priced_in_chunks(profiles, price_chunk, num_chunks=workers, workers=workers)

    # -- two-stage machinery -------------------------------------------------------
    def _pricing_problem(
        self,
        profiles: List[LocationProfile],
        capacity_kw: float,
        min_green_fraction: float,
        sources: EnergySources,
        storage: StorageMode,
    ) -> Tuple[SitingProblem, List[Tuple[str, str]]]:
        """The shared pricing problem plus per-location ``(name, class)`` pairs."""
        sources_used = scoring_sources(min_green_fraction, sources)
        params = scoring_parameters(self.params, capacity_kw, min_green_fraction)
        problem = SitingProblem(
            profiles=profiles, params=params, sources=sources_used, storage=storage
        )
        sitings = [
            (profile.name, single_site_size_class(capacity_kw, profile, params))
            for profile in profiles
        ]
        return problem, sitings

    def _price_rows(
        self,
        problem: SitingProblem,
        sitings: List[Tuple[str, str]],
        factory: ExecutorFactory,
        use_batch: bool,
        compiler=None,
    ) -> List[Tuple[str, float, bool]]:
        """Price ``sitings`` in size-capped chunks on the configured executor.

        The chunk split depends only on the sweep size (never the executor or
        worker count) and results come back in ``sitings`` order, so costs
        are bit-identical across serial, thread and process execution.
        """
        from repro.core.screening import price_batch, price_per_site

        num_chunks = pricing_chunk_count(len(sitings), single_site_row_estimate(problem))
        chunks = split_chunks(sitings, num_chunks)
        if factory.effective_kind == "process" and len(chunks) > 1:
            from repro.parallel.work import BatchPricingTask, run_batch_pricing_chunk

            tasks = [
                BatchPricingTask(
                    problem=problem.restricted_to([name for name, _ in chunk]),
                    sitings=tuple(chunk),
                    options=self.solver_options,
                    batch=use_batch,
                )
                for chunk in chunks
            ]
            rows: List[Tuple[str, float, bool]] = []
            with factory.create(len(tasks)) as pool:
                futures = [pool.submit(run_batch_pricing_chunk, task) for task in tasks]
                for future, task in zip(futures, tasks):
                    rows.extend(
                        result_with_serial_fallback(future, run_batch_pricing_chunk, task)
                    )
            return rows

        from repro.core.provisioning import ProvisioningCompiler

        shared_compiler = compiler or ProvisioningCompiler(problem)

        def run_chunk(chunk: List[Tuple[str, str]]) -> List[Tuple[str, float, bool]]:
            if use_batch:
                return price_batch(
                    problem, chunk, self.solver_options, compiler=shared_compiler
                )
            return price_per_site(
                problem, chunk, self.solver_options, compiler=shared_compiler
            )

        return priced_in_chunks(
            sitings, run_chunk, num_chunks=num_chunks, workers=factory.workers(num_chunks)
        )

    def _cost_distribution_batch(
        self,
        profiles: List[LocationProfile],
        capacity_kw: float,
        min_green_fraction: float,
        sources: EnergySources,
        storage: StorageMode,
        factory: ExecutorFactory,
    ) -> List[SingleSiteCost]:
        """The sweep priced through block-diagonal chunk solves (slim results)."""
        problem, sitings = self._pricing_problem(
            profiles, capacity_kw, min_green_fraction, sources, storage
        )
        configuration = self._configuration_label(min_green_fraction, problem.sources)
        rows = self._price_rows(problem, sitings, factory, use_batch=True)
        by_name = {profile.name: profile for profile in profiles}
        return [
            SingleSiteCost(
                profile=by_name[name],
                configuration=configuration,
                monthly_cost=cost,
                feasible=feasible,
            )
            for name, cost, feasible in rows
        ]

    def _cost_distribution_top_k(
        self,
        profiles: List[LocationProfile],
        capacity_kw: float,
        min_green_fraction: float,
        sources: EnergySources,
        storage: StorageMode,
        factory: ExecutorFactory,
        use_batch: bool,
        top_k: int,
    ) -> List[SingleSiteCost]:
        """Exact top-k of the cost distribution with screened pricing.

        Candidates are priced in ascending order of their admissible lower
        bound; once ``top_k`` feasible costs are known, any candidate whose
        bound exceeds the current k-th cheapest cost provably cannot enter
        the top k and is never priced.
        """
        from repro.core.screening import screen_lower_bounds

        problem, sitings = self._pricing_problem(
            profiles, capacity_kw, min_green_fraction, sources, storage
        )
        configuration = self._configuration_label(min_green_fraction, problem.sources)
        screen = screen_lower_bounds(problem, dict(sitings))
        bounds = screen.lower_bounds
        pending = [int(i) for i in screen.order if not screen.certified_infeasible[i]]
        feasible_rows: List[Tuple[str, float, bool]] = []
        round_size = max(2 * top_k, 32)
        while pending:
            take, pending = pending[:round_size], pending[round_size:]
            rows = self._price_rows(
                problem, [sitings[i] for i in take], factory, use_batch
            )
            feasible_rows.extend(row for row in rows if row[2])
            if pending:
                costs = sorted(cost for _, cost, _ in feasible_rows)
                if len(costs) >= top_k:
                    cut = costs[top_k - 1]
                    pending = [i for i in pending if bounds[i] <= cut]
            round_size *= 2
        feasible_rows.sort(key=lambda row: (row[1], row[0]))
        by_name = {profile.name: profile for profile in profiles}
        return [
            SingleSiteCost(
                profile=by_name[name],
                configuration=configuration,
                monthly_cost=cost,
                feasible=True,
            )
            for name, cost, _ in feasible_rows[:top_k]
        ]

    def _cost_distribution_process(
        self,
        profiles: List[LocationProfile],
        capacity_kw: float,
        min_green_fraction: float,
        sources: EnergySources,
        storage: StorageMode,
        factory: ExecutorFactory,
    ) -> List[SingleSiteCost]:
        """The sweep fanned out over a process pool.

        Mirrors :meth:`cost_at` exactly — same pricing problem, same size
        classes, fresh warm-start context per chunk — so the costs are bit
        for bit those of the thread path; only the returned objects are slim
        (``result`` is ``None``, the LP lives and dies in the worker).
        """
        from repro.core.problem import SitingProblem
        from repro.parallel.work import PricingChunkTask, run_pricing_chunk

        sources_used = scoring_sources(min_green_fraction, sources)
        params = scoring_parameters(self.params, capacity_kw, min_green_fraction)
        configuration = self._configuration_label(min_green_fraction, sources_used)
        chunks = split_chunks(profiles, factory.workers(len(profiles)))
        tasks = [
            PricingChunkTask(
                problem=SitingProblem(
                    profiles=list(chunk),
                    params=params,
                    sources=sources_used,
                    storage=storage,
                ),
                sitings=tuple(
                    (
                        profile.name,
                        single_site_size_class(capacity_kw, profile, params),
                    )
                    for profile in chunk
                ),
                options=self.solver_options,
            )
            for chunk in chunks
        ]
        by_name = {profile.name: profile for profile in profiles}
        costs: List[SingleSiteCost] = []
        with factory.create(len(tasks)) as pool:
            futures = [pool.submit(run_pricing_chunk, task) for task in tasks]
            for future, task in zip(futures, tasks):
                rows = result_with_serial_fallback(future, run_pricing_chunk, task)
                for name, cost, feasible in rows:
                    costs.append(
                        SingleSiteCost(
                            profile=by_name[name],
                            configuration=configuration,
                            monthly_cost=cost,
                            feasible=feasible,
                        )
                    )
        return costs

    @staticmethod
    def _configuration_label(min_green_fraction: float, sources: EnergySources) -> str:
        if min_green_fraction == 0.0 or sources is EnergySources.NONE:  # reprolint: ok(FLT001) config sentinel, not a solver result
            return "brown"
        return f"{sources.value}-{int(round(100 * min_green_fraction))}%"
