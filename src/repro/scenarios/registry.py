"""Registry of the paper's named scenarios.

Every figure and table of the evaluation is registered here as a
:class:`~repro.scenarios.runner.ParameterSweep` over a
:class:`~repro.scenarios.spec.ScenarioSpec`, under the name the paper uses
(``fig06``, ``table2``, ``sec4b``, ...).  ``python -m repro.cli sweep
--scenario fig06`` reproduces a figure end-to-end, and the benchmark harness
under ``benchmarks/`` runs the same sweeps through one shared
:class:`~repro.scenarios.runner.ExperimentRunner`.

The registered configurations are the benchmark-scale ones (a ~90-location
catalogue, four representative days at 3-hour resolution, short annealing
schedules), not the paper's full 1373-location, hourly setup — the *shape* of
every result is what is reproduced.  Scaling a scenario up is a config diff::

    get_scenario("fig08").build().base.with_updates(num_locations=1373)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.scenarios.runner import ParameterSweep
from repro.scenarios.spec import ScenarioSpec

#: Green-energy percentages on the x-axis of Figs. 8-12.
GREEN_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Migration-factor x-axis of the Fig. 13 sensitivity study.
MIGRATION_FACTORS = (0.0, 0.5, 1.0)

#: The three source-mix curves of Figs. 8-13, in plotting order.
SOURCE_VALUES = ("wind", "solar", "solar+wind")

#: Curve labels used by the analysis layer for each ``sources`` value.
SOURCE_LABELS = {"wind": "wind", "solar": "solar", "solar+wind": "wind_and_or_solar"}

#: Heuristic settings shared by the benchmark-scale scenarios.
BENCH_SEARCH = {
    "keep_locations": 10,
    "max_iterations": 18,
    "patience": 10,
    "num_chains": 2,
    "seed": 2014,
    "max_datacenters": 5,
}

#: The locations Table II highlights, with the configuration they illustrate.
TABLE2_CONFIGURATIONS = (
    ("Kiev, Ukraine", "brown", 0.0),
    ("Harare, Zimbabwe", "solar", 0.5),
    ("Nairobi, Kenya", "solar", 0.5),
    ("Mount Washington, NH, USA", "wind", 0.5),
    ("Burke Lakefront, OH, USA", "wind", 0.5),
)


def source_label(sources_value: str) -> str:
    """Analysis-layer curve label for a spec ``sources`` value."""
    return SOURCE_LABELS.get(sources_value, sources_value)


def bench_base(**overrides: Any) -> ScenarioSpec:
    """The benchmark-harness base scenario (50 MW service, 90 locations)."""
    spec = ScenarioSpec(
        num_locations=90,
        catalog_seed=2014,
        days_per_season=1,
        hours_per_epoch=3,
        total_capacity_kw=50_000.0,
        search=dict(BENCH_SEARCH),
    )
    return spec.with_updates(**overrides) if overrides else spec


@dataclass(frozen=True)
class ScenarioDefinition:
    """A named, registered scenario."""

    name: str
    description: str
    build: Callable[[], ParameterSweep]


_REGISTRY: Dict[str, ScenarioDefinition] = {}


def register_scenario(name: str, description: str, build: Callable[[], ParameterSweep]) -> None:
    """Register (or replace) a named scenario."""
    _REGISTRY[name] = ScenarioDefinition(name=name, description=description, build=build)


def get_scenario(name: str) -> ScenarioDefinition:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; registered scenarios: {known}") from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def build_sweep(name: str) -> ParameterSweep:
    """The parameter sweep of a registered scenario."""
    return get_scenario(name).build()


# -- figure and table scenarios ------------------------------------------------


def _fig06() -> ParameterSweep:
    base = bench_base(
        name="fig06",
        workflow="single_site",
        total_capacity_kw=25_000.0,
        storage="net_metering",
    )
    return ParameterSweep(
        base=base,
        axes={
            "min_green_fraction": (0.0, 0.5, 0.5),
            "sources": ("brown", "solar", "wind"),
        },
        mode="zip",
        name="fig06",
    )


def _cost_vs_green(name: str, storage: str) -> ParameterSweep:
    base = bench_base(name=name, storage=storage)
    return ParameterSweep(
        base=base,
        axes={"sources": SOURCE_VALUES, "min_green_fraction": GREEN_FRACTIONS},
        mode="cartesian",
        name=name,
    )


def _fig07() -> ParameterSweep:
    base = bench_base(name="fig07", storage="net_metering")
    return ParameterSweep(
        base=base, axes={"min_green_fraction": (0.5, 0.0)}, name="fig07"
    )


def _fig13() -> ParameterSweep:
    base = bench_base(name="fig13", storage="none", min_green_fraction=1.0)
    return ParameterSweep(
        base=base,
        axes={"sources": SOURCE_VALUES, "migration_factor": MIGRATION_FACTORS},
        mode="cartesian",
        name="fig13",
    )


def _sec4b() -> ParameterSweep:
    base = bench_base(name="sec4b", storage="net_metering", min_green_fraction=1.0)
    return ParameterSweep(
        base=base, axes={"net_meter_credit": (1.0, 0.5, 0.0)}, name="sec4b"
    )


def _sec3d() -> ParameterSweep:
    """The Section III-D solver-scaling point, with the PR-3 search settings.

    Mirrors ``benchmarks/bench_sec3d_solver_scaling.py`` at the 60-candidate
    scale: the filter and annealing chains run on a 4x coarser epoch grid
    (``coarse_epoch_factor``) and the winning siting is re-solved on
    adaptively refined grids until the objective converges to the fine
    3-hour grid.
    """
    base = ScenarioSpec(
        name="sec3d",
        workflow="plan",
        num_locations=60,
        catalog_seed=2014,
        days_per_season=1,
        hours_per_epoch=3,
        total_capacity_kw=50_000.0,
        min_green_fraction=0.5,
        storage="net_metering",
        search={
            "keep_locations": 10,
            "max_iterations": 15,
            "patience": 8,
            "num_chains": 1,
            "seed": 1,
            "coarse_epoch_factor": 4,
        },
    )
    return ParameterSweep(base=base, name="sec3d")


def _table2() -> ParameterSweep:
    names, kinds, fractions, sources = [], [], [], []
    for location, kind, fraction in TABLE2_CONFIGURATIONS:
        names.append((location,))
        kinds.append(kind)
        fractions.append(fraction)
        sources.append("brown" if kind == "brown" else kind)
    base = bench_base(
        name="table2",
        workflow="single_site",
        total_capacity_kw=25_000.0,
        storage="net_metering",
    )
    return ParameterSweep(
        base=base,
        axes={
            "candidate_names": tuple(names),
            "min_green_fraction": tuple(fractions),
            "sources": tuple(sources),
        },
        mode="zip",
        name="table2",
    )


def _table3() -> ParameterSweep:
    base = bench_base(name="table3", storage="none", min_green_fraction=1.0)
    return ParameterSweep(base=base, name="table3")


def _fig15() -> ParameterSweep:
    base = ScenarioSpec(
        name="fig15",
        workflow="emulate",
        num_locations=30,
        catalog_seed=2014,
        days_per_season=1,
        hours_per_epoch=1,
        emulation={"seed": 2014},
    )
    return ParameterSweep(base=base, name="fig15")


def _sec5b() -> ParameterSweep:
    base = ScenarioSpec(
        name="sec5b",
        workflow="emulate",
        num_locations=20,
        catalog_seed=2014,
        days_per_season=1,
        hours_per_epoch=1,
        emulation={"seed": 7, "wind_factor": 0.3, "initial_datacenter": "Harare, Zimbabwe"},
    )
    return ParameterSweep(base=base, name="sec5b")


def _sec5c() -> ParameterSweep:
    base = ScenarioSpec(
        name="sec5c",
        workflow="emulate",
        num_locations=20,
        catalog_seed=2014,
        days_per_season=1,
        hours_per_epoch=1,
        emulation={"seed": 2014},
    )
    return ParameterSweep(base=base, axes={"emulation.num_vms": (9, 18)}, name="sec5c")


# -- online-operations scenarios -----------------------------------------------


def _operate_base(**overrides: Any) -> ScenarioSpec:
    """Base operate scenario: the fig06-scale 50 MW / 50 % green network.

    The plan stage reuses the benchmark search settings; the operating week
    replays it hour by hour with persistence energy forecasts and a
    seasonal-naive load forecast against the oracle baseline.
    """
    spec = bench_base(
        name="operate",
        workflow="operate",
        storage="net_metering",
        min_green_fraction=0.5,
    )
    return spec.with_updates(**overrides) if overrides else spec


def _operate_fig06() -> ParameterSweep:
    base = _operate_base(
        name="operate-fig06",
        operate={"steps": 168, "horizon_hours": 24},
    )
    return ParameterSweep(base=base, name="operate-fig06")


def _operate_forecast() -> ParameterSweep:
    """Forecast-error sensitivity: noisy-oracle forecasts at growing error."""
    base = _operate_base(
        name="operate-forecast",
        operate={
            "steps": 72,
            "horizon_hours": 24,
            "energy_forecast": "noisy-oracle",
            "load_forecast": "noisy-oracle",
        },
    )
    return ParameterSweep(
        base=base,
        axes={"operate.forecast_error": (0.0, 0.1, 0.3)},
        name="operate-forecast",
    )


def _operate_policy() -> ParameterSweep:
    """Forecaster-policy comparison at a fixed trace."""
    base = _operate_base(
        name="operate-policy",
        operate={"steps": 72, "horizon_hours": 24, "forecast_error": 0.2},
    )
    return ParameterSweep(
        base=base,
        axes={
            "operate.load_forecast": ("persistence", "seasonal-naive", "noisy-oracle"),
            "operate.energy_forecast": ("persistence", "seasonal-naive", "noisy-oracle"),
        },
        mode="zip",
        name="operate-policy",
    )


def _operate_smoke() -> ParameterSweep:
    """Tiny rolling-horizon replay for CI (two points, shared plan stage)."""
    base = ScenarioSpec(
        name="operate-smoke",
        workflow="operate",
        num_locations=16,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        min_green_fraction=0.5,
        search={
            "keep_locations": 5,
            "max_iterations": 4,
            "patience": 4,
            "num_chains": 1,
            "seed": 3,
            "max_datacenters": 3,
        },
        operate={
            "steps": 24,
            "horizon_hours": 8,
            "energy_forecast": "noisy-oracle",
            "load_forecast": "noisy-oracle",
        },
    )
    return ParameterSweep(
        base=base, axes={"operate.forecast_error": (0.0, 0.25)}, name="operate-smoke"
    )


# -- robustness scenarios ------------------------------------------------------


def _robust_fig06() -> ParameterSweep:
    """Stress the operate-fig06 week: ensemble planning plus injected faults.

    The replayed week loses site 0 for half a day, flies blind (persistence
    fallback) for another half day, and absorbs two injected solver failures
    (each forcing the retry -> cold-rebuild ladder); the provisioned plan is
    additionally scored against an 8-draw weather/demand ensemble with the
    joint stochastic sizing as the comparison point.
    """
    base = _operate_base(
        name="robust-fig06",
        operate={"steps": 168, "horizon_hours": 24},
        ensemble={"draws": 8, "mode": "stochastic"},
        faults={
            "site_outages": [{"site": 0, "start_step": 24, "duration_steps": 12}],
            "forecast_blackouts": [{"start_step": 48, "duration_steps": 12}],
            "solver_faults": [30, 60],
        },
    )
    return ParameterSweep(base=base, name="robust-fig06")


def _robust_saa() -> ParameterSweep:
    """Ensemble regret of the planning workflow itself (no replay, SAA only)."""
    base = bench_base(
        name="robust-saa",
        storage="net_metering",
        min_green_fraction=0.5,
        ensemble={"draws": 8, "mode": "saa"},
    )
    return ParameterSweep(base=base, name="robust-saa")


def _robust_smoke() -> ParameterSweep:
    """Tiny ensemble + faulted replay for CI (one point, minutes-scale)."""
    base = ScenarioSpec(
        name="robust-smoke",
        workflow="operate",
        num_locations=16,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        min_green_fraction=0.5,
        search={
            "keep_locations": 5,
            "max_iterations": 4,
            "patience": 4,
            "num_chains": 1,
            "seed": 3,
            "max_datacenters": 3,
        },
        operate={
            "steps": 24,
            "horizon_hours": 8,
            "energy_forecast": "noisy-oracle",
            "load_forecast": "noisy-oracle",
            "forecast_error": 0.25,
        },
        ensemble={"draws": 3, "mode": "stochastic"},
        faults={
            "site_outages": [{"site": 0, "start_step": 6, "duration_steps": 4}],
            "forecast_blackouts": [{"start_step": 12, "duration_steps": 4}],
            "solver_faults": [8],
        },
    )
    return ParameterSweep(base=base, name="robust-smoke")


def _contingency_fig06() -> ParameterSweep:
    """N-1 survivable sizing of the 50 MW / 50 % green case-study plan.

    The planner-level contingency report compares the deterministic sizing
    against the joint N-1 LP: cost premium vs worst-case unserved energy
    under every single-site outage, plus the per-site criticality ranking.
    """
    base = bench_base(
        name="contingency-fig06",
        storage="net_metering",
        min_green_fraction=0.5,
        contingency={"survivability_epsilon": 0.05},
    )
    return ParameterSweep(base=base, name="contingency-fig06")


def _failover_smoke() -> ParameterSweep:
    """Tiny N-1 + failover replay for CI (one point, minutes-scale).

    The operate record carries the contingency report *and* the replay-level
    survivability study (both sizings operated through every single-site
    outage), and the stress replay runs through a permanent solver outage so
    the greedy fallback dispatcher must commit degraded steps.
    """
    base = ScenarioSpec(
        name="failover-smoke",
        workflow="operate",
        num_locations=16,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        min_green_fraction=0.5,
        search={
            "keep_locations": 5,
            "max_iterations": 4,
            "patience": 4,
            "num_chains": 1,
            "seed": 3,
            "max_datacenters": 3,
        },
        operate={
            "steps": 24,
            "horizon_hours": 8,
            "energy_forecast": "noisy-oracle",
            "load_forecast": "noisy-oracle",
            "forecast_error": 0.25,
            "shed_tiers": [[0.6, 20.0], [0.4, 5.0]],
        },
        contingency={
            "survivability_epsilon": 0.02,
            "outage_start_step": 6,
            "outage_duration_steps": 12,
        },
        faults={
            "site_outages": [{"site": 0, "start_step": 6, "duration_steps": 4}],
            "solver_outages": [{"start_step": 10, "duration_steps": 3}],
        },
    )
    return ParameterSweep(base=base, name="failover-smoke")


def _smoke() -> ParameterSweep:
    base = ScenarioSpec(
        name="smoke",
        num_locations=16,
        catalog_seed=3,
        days_per_season=1,
        hours_per_epoch=6,
        total_capacity_kw=20_000.0,
        search={
            "keep_locations": 5,
            "max_iterations": 4,
            "patience": 4,
            "num_chains": 1,
            "seed": 3,
            "max_datacenters": 3,
        },
    )
    return ParameterSweep(base=base, axes={"min_green_fraction": (0.0, 0.5)}, name="smoke")


register_scenario("fig06", "CDF of single 25 MW datacenter costs: brown vs 50 % solar vs 50 % wind", _fig06)
register_scenario("fig07", "50 MW / 50 % green case study and its brown baseline", _fig07)
register_scenario("fig08", "cost vs green percentage, net metering", lambda: _cost_vs_green("fig08", "net_metering"))
register_scenario("fig09", "cost vs green percentage, batteries", lambda: _cost_vs_green("fig09", "batteries"))
register_scenario("fig10", "cost vs green percentage, no storage", lambda: _cost_vs_green("fig10", "none"))
register_scenario("fig11", "provisioned capacity vs green percentage, net metering (Fig. 8 sweep)", lambda: _cost_vs_green("fig11", "net_metering"))
register_scenario("fig12", "provisioned capacity vs green percentage, no storage (Fig. 10 sweep)", lambda: _cost_vs_green("fig12", "none"))
register_scenario("fig13", "100 % green / no-storage cost vs migration overhead", _fig13)
register_scenario("fig15", "GreenNebula follow-the-renewables emulation over one day", _fig15)
register_scenario("sec3d", "solver-scaling point: 60 candidates, adaptive epoch grid", _sec3d)
register_scenario("sec4b", "100 % green network cost vs net-metering credit", _sec4b)
register_scenario("sec5b", "live-migration validation: state sizes and WAN transfer times", _sec5b)
register_scenario("sec5c", "scheduler timing across emulated fleet sizes", _sec5c)
register_scenario("table2", "attributes of good brown / solar / wind locations", _table2)
register_scenario("table3", "the 100 % green / no-storage network", _table3)
register_scenario("smoke", "tiny end-to-end siting sweep for CI smoke runs", _smoke)
register_scenario("operate-fig06", "week-long rolling-horizon replay of the 50 MW / 50 % green plan", _operate_fig06)
register_scenario("operate-forecast", "operating regret vs forecast error (noisy-oracle sweep)", _operate_forecast)
register_scenario("operate-policy", "operating regret across forecaster policies", _operate_policy)
register_scenario("operate-smoke", "tiny rolling-horizon replay for CI smoke runs", _operate_smoke)
register_scenario("robust-fig06", "ensemble-scored, fault-injected replay of the 50 MW / 50 % green week", _robust_fig06)
register_scenario("robust-saa", "planning-workflow ensemble regret (8-draw SAA, no replay)", _robust_saa)
register_scenario("robust-smoke", "tiny ensemble + faulted replay for CI smoke runs", _robust_smoke)
register_scenario("contingency-fig06", "N-1 survivable sizing vs the deterministic 50 MW / 50 % green plan", _contingency_fig06)
register_scenario("failover-smoke", "tiny N-1 survivability + solver-outage failover replay for CI", _failover_smoke)
