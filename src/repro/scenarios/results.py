"""Tidy result containers for scenario sweeps.

A sweep produces one :class:`PointResult` per sweep point: the resolved
:class:`~repro.scenarios.spec.ScenarioSpec`, the axis overrides that produced
it, and a plain-dictionary ``record`` of everything the workflow measured.
Records are JSON-serializable by construction — they are what the runner's
artifact cache stores on disk — while the in-memory ``solution`` attribute
additionally keeps the live object (a
:class:`~repro.core.heuristic.HeuristicSolution`, a list of
:class:`~repro.core.single_site.SingleSiteCost`, or an
:class:`~repro.greennebula.emulation.EmulatedCloud`) for callers that need
more than the record, such as the benchmark harness.

:class:`ResultSet` is the tidy per-point table: ``rows()`` feeds
:func:`repro.analysis.reporting.format_table` directly, and ``series()``
pivots a record field over an override axis for figure-style output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.scenarios.spec import ScenarioSpec


@dataclass
class PointResult:
    """Outcome of one sweep point."""

    spec: ScenarioSpec
    overrides: Dict[str, Any] = field(default_factory=dict)
    record: Dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False
    #: Live workflow object; ``None`` when the point was served from the
    #: on-disk artifact cache (records carry everything serializable).
    solution: Optional[Any] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "overrides": dict(self.overrides),
            "record": self.record,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PointResult":
        return cls(
            spec=ScenarioSpec.from_dict(payload["spec"]),
            overrides=dict(payload.get("overrides", {})),
            record=dict(payload.get("record", {})),
            from_cache=bool(payload.get("from_cache", False)),
        )


class ResultSet:
    """Ordered collection of sweep-point results."""

    def __init__(self, points: Optional[Sequence[PointResult]] = None) -> None:
        self.points: List[PointResult] = list(points or [])

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.points)

    def __getitem__(self, index: int) -> PointResult:
        return self.points[index]

    # -- bookkeeping ----------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Points served from the on-disk artifact cache."""
        return sum(1 for point in self.points if point.from_cache)

    @property
    def computed(self) -> int:
        return len(self.points) - self.cache_hits

    # -- lookup ---------------------------------------------------------------
    def find(self, **overrides: Any) -> PointResult:
        """The first point whose overrides include all the given values."""
        for point in self.points:
            if all(point.overrides.get(key) == value for key, value in overrides.items()):
                return point
        raise KeyError(f"no sweep point with overrides {overrides!r}")

    def filter(self, predicate: Callable[[PointResult], bool]) -> "ResultSet":
        return ResultSet([point for point in self.points if predicate(point)])

    # -- tidy output ----------------------------------------------------------
    def rows(self, record_fields: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """One flat dictionary per point: overrides plus scalar record fields.

        Nested record entries (lists, dictionaries) are omitted unless named
        explicitly in ``record_fields``; the rows are ready for
        :func:`repro.analysis.reporting.format_table`.
        """
        rows: List[Dict[str, Any]] = []
        for point in self.points:
            row: Dict[str, Any] = dict(point.overrides)
            if record_fields is None:
                for key, value in point.record.items():
                    if isinstance(value, (int, float, str, bool)) or value is None:
                        row[key] = value
            else:
                for key in record_fields:
                    row[key] = point.record.get(key)
            rows.append(row)
        return rows

    def series(self, x: str, y: str) -> Dict[Any, Any]:
        """Map an override axis to a record field, in sweep order."""
        result: Dict[Any, Any] = {}
        for point in self.points:
            if x in point.overrides:
                result[point.overrides[x]] = point.record.get(y)
        return result

    def values(self, y: str) -> List[Any]:
        """The given record field of every point, in sweep order."""
        return [point.record.get(y) for point in self.points]

    def solutions(self) -> List[Any]:
        """Live workflow objects (``None`` for cache-served points)."""
        return [point.solution for point in self.points]

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"points": [point.to_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultSet":
        return cls([PointResult.from_dict(entry) for entry in payload.get("points", [])])

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))
