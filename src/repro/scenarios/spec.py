"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures *everything* needed to reproduce one run of
the paper's machinery — the catalogue (size, seed, anchors, candidate
restriction), the epoch grid, the demand, the scenario switches (sources,
storage, green enforcement), the cost-parameter overrides, the heuristic
search settings and the emulation knobs — as one serializable dataclass.

Specs round-trip through plain dictionaries / JSON (``to_dict`` /
``from_dict``) and carry a stable content hash, which is what keys the
:class:`~repro.scenarios.runner.ExperimentRunner`'s artifact cache: two specs
with the same semantic content always hash identically, across processes and
machines.

Every figure and table of the paper is a parameter sweep over one of these
specs (see :mod:`repro.scenarios.registry`); new scenarios are a config diff,
not a new script.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.parameters import FrameworkParameters
from repro.core.problem import EnergySources, GreenEnforcement, StorageMode
from repro.energy.profiles import EpochGrid

#: Workflows a spec can drive (which ``from_spec`` entry point consumes it).
WORKFLOWS = ("plan", "single_site", "emulate", "operate")

#: Bump when the semantics of a recorded artifact change, to invalidate
#: on-disk caches written by older code.  Version 2 added the code
#: fingerprint to stored artifacts and dropped the pure execution knobs
#: (``search.executor`` / ``search.max_workers``) from the content hash.
SPEC_SCHEMA_VERSION = 2

#: Search-settings keys that only choose *how* a scenario executes (executor
#: kind, worker caps) and are guaranteed not to change its numbers; they are
#: excluded from the content hash so a sweep run with ``executor="process"``
#: hits the artifacts a serial run wrote, and vice versa.
EXECUTION_ONLY_SEARCH_KEYS = ("executor", "max_workers")


def code_fingerprint() -> Dict[str, str]:
    """Identifiers of the code that produces artifact records.

    Stored alongside every on-disk artifact and compared on load: a cached
    point whose fingerprint does not match the running code is recomputed
    instead of silently replaying numbers an older solver produced.  The
    fingerprint names everything that can change results without changing
    the spec — the package version, the LP backend actually in use and the
    scientific stack underneath it.
    """
    import numpy
    import scipy

    from repro import __version__
    from repro.lpsolver import highs_backend

    return {
        "package_version": __version__,
        "spec_schema": str(SPEC_SCHEMA_VERSION),
        "solver_backend": "highs-direct" if highs_backend.AVAILABLE else "linprog",
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
    }

_SOURCES_VALUES = tuple(member.value for member in EnergySources)
_STORAGE_VALUES = tuple(member.value for member in StorageMode)
_ENFORCEMENT_VALUES = tuple(member.value for member in GreenEnforcement)

def _operate_defaults() -> Dict[str, Any]:
    """Default knobs of the ``operate`` workflow.

    Derived from :class:`repro.operator.replay.OperateConfig` so the spec
    layer and the replay harness can never drift apart; every default is a
    JSON-serializable scalar.
    """
    import dataclasses

    from repro.operator.replay import OperateConfig

    return {f.name: f.default for f in dataclasses.fields(OperateConfig)}


#: Default knobs of the ``operate`` workflow (rolling-horizon replay of a
#: provisioned plan; see :mod:`repro.operator`).
OPERATE_DEFAULTS: Dict[str, Any] = _operate_defaults()


def _ensemble_defaults() -> Dict[str, Any]:
    """Default knobs of the ``ensemble`` block.

    Derived from :class:`repro.robust.ensemble.EnsembleConfig` so the spec
    layer and the robustness package can never drift apart.
    """
    import dataclasses

    from repro.robust.ensemble import EnsembleConfig

    return {f.name: f.default for f in dataclasses.fields(EnsembleConfig)}


#: Default knobs of the ``ensemble`` block (weather-year/demand ensembles and
#: the stochastic siting LP; see :mod:`repro.robust`).  An *empty* block means
#: "no ensemble analysis" and is invisible to the content hash.
ENSEMBLE_DEFAULTS: Dict[str, Any] = _ensemble_defaults()

#: Allowed top-level keys of the ``faults`` block — each maps to a list of
#: JSON dictionaries understood by :meth:`repro.operator.faults.FaultSpec.
#: from_dict`.  An empty block means "no fault injection".
FAULT_KEYS = (
    "site_outages",
    "wan_degradations",
    "forecast_blackouts",
    "demand_surges",
    "solver_faults",
    "solver_outages",
)


def _contingency_defaults() -> Dict[str, Any]:
    """Default knobs of the ``contingency`` block.

    Derived from :class:`repro.robust.contingency.ContingencyConfig` so the
    spec layer and the N-1 planner can never drift apart.
    """
    import dataclasses

    from repro.robust.contingency import ContingencyConfig

    return {f.name: f.default for f in dataclasses.fields(ContingencyConfig)}


#: Default knobs of the ``contingency`` block (N-1 survivable sizing and the
#: replay-level survivability study; see :mod:`repro.robust.contingency`).  An
#: *empty* block means "no contingency analysis" and is invisible to the
#: content hash.
CONTINGENCY_DEFAULTS: Dict[str, Any] = _contingency_defaults()

#: Default knobs of the ``emulate`` workflow (the paper's three-site,
#: nine-VM, solar-heavy Section V deployment).
EMULATION_DEFAULTS: Dict[str, Any] = {
    "sites": ("Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"),
    "num_vms": 9,
    "duration_hours": 24,
    "seed": 0,
    "initial_datacenter": None,  # last site when None
    "it_factor": 1.3,            # installed IT power as a multiple of the fleet power
    "solar_factor": 7.0,         # installed solar as a multiple of the fleet power
    "wind_factor": 0.4,          # installed wind as a multiple of the fleet power
    "battery_kwh_factor": 0.0,   # battery capacity as a multiple of the fleet power
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One reproducible experimental scenario.

    Enum-valued switches are stored as their string values (``"solar+wind"``,
    ``"net_metering"``, ``"annual"``) so a spec serializes without custom
    encoders; the ``*_enum`` properties return the typed members.
    """

    # -- identity (not part of the content hash) ------------------------------
    name: str = ""
    description: str = ""

    # -- workflow -------------------------------------------------------------
    workflow: str = "plan"

    # -- catalogue ------------------------------------------------------------
    num_locations: int = 90
    catalog_seed: int = 2014
    include_anchors: bool = True
    candidate_names: Optional[Tuple[str, ...]] = None

    # -- epoch grid -----------------------------------------------------------
    days_per_season: int = 1
    hours_per_epoch: int = 3

    # -- demand and scenario switches ----------------------------------------
    total_capacity_kw: float = 50_000.0
    min_green_fraction: float = 0.5
    sources: str = EnergySources.SOLAR_AND_WIND.value
    storage: str = StorageMode.NET_METERING.value
    green_enforcement: str = GreenEnforcement.ANNUAL.value
    migration_factor: float = 1.0
    net_meter_credit: float = 1.0
    min_availability: Optional[float] = None

    # -- cost-parameter overrides (Table I fields by name) --------------------
    param_overrides: Dict[str, float] = field(default_factory=dict)

    # -- heuristic search settings (SearchSettings kwargs) --------------------
    search: Dict[str, Any] = field(default_factory=dict)

    # -- emulation knobs (EMULATION_DEFAULTS keys) ----------------------------
    emulation: Dict[str, Any] = field(default_factory=dict)

    # -- operations knobs (OPERATE_DEFAULTS keys; ``operate`` workflow) -------
    operate: Dict[str, Any] = field(default_factory=dict)

    # -- robustness knobs (all blocks hash-invisible when empty) --------------
    ensemble: Dict[str, Any] = field(default_factory=dict)
    faults: Dict[str, Any] = field(default_factory=dict)
    contingency: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workflow not in WORKFLOWS:
            raise ValueError(f"unknown workflow {self.workflow!r}; expected one of {WORKFLOWS}")
        if self.sources not in _SOURCES_VALUES:
            raise ValueError(f"unknown sources {self.sources!r}; expected one of {_SOURCES_VALUES}")
        if self.storage not in _STORAGE_VALUES:
            raise ValueError(f"unknown storage {self.storage!r}; expected one of {_STORAGE_VALUES}")
        if self.green_enforcement not in _ENFORCEMENT_VALUES:
            raise ValueError(
                f"unknown green enforcement {self.green_enforcement!r}; "
                f"expected one of {_ENFORCEMENT_VALUES}"
            )
        if self.num_locations < 1:
            raise ValueError("the catalogue needs at least one location")
        if self.total_capacity_kw <= 0:
            raise ValueError("total capacity must be positive")
        if not 0.0 <= self.min_green_fraction <= 1.0:
            raise ValueError("the minimum green fraction must lie in [0, 1]")
        unknown_emulation = set(self.emulation) - set(EMULATION_DEFAULTS)
        if unknown_emulation:
            raise ValueError(f"unknown emulation knobs: {sorted(unknown_emulation)}")
        unknown_operate = set(self.operate) - set(OPERATE_DEFAULTS)
        if unknown_operate:
            raise ValueError(f"unknown operate knobs: {sorted(unknown_operate)}")
        unknown_ensemble = set(self.ensemble) - set(ENSEMBLE_DEFAULTS)
        if unknown_ensemble:
            raise ValueError(f"unknown ensemble knobs: {sorted(unknown_ensemble)}")
        unknown_faults = set(self.faults) - set(FAULT_KEYS)
        if unknown_faults:
            raise ValueError(f"unknown fault blocks: {sorted(unknown_faults)}")
        unknown_contingency = set(self.contingency) - set(CONTINGENCY_DEFAULTS)
        if unknown_contingency:
            raise ValueError(f"unknown contingency knobs: {sorted(unknown_contingency)}")
        if self.candidate_names is not None:
            object.__setattr__(self, "candidate_names", tuple(self.candidate_names))
        if "sites" in self.emulation:
            emulation = dict(self.emulation)
            emulation["sites"] = tuple(emulation["sites"])
            object.__setattr__(self, "emulation", emulation)

    # -- typed accessors ------------------------------------------------------
    @property
    def sources_enum(self) -> EnergySources:
        return EnergySources(self.sources)

    @property
    def storage_enum(self) -> StorageMode:
        return StorageMode(self.storage)

    @property
    def green_enforcement_enum(self) -> GreenEnforcement:
        return GreenEnforcement(self.green_enforcement)

    def emulation_knobs(self) -> Dict[str, Any]:
        """Emulation knobs with the paper's defaults filled in."""
        knobs = dict(EMULATION_DEFAULTS)
        knobs.update(self.emulation)
        knobs["sites"] = tuple(knobs["sites"])
        if knobs["initial_datacenter"] is None:
            knobs["initial_datacenter"] = knobs["sites"][-1]
        return knobs

    def operate_knobs(self) -> Dict[str, Any]:
        """Operations knobs with the subsystem defaults filled in."""
        knobs = dict(OPERATE_DEFAULTS)
        knobs.update(self.operate)
        return knobs

    def ensemble_config(self) -> Optional[Any]:
        """The ensemble block as a typed :class:`~repro.robust.EnsembleConfig`.

        Returns ``None`` when the block is empty (no ensemble analysis).
        """
        if not self.ensemble:
            return None
        from repro.robust.ensemble import EnsembleConfig

        knobs = dict(ENSEMBLE_DEFAULTS)
        knobs.update(self.ensemble)
        return EnsembleConfig(**knobs)

    def fault_spec(self) -> Optional[Any]:
        """The faults block as a typed :class:`~repro.operator.FaultSpec`.

        Returns ``None`` when the block is empty (no fault injection).
        """
        if not self.faults:
            return None
        from repro.operator.faults import FaultSpec

        return FaultSpec.from_dict(self.faults)

    def contingency_config(self) -> Optional[Any]:
        """The contingency block as a typed
        :class:`~repro.robust.ContingencyConfig`.

        Returns ``None`` when the block is empty (no N-1 analysis).
        """
        if not self.contingency:
            return None
        from repro.robust.contingency import ContingencyConfig

        knobs = dict(CONTINGENCY_DEFAULTS)
        knobs.update(self.contingency)
        return ContingencyConfig(**knobs)

    # -- updates --------------------------------------------------------------
    def with_updates(self, **changes: Any) -> "ScenarioSpec":
        """A copy of the spec with the given fields replaced.

        Keys may be dotted (``"search.seed"``, ``"emulation.num_vms"``) to
        update one entry of a dictionary-valued field; this is the override
        syntax :class:`~repro.scenarios.runner.ParameterSweep` axes use.
        """
        flat: Dict[str, Any] = {}
        nested: Dict[str, Dict[str, Any]] = {}
        for key, value in changes.items():
            if "." in key:
                parent, child = key.split(".", 1)
                nested.setdefault(parent, {})[child] = value
            else:
                flat[key] = value
        spec_fields = {f.name for f in fields(self)}
        for parent, updates in nested.items():
            if parent not in (
                "param_overrides",
                "search",
                "emulation",
                "operate",
                "ensemble",
                "faults",
                "contingency",
            ):
                raise KeyError(f"cannot apply dotted override to field {parent!r}")
            merged = dict(getattr(self, parent))
            merged.update(updates)
            flat[parent] = merged
        unknown = set(flat) - spec_fields
        if unknown:
            raise KeyError(f"unknown scenario fields: {sorted(unknown)}")
        return replace(self, **flat)

    def canonical(self) -> "ScenarioSpec":
        """The spec with semantically-equivalent settings normalised.

        A zero green requirement makes the allowed sources irrelevant (the
        tool and the single-site analyzer both force ``EnergySources.NONE``),
        so all such specs collapse onto the ``"brown"`` form — the runner's
        caches then evaluate the shared brown baseline of Figs. 8-12 once
        instead of once per source curve.
        """
        spec = self
        if spec.workflow in ("plan", "single_site", "operate") and spec.min_green_fraction == 0.0:
            if spec.sources != EnergySources.NONE.value:
                spec = replace(spec, sources=EnergySources.NONE.value)
        return spec

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dictionary form (JSON-ready; tuples become lists)."""
        payload = asdict(self)
        if payload["candidate_names"] is not None:
            payload["candidate_names"] = list(payload["candidate_names"])
        if "sites" in payload["emulation"]:
            payload["emulation"] = dict(payload["emulation"])
            payload["emulation"]["sites"] = list(payload["emulation"]["sites"])
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        spec_fields = {f.name for f in fields(cls)}
        unknown = set(payload) - spec_fields
        if unknown:
            raise KeyError(f"unknown scenario fields: {sorted(unknown)}")
        data = dict(payload)
        if data.get("candidate_names") is not None:
            data["candidate_names"] = tuple(data["candidate_names"])
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- content hashing ------------------------------------------------------
    def hash_payload(self) -> Dict[str, Any]:
        """The dictionary the content hash is computed over.

        The identity fields (``name``, ``description``) are excluded so that
        relabelling a scenario does not invalidate cached artifacts, and the
        spec is canonicalised first so equivalent scenarios share a hash.
        The execution-only search knobs (:data:`EXECUTION_ONLY_SEARCH_KEYS`)
        are dropped too: the executor kind and worker caps never change a
        scenario's numbers, so they must not change its cache key either.
        """
        payload = self.canonical().to_dict()
        payload.pop("name")
        payload.pop("description")
        if self.workflow != "operate":
            # Operations knobs only exist for the operate workflow; dropping
            # them here keeps every pre-operate content hash (and therefore
            # every cached artifact) valid.
            payload.pop("operate", None)
        # Empty robustness blocks are dropped so every pre-robustness hash
        # (and therefore every cached artifact) stays valid; non-empty blocks
        # change the record contents and so must key the cache.
        if not payload.get("ensemble"):
            payload.pop("ensemble", None)
        if not payload.get("faults"):
            payload.pop("faults", None)
        if not payload.get("contingency"):
            payload.pop("contingency", None)
        search = {
            key: value
            for key, value in payload["search"].items()
            if key not in EXECUTION_ONLY_SEARCH_KEYS
        }
        payload["search"] = search
        payload["schema_version"] = SPEC_SCHEMA_VERSION
        return payload

    def content_hash(self) -> str:
        """Stable hex digest of the spec's semantic content."""
        canonical_json = json.dumps(self.hash_payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical_json.encode("utf-8")).hexdigest()

    def problem_signature(self) -> str:
        """Hash of the fields that define the optimisation *problem*.

        Search settings, emulation knobs and the workflow do not change the
        fixed-siting LPs, so sweep points that differ only in those share a
        signature — and therefore a compiled-skeleton cache in the runner.
        """
        payload = self.hash_payload()
        # The robustness blocks perturb *copies* of the problem (or only the
        # replay), never the base fixed-siting LPs the skeleton cache serves.
        for irrelevant in (
            "workflow",
            "search",
            "emulation",
            "operate",
            "ensemble",
            "faults",
            "contingency",
        ):
            payload.pop(irrelevant, None)
        canonical_json = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical_json.encode("utf-8")).hexdigest()

    # -- builders -------------------------------------------------------------
    def build_catalog(self) -> Any:
        """The world catalogue this spec runs against."""
        from repro.weather.locations import build_world_catalog

        return build_world_catalog(
            num_locations=self.num_locations,
            seed=self.catalog_seed,
            include_anchors=self.include_anchors,
        )

    def build_epoch_grid(self) -> EpochGrid:
        return EpochGrid.from_seasons(
            days_per_season=self.days_per_season, hours_per_epoch=self.hours_per_epoch
        )

    def build_params(
        self, base: Optional[FrameworkParameters] = None
    ) -> FrameworkParameters:
        """Framework parameters with the spec's overrides applied."""
        params = base or FrameworkParameters()
        if self.param_overrides:
            params = params.with_updates(**self.param_overrides)
        return params

    def build_search_settings(self) -> Any:
        from repro.core.heuristic import SearchSettings

        return SearchSettings(**self.search)
