"""Parameter sweeps and the experiment runner.

:class:`ParameterSweep` expands a base :class:`~repro.scenarios.spec.ScenarioSpec`
over named axes (cartesian product or zipped), producing one resolved spec per
sweep point.  :class:`ExperimentRunner` executes the points and returns a
:class:`~repro.scenarios.results.ResultSet`, sharing every cache that makes a
sweep cheaper than independent runs:

* one world catalogue / profile set per (catalogue, grid, candidates) key —
  profile synthesis dominates small runs and is identical across points;
* one :class:`~repro.core.provisioning.ProvisioningCompiler` per *problem
  signature* (the spec fields that define the fixed-siting LP), so sweep
  points that differ only in search settings reuse the compiled per-site
  skeletons and CSC templates introduced by the fast-siting-search work;
* an in-memory point memo keyed by content hash — canonicalisation collapses
  equivalent points (every 0 %-green curve of Figs. 8-12 prices the same
  brown network), so duplicates are evaluated exactly once per process; and
* an optional on-disk artifact cache keyed by the same content hash, so
  re-running an unchanged scenario is a file read.

Execution is deterministic for a fixed spec: every point owns its seeded
heuristic search, points never share mutable solver state, and the result
order is the sweep order no matter how many workers run the points.
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import tempfile
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.heuristic import HeuristicSolver
from repro.core.parameters import FrameworkParameters
from repro.core.provisioning import ProvisioningCompiler
from repro.core.single_site import SingleSiteAnalyzer
from repro.core.tool import PlacementTool
from repro.lpsolver import SolverOptions
from repro.parallel.executors import ExecutorFactory, available_cpu_count
from repro.parallel.work import SweepPointTask, new_token, run_sweep_point
from repro.scenarios.results import PointResult, ResultSet
from repro.scenarios.spec import ScenarioSpec, code_fingerprint

#: Schema version of the on-disk artifact payload.  Version 2 wraps the point
#: in a code fingerprint (see :func:`repro.scenarios.spec.code_fingerprint`):
#: artifacts written by a different package version or solver backend are
#: rejected on load and recomputed, instead of silently replaying numbers the
#: old code produced.
ARTIFACT_SCHEMA_VERSION = 2


def list_artifacts(cache_dir: Union[str, os.PathLike]) -> List[str]:
    """Paths of the sweep-point artifacts stored under ``cache_dir``, sorted.

    This function owns the artifact naming convention together with
    :meth:`ExperimentRunner._artifact_path`; CLI tooling goes through it so
    a layout change cannot silently desynchronise ``repro cache info``.
    """
    cache_dir = str(cache_dir)
    if not os.path.isdir(cache_dir):
        return []
    return sorted(
        os.path.join(cache_dir, entry)
        for entry in os.listdir(cache_dir)
        if entry.startswith("point-") and entry.endswith(".json")
    )


def clear_artifact_cache(cache_dir: Union[str, os.PathLike]) -> int:
    """Delete every stored sweep-point artifact; returns how many were removed.

    Only the runner's own ``point-*.json`` files (and leftover ``*.tmp``
    write staging files) are touched, so a mistyped directory cannot be
    emptied wholesale.
    """
    removed = 0
    cache_dir = str(cache_dir)
    for path in list_artifacts(cache_dir):
        try:
            os.unlink(path)
        except OSError:
            continue
        removed += 1
    if os.path.isdir(cache_dir):
        for entry in os.listdir(cache_dir):  # leftover write-staging files
            if entry.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(cache_dir, entry))
                except OSError:
                    continue
    return removed


@dataclass
class SweepPoint:
    """One resolved point of a sweep: the axis overrides and the final spec."""

    overrides: Dict[str, Any]
    spec: ScenarioSpec


@dataclass
class ParameterSweep:
    """A grid of scenarios derived from one base spec.

    ``axes`` maps field names (dotted paths reach into the ``search`` /
    ``emulation`` / ``param_overrides`` dictionaries) to the values each axis
    takes.  ``mode="cartesian"`` sweeps the full product in axis-declaration
    order (first axis outermost); ``mode="zip"`` pairs the axes element-wise,
    which expresses irregular grids such as Fig. 6's three configurations.
    """

    base: ScenarioSpec
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    mode: str = "cartesian"
    name: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("cartesian", "zip"):
            raise ValueError(f"unknown sweep mode {self.mode!r}; expected 'cartesian' or 'zip'")
        for axis, values in self.axes.items():
            if len(list(values)) == 0:
                raise ValueError(f"sweep axis {axis!r} has no values")
        if self.mode == "zip" and self.axes:
            lengths = {axis: len(list(values)) for axis, values in self.axes.items()}
            if len(set(lengths.values())) > 1:
                raise ValueError(f"zip-mode axes must have equal lengths, got {lengths}")
        if not self.name:
            self.name = self.base.name

    def points(self) -> List[SweepPoint]:
        """The sweep points, in deterministic sweep order."""
        if not self.axes:
            return [SweepPoint(overrides={}, spec=self.base)]
        names = list(self.axes)
        columns = [list(self.axes[name]) for name in names]
        if self.mode == "zip":
            combos = list(zip(*columns))
        else:
            combos = list(itertools.product(*columns))
        points: List[SweepPoint] = []
        for combo in combos:
            overrides = dict(zip(names, combo))
            points.append(SweepPoint(overrides=overrides, spec=self.base.with_updates(**overrides)))
        return points

    def __len__(self) -> int:
        return len(self.points())


class ExperimentRunner:
    """Executes scenario specs and sweeps, with shared caches.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk artifact cache; ``None`` disables it.
        Cached points are keyed by the spec content hash, so editing any
        semantic field of a scenario invalidates exactly that point.
    workers:
        Sweep points evaluated concurrently; ``None`` means the CPUs
        available to this process (container CPU quotas included).  Results
        (and all numbers in them) are independent of this knob; it only
        changes wall-clock time.
    executor:
        ``"thread"`` (default), ``"process"`` or ``"serial"``.  Process
        execution ships each point's :class:`~repro.scenarios.spec.ScenarioSpec`
        dictionary to a worker, which rebuilds a serial runner lazily (one
        per process, shared across the points it serves) and sends back the
        JSON record; the live ``solution`` object of such points is ``None``,
        exactly like cache-served points.  Records are bit-identical across
        all three executors.
    base_params:
        Baseline framework parameters that spec ``param_overrides`` apply to
        (Table I defaults when omitted).
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        workers: Optional[int] = None,
        base_params: Optional[FrameworkParameters] = None,
        solver_options: Optional[SolverOptions] = None,
        executor: str = "thread",
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("the runner needs at least one worker")
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.workers = workers if workers is not None else available_cpu_count()
        self.executor = executor
        self._factory = ExecutorFactory(kind=executor, max_workers=self.workers)
        self.base_params = base_params or FrameworkParameters()
        self.solver_options = solver_options or SolverOptions()
        self._catalogs: Dict[Tuple, object] = {}
        self._profiles: Dict[Tuple, list] = {}
        self._problems: Dict[str, Tuple[object, ProvisioningCompiler]] = {}
        self._memo: Dict[str, Future] = {}
        self._lock = threading.Lock()
        # Process workers key their per-process runner rebuild by this token.
        self._runner_token = new_token("runner")
        #: Points recovered by re-running serially after a dead process pool.
        self.process_fallbacks = 0
        #: Warm-vs-cold cache accounting (catalogue/profile/problem rebuilds,
        #: on-disk artifact hits, futures-memo dedup hits); see
        #: :meth:`cache_stats`.  Guarded by ``self._lock``.
        self.cache_counters: Dict[str, int] = {
            "catalog_hits": 0,
            "catalog_builds": 0,
            "profile_hits": 0,
            "profile_builds": 0,
            "problem_hits": 0,
            "problem_builds": 0,
            "artifact_hits": 0,
            "artifact_misses": 0,
            "memo_hits": 0,
        }

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self.cache_counters[counter] += amount

    def cache_stats(self) -> Dict[str, int]:
        """Warm-vs-cold counters for this runner's in-memory and disk caches.

        Includes the per-compiler skeleton counters summed over every problem
        signature this runner has compiled.  For process-executor sweeps the
        interesting counters live in the *workers*; those cross back in the
        stats payload of :func:`repro.parallel.work.run_serve_point`.
        """
        with self._lock:
            stats = dict(self.cache_counters)
            compilers = [compiler for _, compiler in self._problems.values()]
        totals = {"skeleton_hits": 0, "skeleton_derives": 0, "skeleton_builds": 0}
        for compiler in compilers:
            for name, value in compiler.skeleton_stats().items():
                totals[name] += value
        stats.update(totals)
        return stats

    # -- public API -----------------------------------------------------------
    def run(self, experiment: Union[ScenarioSpec, ParameterSweep]) -> ResultSet:
        """Run a spec (as a one-point sweep) or a full sweep."""
        sweep = (
            experiment
            if isinstance(experiment, ParameterSweep)
            else ParameterSweep(base=experiment)
        )
        points = sweep.points()
        futures: List[Tuple[SweepPoint, Future]] = []
        to_submit: List[Tuple[str, ScenarioSpec]] = []
        with self._lock:
            for point in points:
                key = point.spec.content_hash()
                future = self._memo.get(key)
                if future is None:
                    future = Future()
                    self._memo[key] = future
                    to_submit.append((key, point.spec))
                else:
                    self.cache_counters["memo_hits"] += 1
                futures.append((point, future))

        if to_submit:
            if self._factory.effective_kind == "process":
                self._fill_process(to_submit)
            else:
                # Thread or serial: _fill captures failures on the memo
                # future itself, so the pool futures never raise here.
                with self._factory.create(len(to_submit)) as pool:
                    list(pool.map(lambda item: self._fill(*item), to_submit))  # reprolint: ok(PKL001) thread/serial-only branch; the process path ships SweepPointTask via _fill_process

        results: List[PointResult] = []
        for point, future in futures:
            base = future.result()
            results.append(
                PointResult(
                    spec=point.spec,
                    overrides=point.overrides,
                    # Deep-copied: deduped points (and later runs) must not
                    # alias one mutable record — annotating a row in place
                    # would silently edit the memo and the other points.
                    record=copy.deepcopy(base.record),
                    from_cache=base.from_cache,
                    solution=base.solution,
                )
            )
        return ResultSet(results)

    def run_point(self, spec: ScenarioSpec) -> PointResult:
        """Run a single scenario and return its point result."""
        return self.run(spec)[0]

    # -- point evaluation -----------------------------------------------------
    def _fill(self, key: str, spec: ScenarioSpec) -> None:
        future = self._memo[key]
        try:
            future.set_result(self._evaluate(key, spec))
        except BaseException as error:
            # Propagate to this run's waiters, but do not memoize the failure:
            # a later run of an equivalent point should recompute, not re-raise
            # a stale (possibly transient) error.
            with self._lock:
                if self._memo.get(key) is future:
                    del self._memo[key]
            future.set_exception(error)

    def _fill_process(self, to_submit: List[Tuple[str, ScenarioSpec]]) -> None:
        """Evaluate uncached points on a process pool, in submission order.

        The parent serves on-disk artifacts itself (no point shipping a spec
        whose record is already a file read); everything else crosses the
        pickling boundary as a :class:`~repro.parallel.work.SweepPointTask`.
        A worker failure is set on exactly that point's memo future — every
        waiter observes it, nothing deadlocks — and the memo entry is
        dropped so a later run recomputes instead of replaying the error.
        The one exception is a *dead pool* (a worker killed by a signal or
        the OOM killer raises :class:`~concurrent.futures.process.
        BrokenProcessPool` on every outstanding future): the affected points
        are re-run serially in the parent instead, so one lost worker
        degrades a sweep to slower, not to failed.
        """
        from concurrent.futures.process import BrokenProcessPool

        from repro.parallel.executors import run_task_inline

        pending: List[Tuple[str, ScenarioSpec]] = []
        for key, spec in to_submit:
            cached = self._load_artifact(key)
            if cached is not None:
                self._memo[key].set_result(cached)
            else:
                pending.append((key, spec))
        if not pending:
            return
        with self._factory.create(len(pending)) as pool:
            submitted = [
                (
                    key,
                    spec,
                    task,
                    pool.submit(run_sweep_point, task),
                )
                for key, spec, task in (
                    (
                        key,
                        spec,
                        SweepPointTask(
                            token=self._runner_token,
                            spec=spec.to_dict(),
                            cache_dir=self.cache_dir,
                            base_params=self.base_params,
                            solver_options=self.solver_options,
                        ),
                    )
                    for key, spec in pending
                )
            ]
            for key, spec, task, task_future in submitted:
                future = self._memo[key]
                try:
                    try:
                        record, from_cache = task_future.result()
                    except BrokenProcessPool:
                        self.process_fallbacks += 1
                        record, from_cache = run_task_inline(run_sweep_point, task)
                except BaseException as error:
                    with self._lock:
                        if self._memo.get(key) is future:
                            del self._memo[key]
                    future.set_exception(error)
                else:
                    future.set_result(
                        PointResult(
                            spec=spec.canonical(), record=record, from_cache=from_cache
                        )
                    )

    def _evaluate(self, key: str, spec: ScenarioSpec) -> PointResult:
        cached = self._load_artifact(key)
        if cached is not None:
            return cached
        spec = spec.canonical()
        if spec.workflow == "plan":
            record, solution = self._run_plan(spec)
        elif spec.workflow == "single_site":
            record, solution = self._run_single_site(spec)
        elif spec.workflow == "emulate":
            record, solution = self._run_emulate(spec)
        elif spec.workflow == "operate":
            record, solution = self._run_operate(spec)
        else:  # pragma: no cover - __post_init__ rejects unknown workflows
            raise ValueError(f"unknown workflow {spec.workflow!r}")
        result = PointResult(spec=spec, record=record, solution=solution)
        self._store_artifact(key, result)
        return result

    # -- workflows ------------------------------------------------------------
    def _run_plan(self, spec: ScenarioSpec) -> Tuple[Dict[str, Any], Any]:
        tool = self.tool_for(spec)
        problem, compiler = self._problem_for(spec, tool)
        solver = HeuristicSolver(
            problem,
            settings=spec.build_search_settings(),
            solver_options=tool.solver_options,
            compiler=compiler,
        )
        solution = solver.solve()
        record: Dict[str, Any] = {
            "workflow": "plan",
            "feasible": bool(solution.feasible),
            "monthly_cost": float(solution.monthly_cost),
            "monthly_cost_musd": float(solution.monthly_cost) / 1e6,
            "evaluations": int(solution.evaluations),
            "solver_cache_hits": int(solution.cache_hits),
            "message": solution.message,
        }
        plan = solution.plan
        if plan is not None:
            record.update(
                {
                    "num_datacenters": plan.num_datacenters,
                    "capacity_mw": plan.total_capacity_kw / 1000.0,
                    "solar_mw": plan.total_solar_kw / 1000.0,
                    "wind_mw": plan.total_wind_kw / 1000.0,
                    "battery_mwh": plan.total_battery_kwh / 1000.0,
                    "green_fraction": float(plan.green_fraction),
                    "availability": float(plan.availability),
                    "datacenters": [
                        {
                            "name": dc.name,
                            "size_class": dc.size_class,
                            "capacity_kw": float(dc.capacity_kw),
                            "solar_kw": float(dc.solar_kw),
                            "wind_kw": float(dc.wind_kw),
                            "battery_kwh": float(dc.battery_kwh),
                            "monthly_cost": float(dc.total_monthly_cost),
                        }
                        for dc in sorted(plan.datacenters, key=lambda d: d.name)
                    ],
                }
            )
        else:
            record.update(
                {
                    "num_datacenters": 0,
                    "capacity_mw": float("nan"),
                    "solar_mw": float("nan"),
                    "wind_mw": float("nan"),
                    "battery_mwh": float("nan"),
                    "green_fraction": float("nan"),
                    "availability": float("nan"),
                    "datacenters": [],
                }
            )
        self._attach_ensemble(record, spec, problem, plan)
        self._attach_contingency(record, spec, compiler, plan)
        return record, solution

    def _attach_ensemble(
        self, record: Dict[str, Any], spec: ScenarioSpec, problem: Any, plan: Any
    ) -> None:
        """Evaluate the plan against the spec's ensemble, if one is configured.

        Attaches the full report under ``record["robustness"]`` plus a few
        flattened scalars for sweep tables; a spec with an empty ``ensemble``
        block (every pre-robustness scenario) is untouched.
        """
        config = spec.ensemble_config()
        if config is None or plan is None:
            return
        from repro.robust.stochastic import ensemble_report, plan_siting_and_sizing

        siting, sizing = plan_siting_and_sizing(plan)
        report = ensemble_report(
            problem, siting, sizing, config, options=self.solver_options
        )
        record["robustness"] = report
        record["ensemble_expected_cost"] = report["expected_cost"]
        record["ensemble_cvar_cost"] = report["cvar_cost"]
        record["ensemble_regret_mean"] = report["regret_mean"]
        record["ensemble_regret_max"] = report["regret_max"]
        if "stochastic_expected_cost" in report:
            record["stochastic_expected_cost"] = report["stochastic_expected_cost"]
            record["stochastic_saving_pct"] = report["stochastic_saving_pct"]

    def _attach_contingency(
        self,
        record: Dict[str, Any],
        spec: ScenarioSpec,
        compiler: Any,
        plan: Any,
        operate_config: Any = None,
    ) -> None:
        """Attach the N-1 contingency report when the spec asks for one.

        Planner-level: the joint survivable LP plus batched per-outage
        repricing of both sizings (``record["contingency"]``).  On operate
        runs (``operate_config`` given) the replay-level survivability study
        is attached too — both sizings operated through every single-site
        outage window over one shared trace.
        """
        config = spec.contingency_config()
        if config is None or plan is None:
            return
        from repro.robust.contingency import contingency_report
        from repro.robust.stochastic import plan_siting_and_sizing

        siting, sizing = plan_siting_and_sizing(plan)
        report = contingency_report(
            compiler, siting, sizing, config=config, options=self.solver_options
        )
        record["contingency"] = report
        record["n1_cost_premium_pct"] = report["cost_premium_pct"]
        record["det_worst_unserved_kwh"] = report["worst_case"]["det"]["unserved_kwh"]
        record["n1_worst_unserved_kwh"] = report["worst_case"]["n1"]["unserved_kwh"]
        record["det_violations"] = report["det_violations"]
        record["n1_violations"] = report["n1_violations"]
        if operate_config is not None:
            from repro.operator.replay import survivability_study

            study = survivability_study(
                plan,
                report["n1_sizing"],
                operate_config,
                survivability_epsilon=config.survivability_epsilon,
                outage_start_step=config.outage_start_step,
                outage_duration_steps=config.outage_duration_steps,
                total_capacity_kw=spec.total_capacity_kw,
            )
            record["survivability"] = study
            record["survivability_within_epsilon"] = study["plans"]["n1"]["within_epsilon"]
            record["survivability_unserved_reduction_kwh"] = study["unserved_reduction_kwh"]
            record["survivability_cost_premium_pct"] = study["cost_premium_pct"]

    def _run_single_site(self, spec: ScenarioSpec) -> Tuple[Dict[str, Any], Any]:
        tool = self.tool_for(spec)
        analyzer = SingleSiteAnalyzer.from_spec(
            spec, base_params=self.base_params, solver_options=tool.solver_options
        )
        costs = analyzer.cost_distribution(
            tool.profiles,
            capacity_kw=spec.total_capacity_kw,
            min_green_fraction=spec.min_green_fraction,
            sources=spec.sources_enum,
            storage=spec.storage_enum,
        )
        feasible_costs = sorted(c.monthly_cost for c in costs if c.feasible)
        record: Dict[str, Any] = {
            "workflow": "single_site",
            "capacity_kw": spec.total_capacity_kw,
            "num_locations": len(costs),
            "num_feasible": len(feasible_costs),
            "min_monthly_cost": feasible_costs[0] if feasible_costs else float("nan"),
            "median_monthly_cost": (
                float(np.median(feasible_costs)) if feasible_costs else float("nan")
            ),
            "locations": [
                dict(cost.table_row(), feasible=bool(cost.feasible),
                     monthly_cost=float(cost.monthly_cost))
                for cost in costs
            ],
        }
        return record, costs

    def _run_emulate(self, spec: ScenarioSpec) -> Tuple[Dict[str, Any], Any]:
        from repro.greennebula.emulation import EmulatedCloud

        cloud = EmulatedCloud.from_spec(spec)
        summary = cloud.run()
        record: Dict[str, Any] = {
            "workflow": "emulate",
            "sites": [dc.name for dc in cloud.datacenters],
            "num_vms": cloud.config.num_vms,
            "total_hours": summary.total_hours,
            "total_migrations": summary.total_migrations,
            "migrated_state_mb": float(summary.migrated_state_mb),
            "total_green_used_kwh": float(summary.total_green_used_kwh),
            "total_brown_kwh": float(summary.total_brown_kwh),
            "mean_schedule_time_s": float(summary.mean_schedule_time_s),
            "green_fraction": float(summary.green_fraction),
            "load_series": {
                dc.name: [float(value) for value in cloud.load_series(dc.name)]
                for dc in cloud.datacenters
            },
        }
        return record, cloud

    def _run_operate(self, spec: ScenarioSpec) -> Tuple[Dict[str, Any], Any]:
        """Provision a plan with the heuristic, then replay an operating run.

        The siting/provisioning stage goes through the same shared
        problem/compiler caches as the ``plan`` workflow (operations knobs do
        not change the problem signature), so operate points sweeping only
        forecast or traffic knobs share compiled LP skeletons; the replay
        itself is the :mod:`repro.operator` rolling-horizon harness, run once
        under the forecast-driven policy and once under the oracle over the
        same synthesized trace.
        """
        from repro.operator.replay import OperateConfig, operate_plan

        tool = self.tool_for(spec)
        problem, compiler = self._problem_for(spec, tool)
        solver = HeuristicSolver(
            problem,
            settings=spec.build_search_settings(),
            solver_options=tool.solver_options,
            compiler=compiler,
        )
        solution = solver.solve()
        record: Dict[str, Any] = {
            "workflow": "operate",
            "feasible": bool(solution.feasible),
            "plan_monthly_cost": float(solution.monthly_cost),
            "plan_evaluations": int(solution.evaluations),
            "message": solution.message,
        }
        plan = solution.plan
        if not solution.feasible or plan is None:
            return record, solution
        config = OperateConfig(**spec.operate_knobs())
        record.update(
            operate_plan(
                plan,
                config,
                total_capacity_kw=spec.total_capacity_kw,
                faults=spec.fault_spec(),
            )
        )
        self._attach_ensemble(record, spec, problem, plan)
        self._attach_contingency(record, spec, compiler, plan, operate_config=config)
        return record, solution

    # -- shared construction caches -------------------------------------------
    def _catalog_for(self, spec: ScenarioSpec) -> Any:
        key = (spec.num_locations, spec.catalog_seed, spec.include_anchors)
        with self._lock:
            catalog = self._catalogs.get(key)
        if catalog is None:
            self._count("catalog_builds")
            catalog = spec.build_catalog()
            with self._lock:
                catalog = self._catalogs.setdefault(key, catalog)
        else:
            self._count("catalog_hits")
        return catalog

    def _profiles_for(self, spec: ScenarioSpec, tool: PlacementTool) -> list:
        key = (
            spec.num_locations,
            spec.catalog_seed,
            spec.include_anchors,
            spec.days_per_season,
            spec.hours_per_epoch,
            spec.candidate_names,
        )
        with self._lock:
            profiles = self._profiles.get(key)
        if profiles is None:
            self._count("profile_builds")
            profiles = tool.profile_builder.build_all(
                tool.epoch_grid, names=tool.candidate_names
            )
            with self._lock:
                profiles = self._profiles.setdefault(key, profiles)
        else:
            self._count("profile_hits")
        return profiles

    def tool_for(self, spec: ScenarioSpec) -> PlacementTool:
        """A placement tool for the spec, with the catalogue and profiles shared."""
        tool = PlacementTool.from_spec(
            spec,
            catalog=self._catalog_for(spec),
            base_params=self.base_params,
            solver_options=self.solver_options,
        )
        tool._profiles = self._profiles_for(spec, tool)
        return tool

    def _problem_for(self, spec: ScenarioSpec, tool: PlacementTool) -> Any:
        """One siting problem + provisioning compiler per problem signature.

        Points that define the same fixed-siting LP (everything except the
        search settings and the workflow) share the problem object and its
        compiled per-site skeletons; both are read-only during solving and
        the compiler is thread-safe, so concurrent points may share them.
        """
        signature = spec.problem_signature()
        with self._lock:
            entry = self._problems.get(signature)
        if entry is None:
            self._count("problem_builds")
            problem = tool.build_problem(
                total_capacity_kw=spec.total_capacity_kw,
                min_green_fraction=spec.min_green_fraction,
                sources=spec.sources_enum,
                storage=spec.storage_enum,
                migration_factor=spec.migration_factor,
                net_meter_credit=spec.net_meter_credit,
                min_availability=spec.min_availability,
                green_enforcement=spec.green_enforcement_enum,
            )
            entry = (problem, ProvisioningCompiler(problem))
            with self._lock:
                entry = self._problems.setdefault(signature, entry)
        else:
            self._count("problem_hits")
        return entry

    # -- on-disk artifact cache -----------------------------------------------
    def _artifact_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"point-{key}.json")

    def _load_artifact(self, key: str) -> Optional[PointResult]:
        path = self._artifact_path(key)
        if path is None:
            return None
        if not os.path.exists(path):
            self._count("artifact_misses")
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
                self._count("artifact_misses")
                return None
            if payload.get("fingerprint") != code_fingerprint():
                # Written by different code (older package, another LP backend):
                # the spec alone no longer guarantees the numbers, so recompute.
                self._count("artifact_misses")
                return None
            result = PointResult.from_dict(payload["point"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # A truncated write, corrupt JSON, or a payload whose shape the
            # deserializer rejects is a cache *miss*, never a crash: the point
            # is recomputed and the bad file overwritten in place.
            self._count("artifact_misses")
            return None
        result.from_cache = True
        self._count("artifact_hits")
        return result

    def _store_artifact(self, key: str, result: PointResult) -> None:
        path = self._artifact_path(key)
        if path is None:
            return
        payload = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "fingerprint": code_fingerprint(),
            "point": result.to_dict(),
        }
        os.makedirs(self.cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
