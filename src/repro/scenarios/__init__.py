"""Declarative scenario subsystem.

Every experiment in this repository — a paper figure, a table, an emulation
run, a CLI invocation — is described by a serializable
:class:`~repro.scenarios.spec.ScenarioSpec` and executed by the
:class:`~repro.scenarios.runner.ExperimentRunner`, which shares catalogues,
profiles and compiled LP skeletons across sweep points and memoizes finished
points in an on-disk artifact cache keyed by the spec's content hash.
Named paper scenarios live in :mod:`repro.scenarios.registry`.
"""

from repro.scenarios.results import PointResult, ResultSet
from repro.scenarios.runner import ExperimentRunner, ParameterSweep, SweepPoint
from repro.scenarios.spec import (
    EMULATION_DEFAULTS,
    OPERATE_DEFAULTS,
    WORKFLOWS,
    ScenarioSpec,
)
from repro.scenarios.registry import (
    BENCH_SEARCH,
    GREEN_FRACTIONS,
    MIGRATION_FACTORS,
    SOURCE_LABELS,
    SOURCE_VALUES,
    ScenarioDefinition,
    bench_base,
    build_sweep,
    get_scenario,
    register_scenario,
    scenario_names,
    source_label,
)

__all__ = [
    "BENCH_SEARCH",
    "EMULATION_DEFAULTS",
    "ExperimentRunner",
    "OPERATE_DEFAULTS",
    "GREEN_FRACTIONS",
    "MIGRATION_FACTORS",
    "ParameterSweep",
    "PointResult",
    "ResultSet",
    "SOURCE_LABELS",
    "SOURCE_VALUES",
    "ScenarioDefinition",
    "ScenarioSpec",
    "SweepPoint",
    "WORKFLOWS",
    "bench_base",
    "build_sweep",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "source_label",
]
