"""Geographic substrate: coordinates, infrastructure distances and regional prices.

The placement framework needs, for every candidate location, the distance to
the nearest brown power plant (for ``costLinePow`` and the brown-power cap),
the distance to the nearest network backbone connection point (for
``costLineNet``), the local industrial land price and the local grid
electricity price.  The paper scraped those from public web sources; here the
same quantities are produced by deterministic regional models plus an
infrastructure map with nearest-neighbour queries.
"""

from repro.geo.coordinates import GeoPoint, haversine_km, nearest_point
from repro.geo.grid import GridEnergyPricing, RegionalEnergyPrice
from repro.geo.infrastructure import (
    BackbonePoint,
    InfrastructureMap,
    PowerPlant,
    synthesize_infrastructure,
)
from repro.geo.land import LandPriceModel

__all__ = [
    "BackbonePoint",
    "GeoPoint",
    "GridEnergyPricing",
    "InfrastructureMap",
    "LandPriceModel",
    "PowerPlant",
    "RegionalEnergyPrice",
    "haversine_km",
    "nearest_point",
    "synthesize_infrastructure",
]
