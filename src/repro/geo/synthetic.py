"""Dense synthetic candidate catalogues for catalogue-scale benchmarking.

:func:`~repro.weather.locations.build_world_catalog` reproduces the paper's
1373-location set; its locations are drawn from one sequential RNG, so the
attributes of location *i* depend on every draw before it — two catalogues of
different sizes share no locations.  This module grows the same banded world
synthesis to 5k/10k/20k candidates with *per-location* determinism: each
location's RNG is seeded from ``crc32(f"{seed}:{name}")`` (the idiom of
:mod:`repro.geo.grid`), so ``build_grid_catalog(20_000)`` is a strict
superset of ``build_grid_catalog(5_000)`` — scaling curves measured on nested
catalogues vary only the catalogue size, never the site mix of the shared
prefix.

Band counts use largest-remainder apportionment of the same continent
weights, and latitudes/longitudes fill each band on a deterministic
low-discrepancy (golden-ratio) lattice jittered per location, so density
grows evenly instead of clumping.
"""

from __future__ import annotations

import zlib
from typing import List

import numpy as np

from repro.geo.coordinates import GeoPoint
from repro.weather.locations import (
    ANCHOR_LOCATIONS,
    Location,
    WorldCatalog,
    _SYNTHETIC_BANDS,
    _climate_for,
)

__all__ = ["build_grid_catalog"]

#: Golden-ratio conjugate: the increment of the 1-D low-discrepancy sequence
#: used to spread sites across each band's longitude range.
_GOLDEN = 0.6180339887498949


def _band_counts(total: int) -> List[int]:
    """Largest-remainder apportionment of ``total`` sites over the bands."""
    weights = np.array([band[5] for band in _SYNTHETIC_BANDS], dtype=float)
    shares = total * weights / weights.sum()
    counts = np.floor(shares).astype(int)
    remainders = shares - counts
    for index in np.argsort(-remainders, kind="stable")[: total - int(counts.sum())]:
        counts[index] += 1
    return [int(count) for count in counts]


def build_grid_catalog(num_locations: int, seed: int = 2014) -> WorldCatalog:
    """A dense deterministic world catalogue of ``num_locations`` candidates.

    Includes the paper's anchor locations, then fills the continent bands of
    :data:`~repro.weather.locations._SYNTHETIC_BANDS` proportionally to their
    weights.  Every synthetic location is generated from its own
    name-derived seed, so catalogues of different sizes agree on their common
    locations (nested catalogues) and the result is independent of build
    order.
    """
    if num_locations < 1:
        raise ValueError("the catalogue needs at least one location")
    locations: List[Location] = list(
        ANCHOR_LOCATIONS[: min(len(ANCHOR_LOCATIONS), num_locations)]
    )
    remaining = num_locations - len(locations)
    for band, count in zip(_SYNTHETIC_BANDS, _band_counts(max(0, remaining))):
        band_name, lat_min, lat_max, lon_min, lon_max, _ = band
        for index in range(count):
            name = f"grid-{band_name}-{index:05d}"
            rng = np.random.default_rng(zlib.crc32(f"{seed}:{name}".encode()))
            # Low-discrepancy placement plus a small per-location jitter: the
            # lattice position depends only on the index, the jitter only on
            # the location's own RNG stream.
            u = (index * _GOLDEN) % 1.0
            longitude = lon_min + (lon_max - lon_min) * (
                (u + 0.05 * float(rng.uniform(-1.0, 1.0))) % 1.0
            )
            latitude = float(rng.uniform(lat_min, lat_max))
            locations.append(
                Location(
                    name=name,
                    point=GeoPoint(latitude, float(longitude)),
                    climate=_climate_for(latitude, rng),
                    country=band_name,
                    urbanisation=float(rng.uniform(0.1, 0.9)),
                )
            )
    return WorldCatalog(locations[:num_locations])
