"""Brown power plants and network backbone connection points.

The paper gathers a catalogue of power plants with capacity >= 100 MW and a
list of IPv6 backbone connection points, then charges $310K/km to lay a power
line to the nearest plant and $300K/km to lay fiber to the nearest backbone
point.  The plant capacity also caps the brown power a datacenter at that
location may draw (constraint 10 of Fig. 1).

We do not have the original web-scraped catalogues, so
:func:`synthesize_infrastructure` builds a deterministic synthetic map whose
density mirrors the paper's qualitative description: dense infrastructure in
North America, Europe and East Asia, sparse elsewhere.  Anchor locations used
in the paper's tables carry their published distances directly (see
``repro.weather.locations``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.geo.coordinates import GeoPoint, haversine_km


@dataclass(frozen=True)
class PowerPlant:
    """A grid ("brown") power plant of at least 100 MW."""

    name: str
    point: GeoPoint
    capacity_kw: float

    def __post_init__(self) -> None:
        if self.capacity_kw < 100_000:
            raise ValueError(
                f"power plant {self.name!r} has capacity {self.capacity_kw} kW; the "
                "catalogue only contains plants of 100 MW or more"
            )


@dataclass(frozen=True)
class BackbonePoint:
    """A network backbone (IPv6) connection point."""

    name: str
    point: GeoPoint


@dataclass
class InfrastructureMap:
    """Catalogue of power plants and backbone points with nearest queries."""

    plants: List[PowerPlant] = field(default_factory=list)
    backbones: List[BackbonePoint] = field(default_factory=list)

    def nearest_plant(self, point: GeoPoint) -> Tuple[Optional[PowerPlant], float]:
        """Nearest brown power plant and its distance in km."""
        return _nearest(point, self.plants)

    def nearest_backbone(self, point: GeoPoint) -> Tuple[Optional[BackbonePoint], float]:
        """Nearest backbone connection point and its distance in km."""
        return _nearest(point, self.backbones)

    def nearest_plant_capacity_kw(self, point: GeoPoint) -> float:
        """Capacity of the nearest plant (``nearPlantCap(d)``), 0 if none."""
        plant, _ = self.nearest_plant(point)
        return plant.capacity_kw if plant else 0.0


def _nearest(point: GeoPoint, items):
    best = None
    best_distance = float("inf")
    for item in items:
        distance = haversine_km(point, item.point)
        if distance < best_distance:
            best, best_distance = item, distance
    return best, best_distance


# Regions used to modulate infrastructure density.  Each entry is
# (name, lat_min, lat_max, lon_min, lon_max, plant_density, backbone_density)
# where densities are points per 15-degree cell.
_REGIONS = (
    ("north-america", 25.0, 60.0, -130.0, -60.0, 6, 5),
    ("europe", 36.0, 65.0, -10.0, 40.0, 6, 6),
    ("east-asia", 20.0, 50.0, 100.0, 145.0, 5, 4),
    ("south-america", -40.0, 10.0, -80.0, -35.0, 2, 2),
    ("africa", -35.0, 35.0, -15.0, 50.0, 2, 1),
    ("oceania", -45.0, -10.0, 110.0, 155.0, 2, 2),
    ("south-asia", 5.0, 35.0, 60.0, 100.0, 3, 2),
)


def synthesize_infrastructure(seed: int = 7) -> InfrastructureMap:
    """Build a deterministic synthetic world infrastructure map.

    The map contains a few hundred power plants (100 MW - 4 GW) and a couple
    of hundred backbone points, distributed so that well-connected regions
    end up within tens of kilometres of infrastructure while remote areas can
    be several hundred kilometres away — matching the distance ranges the
    paper reports in Table II (7 km to ~400 km).
    """
    rng = np.random.default_rng(seed)
    plants: List[PowerPlant] = []
    backbones: List[BackbonePoint] = []
    for name, lat_min, lat_max, lon_min, lon_max, plant_density, backbone_density in _REGIONS:
        lat_cells = max(1, int(math.ceil((lat_max - lat_min) / 15.0)))
        lon_cells = max(1, int(math.ceil((lon_max - lon_min) / 15.0)))
        for i in range(lat_cells):
            for j in range(lon_cells):
                cell_lat_min = lat_min + i * 15.0
                cell_lat_max = min(lat_max, cell_lat_min + 15.0)
                cell_lon_min = lon_min + j * 15.0
                cell_lon_max = min(lon_max, cell_lon_min + 15.0)
                for k in range(plant_density):
                    lat = float(rng.uniform(cell_lat_min, cell_lat_max))
                    lon = float(rng.uniform(cell_lon_min, cell_lon_max))
                    capacity_mw = float(rng.uniform(100.0, 4000.0))
                    plants.append(
                        PowerPlant(
                            name=f"plant-{name}-{i}-{j}-{k}",
                            point=GeoPoint(lat, lon),
                            capacity_kw=capacity_mw * 1000.0,
                        )
                    )
                for k in range(backbone_density):
                    lat = float(rng.uniform(cell_lat_min, cell_lat_max))
                    lon = float(rng.uniform(cell_lon_min, cell_lon_max))
                    backbones.append(
                        BackbonePoint(
                            name=f"backbone-{name}-{i}-{j}-{k}",
                            point=GeoPoint(lat, lon),
                        )
                    )
    return InfrastructureMap(plants=plants, backbones=backbones)
