"""Grid ("brown") electricity pricing (``priceEnergy(d)``).

The paper reports an average grid price of about $90/MWh across its 1373
locations with substantial regional variation (Table II shows $22/MWh in
Ukraine up to $126/MWh at Mount Washington).  This module provides a
deterministic regional price model with per-location overrides for the
anchor locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import zlib

import numpy as np

from repro.geo.coordinates import GeoPoint


@dataclass(frozen=True)
class RegionalEnergyPrice:
    """Average grid price for a coarse world region, $/kWh."""

    name: str
    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float
    price_per_kwh: float

    def contains(self, point: GeoPoint) -> bool:
        return (
            self.lat_min <= point.latitude <= self.lat_max
            and self.lon_min <= point.longitude <= self.lon_max
        )


_DEFAULT_REGIONS = (
    RegionalEnergyPrice("north-america", 25.0, 60.0, -130.0, -60.0, 0.070),
    RegionalEnergyPrice("europe", 36.0, 65.0, -10.0, 40.0, 0.110),
    RegionalEnergyPrice("eastern-europe", 44.0, 60.0, 22.0, 45.0, 0.035),
    RegionalEnergyPrice("east-asia", 20.0, 50.0, 100.0, 145.0, 0.095),
    RegionalEnergyPrice("south-america", -40.0, 10.0, -80.0, -35.0, 0.085),
    RegionalEnergyPrice("africa", -35.0, 35.0, -15.0, 50.0, 0.080),
    RegionalEnergyPrice("oceania", -45.0, -10.0, 110.0, 155.0, 0.105),
    RegionalEnergyPrice("south-asia", 5.0, 35.0, 60.0, 100.0, 0.075),
)


@dataclass
class GridEnergyPricing:
    """Deterministic grid electricity price model in $/kWh."""

    default_price_per_kwh: float = 0.090
    seed: int = 13
    regions: tuple = _DEFAULT_REGIONS
    _overrides: Dict[str, float] = field(default_factory=dict)

    def set_override(self, location_name: str, price_per_kwh: float) -> None:
        """Pin the grid price of a named location (used for anchor locations)."""
        if price_per_kwh < 0:
            raise ValueError("grid energy price cannot be negative")
        self._overrides[location_name] = float(price_per_kwh)

    def price_per_kwh(self, name: str, point: GeoPoint) -> float:
        """Grid electricity price for a location, $/kWh."""
        if name in self._overrides:
            return self._overrides[name]
        base = self.default_price_per_kwh
        for region in self.regions:
            if region.contains(point):
                base = region.price_per_kwh
                break
        # zlib.crc32 is stable across processes, unlike built-in str hashing
        # (randomised by PYTHONHASHSEED), so catalogues are reproducible.
        rng = np.random.default_rng(zlib.crc32(f"{self.seed}:{name}".encode()))
        jitter = float(rng.uniform(0.85, 1.25))
        return float(max(0.015, base * jitter))

    def price_per_mwh(self, name: str, point: GeoPoint) -> float:
        """Grid electricity price in $/MWh (as quoted in Table II)."""
        return 1000.0 * self.price_per_kwh(name, point)
