"""Industrial land price model (``priceLand(d)``).

The paper derives US land prices from a real-estate portal and non-US prices
from assorted web sources, reporting values between roughly $10/m^2 (rural
Africa) and ~$1000/m^2 (prime sites such as Mount Washington's surroundings in
Table II).  We model the price as a deterministic function of latitude band
and a per-location "urbanisation" factor so that the distribution covers the
same range, and let anchor locations override the model with the exact values
from Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import zlib

import numpy as np

from repro.geo.coordinates import GeoPoint


@dataclass
class LandPriceModel:
    """Deterministic land-price generator in $/m^2.

    Parameters
    ----------
    base_price:
        Median industrial land price in $/m^2.
    seed:
        Seed for the deterministic per-location jitter.
    """

    base_price: float = 60.0
    seed: int = 11
    _overrides: Dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.base_price <= 0:
            raise ValueError("base land price must be positive")
        self._overrides = {}

    def set_override(self, location_name: str, price_per_m2: float) -> None:
        """Pin the land price of a named location (used for anchor locations)."""
        if price_per_m2 < 0:
            raise ValueError("land price cannot be negative")
        self._overrides[location_name] = float(price_per_m2)

    def price_per_m2(self, name: str, point: GeoPoint, urbanisation: float = 0.5) -> float:
        """Industrial land price for a location.

        ``urbanisation`` in [0, 1] scales the price between remote-rural and
        metropolitan values; the latitude band adds the broad cheap-tropics /
        expensive-temperate structure visible in the paper's data.
        """
        if name in self._overrides:
            return self._overrides[name]
        if not 0.0 <= urbanisation <= 1.0:
            raise ValueError("urbanisation factor must be within [0, 1]")
        abs_latitude = abs(point.latitude)
        if abs_latitude < 23.5:
            band_factor = 0.35
        elif abs_latitude < 45.0:
            band_factor = 1.0
        else:
            band_factor = 0.8
        jitter = self._jitter(name)
        price = self.base_price * band_factor * (0.2 + 1.8 * urbanisation) * jitter
        return float(max(5.0, price))

    def _jitter(self, name: str) -> float:
        # zlib.crc32 is stable across processes, unlike built-in str hashing
        # (randomised by PYTHONHASHSEED), so catalogues are reproducible.
        rng = np.random.default_rng(zlib.crc32(f"{self.seed}:{name}".encode()))
        return float(rng.lognormal(mean=0.0, sigma=0.5))
