"""Geographic coordinates and great-circle distances."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, TypeVar

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the globe in decimal degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude {self.latitude} out of range [-90, 90]")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude {self.longitude} out of range [-180, 180]")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle (haversine) distance between two points, in kilometres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


T = TypeVar("T")


def nearest_point(
    origin: GeoPoint,
    candidates: Sequence[T],
    point_of: Optional[callable] = None,
) -> Tuple[Optional[T], float]:
    """Return ``(nearest candidate, distance_km)`` from ``origin``.

    ``point_of`` extracts a :class:`GeoPoint` from each candidate; by default
    the candidate is assumed to expose a ``point`` attribute.  Returns
    ``(None, inf)`` when ``candidates`` is empty.
    """
    if point_of is None:
        point_of = lambda item: item.point  # noqa: E731 - tiny accessor
    best: Optional[T] = None
    best_distance = float("inf")
    for candidate in candidates:
        distance = haversine_km(origin, point_of(candidate))
        if distance < best_distance:
            best, best_distance = candidate, distance
    return best, best_distance


def bounding_latitudes(points: Iterable[GeoPoint]) -> Tuple[float, float]:
    """Smallest and largest latitude in an iterable of points."""
    latitudes = [p.latitude for p in points]
    if not latitudes:
        raise ValueError("bounding_latitudes requires at least one point")
    return min(latitudes), max(latitudes)
