"""Command-line interface for the placement tool and the GreenNebula emulation.

Three subcommands mirror the library's main workflows:

``plan``
    Site and provision a green datacenter network (Sections II-IV)::

        python -m repro.cli plan --capacity-mw 50 --green 0.5 --storage net_metering

``single-site``
    Price a single datacenter at a named catalogue location (Fig. 6 / Table II)::

        python -m repro.cli single-site --location "Nairobi, Kenya" --green 0.5

``emulate``
    Run the GreenNebula follow-the-renewables emulation for a day (Section V)::

        python -m repro.cli emulate --hours 24 --vms 9

All subcommands accept ``--locations`` (catalogue size) and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import case_study_breakdown, format_table
from repro.core import (
    EnergySources,
    GreenEnforcement,
    PlacementTool,
    SearchSettings,
    SingleSiteAnalyzer,
    StorageMode,
)
from repro.energy import EpochGrid, ProfileBuilder
from repro.greennebula import EmulatedCloud, EmulationConfig
from repro.greennebula.emulation import DatacenterSpec
from repro.weather import build_world_catalog

_SOURCES = {
    "wind": EnergySources.WIND_ONLY,
    "solar": EnergySources.SOLAR_ONLY,
    "both": EnergySources.SOLAR_AND_WIND,
    "none": EnergySources.NONE,
}
_STORAGE = {
    "net_metering": StorageMode.NET_METERING,
    "batteries": StorageMode.BATTERIES,
    "none": StorageMode.NONE,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Green datacenter siting/provisioning and GreenNebula emulation",
    )
    parser.add_argument("--locations", type=int, default=90, help="catalogue size")
    parser.add_argument("--seed", type=int, default=2014, help="catalogue / search seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan = subparsers.add_parser("plan", help="site and provision a datacenter network")
    plan.add_argument("--capacity-mw", type=float, default=50.0, help="compute power to serve")
    plan.add_argument("--green", type=float, default=0.5, help="minimum green fraction [0-1]")
    plan.add_argument("--sources", choices=sorted(_SOURCES), default="both")
    plan.add_argument("--storage", choices=sorted(_STORAGE), default="net_metering")
    plan.add_argument("--migration-factor", type=float, default=1.0)
    plan.add_argument("--net-meter-credit", type=float, default=1.0)
    plan.add_argument("--strict-green", action="store_true",
                      help="enforce the green fraction in every epoch instead of annually")
    plan.add_argument("--iterations", type=int, default=25, help="SA iterations per chain")
    plan.add_argument("--keep", type=int, default=10, help="locations kept after filtering")
    plan.add_argument("--chains", type=int, default=2, help="SA chains")

    single = subparsers.add_parser("single-site", help="price one datacenter at a location")
    single.add_argument("--location", required=True, help="catalogue location name")
    single.add_argument("--capacity-mw", type=float, default=25.0)
    single.add_argument("--green", type=float, default=0.5)
    single.add_argument("--sources", choices=sorted(_SOURCES), default="both")
    single.add_argument("--storage", choices=sorted(_STORAGE), default="net_metering")

    emulate = subparsers.add_parser("emulate", help="run the GreenNebula emulation")
    emulate.add_argument("--hours", type=int, default=24)
    emulate.add_argument("--vms", type=int, default=9)
    emulate.add_argument(
        "--sites",
        nargs="+",
        default=["Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"],
        help="catalogue locations hosting the emulated datacenters",
    )
    emulate.add_argument("--solar-factor", type=float, default=7.0,
                         help="installed solar as a multiple of the fleet IT power")
    emulate.add_argument("--wind-factor", type=float, default=0.4,
                         help="installed wind as a multiple of the fleet IT power")
    return parser


def _print(lines: Sequence[str], stream) -> None:
    for line in lines:
        print(line, file=stream)


def run_plan(args: argparse.Namespace, stream) -> int:
    catalog = build_world_catalog(num_locations=args.locations, seed=args.seed)
    tool = PlacementTool(catalog=catalog)
    settings = SearchSettings(
        keep_locations=args.keep,
        max_iterations=args.iterations,
        num_chains=args.chains,
        seed=args.seed,
    )
    solution = tool.plan_network(
        total_capacity_kw=args.capacity_mw * 1000.0,
        min_green_fraction=args.green,
        sources=_SOURCES[args.sources],
        storage=_STORAGE[args.storage],
        migration_factor=args.migration_factor,
        net_meter_credit=args.net_meter_credit,
        settings=settings,
        green_enforcement=(
            GreenEnforcement.PER_EPOCH if args.strict_green else GreenEnforcement.ANNUAL
        ),
    )
    if not solution.feasible or solution.plan is None:
        _print([f"no feasible plan found: {solution.message}"], stream)
        return 1
    plan = solution.plan
    _print(
        [
            plan.describe(),
            "",
            f"achieved green fraction: {100 * plan.green_fraction:.1f} %",
            f"network availability   : {100 * plan.availability:.4f} %",
            f"LP evaluations         : {solution.evaluations}",
            "",
            format_table(case_study_breakdown(plan)),
        ],
        stream,
    )
    return 0


def run_single_site(args: argparse.Namespace, stream) -> int:
    catalog = build_world_catalog(num_locations=args.locations, seed=args.seed)
    try:
        location = catalog.get(args.location)
    except KeyError:
        _print([f"unknown location {args.location!r}; known anchors include:"], stream)
        anchors = [loc.name for loc in catalog.locations if loc.is_anchor]
        _print([f"  {name}" for name in anchors], stream)
        return 1
    builder = ProfileBuilder(catalog)
    profile = builder.build(location, EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3))
    analyzer = SingleSiteAnalyzer()
    result = analyzer.cost_at(
        profile,
        capacity_kw=args.capacity_mw * 1000.0,
        min_green_fraction=args.green,
        sources=_SOURCES[args.sources],
        storage=_STORAGE[args.storage],
    )
    if not result.feasible:
        _print([f"a {args.capacity_mw:.0f} MW datacenter is not feasible at {args.location}"], stream)
        return 1
    _print([format_table([result.table_row()])], stream)
    return 0


def run_emulate(args: argparse.Namespace, stream) -> int:
    catalog = build_world_catalog(num_locations=max(args.locations, 30), seed=args.seed)
    builder = ProfileBuilder(catalog)
    grid = EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=1)
    fleet_kw = args.vms * 0.03
    try:
        specs = [
            DatacenterSpec(
                name=name,
                profile=builder.build(catalog.get(name), grid),
                it_capacity_kw=fleet_kw * 1.3,
                solar_kw=fleet_kw * args.solar_factor,
                wind_kw=fleet_kw * args.wind_factor,
            )
            for name in args.sites
        ]
    except KeyError as error:
        _print([f"unknown emulation site: {error}"], stream)
        return 1
    config = EmulationConfig(
        num_vms=args.vms,
        duration_hours=args.hours,
        initial_datacenter=args.sites[-1],
        seed=args.seed,
    )
    cloud = EmulatedCloud(specs, config)
    summary = cloud.run()
    _print(
        [
            f"emulated {args.hours} hours over {len(specs)} datacenters with {args.vms} VMs",
            f"migrations          : {summary.total_migrations}",
            f"migrated state      : {summary.migrated_state_mb:.0f} MB",
            f"green fraction      : {100 * summary.green_fraction:.1f} %",
            f"mean scheduling time: {1000 * summary.mean_schedule_time_s:.0f} ms",
        ],
        stream,
    )
    for dc in cloud.datacenters:
        series = " ".join(f"{value:5.2f}" for value in cloud.load_series(dc.name))
        _print([f"  {dc.name:<28} {series}"], stream)
    return 0


def main(argv: Optional[List[str]] = None, stream=None) -> int:
    """CLI entry point; returns the process exit code."""
    stream = stream or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "plan":
        return run_plan(args, stream)
    if args.command == "single-site":
        return run_single_site(args, stream)
    if args.command == "emulate":
        return run_emulate(args, stream)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
