"""Command-line interface for the placement tool and the GreenNebula emulation.

Four subcommands mirror the library's main workflows; all of them build a
:class:`~repro.scenarios.spec.ScenarioSpec` from their arguments and run it
through the :class:`~repro.scenarios.runner.ExperimentRunner`, so a CLI
invocation and a registered scenario are the same thing underneath.

``plan``
    Site and provision a green datacenter network (Sections II-IV)::

        python -m repro.cli plan --capacity-mw 50 --green 0.5 --storage net_metering

``single-site``
    Price a single datacenter at a named catalogue location (Fig. 6 / Table II)::

        python -m repro.cli single-site --location "Nairobi, Kenya" --green 0.5

``emulate``
    Run the GreenNebula follow-the-renewables emulation for a day (Section V)::

        python -m repro.cli emulate --hours 24 --vms 9

``sweep``
    Reproduce a registered paper scenario (``--list`` shows them), or sweep a
    spec file, with results cached on disk by content hash::

        python -m repro.cli sweep --scenario fig06
        python -m repro.cli sweep --spec my_scenario.json --set min_green_fraction=1.0
        python -m repro.cli sweep --scenario sec3d --executor process --workers 4

``operate``
    Replay an operating run of a provisioned plan — traffic synthesis,
    rolling re-forecasts, incremental sliding-window dispatch, oracle-vs-
    forecast regret (Section V at fleet scale)::

        python -m repro.cli operate --scenario operate-fig06 --steps 168
        python -m repro.cli operate --scenario operate-forecast --json

``serve``
    Run the planning-as-a-service daemon: ScenarioSpec JSON in, point
    records out, over HTTP (``POST /plan``, ``GET /metrics``,
    ``GET /healthz``) or newline-delimited JSON on stdin/stdout.  Identical
    in-flight requests dedup onto one solve; a persistent worker pool keeps
    compiled-skeleton/problem/catalogue caches warm across requests::

        python -m repro.cli serve --port 8734 --executor process --workers 4
        python -m repro.cli serve --stdin --executor serial < requests.ndjson

``cache``
    Inspect or clear the on-disk artifact cache (``--server`` asks a running
    serve daemon for its worker-cache hit rates instead)::

        python -m repro.cli cache info
        python -m repro.cli cache info --server http://127.0.0.1:8734
        python -m repro.cli cache clear

All subcommands accept ``--locations`` (catalogue size) and ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Optional, Sequence

from repro.analysis import case_study_breakdown, format_table
from repro.core import EnergySources, GreenEnforcement, StorageMode
from repro.parallel import EXECUTOR_KINDS
from repro.scenarios import (
    ExperimentRunner,
    ParameterSweep,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)
from repro.scenarios.runner import clear_artifact_cache

_SOURCES = {
    "wind": EnergySources.WIND_ONLY.value,
    "solar": EnergySources.SOLAR_ONLY.value,
    "both": EnergySources.SOLAR_AND_WIND.value,
    "none": EnergySources.NONE.value,
}
_STORAGE = {
    "net_metering": StorageMode.NET_METERING.value,
    "batteries": StorageMode.BATTERIES.value,
    "none": StorageMode.NONE.value,
}

#: Default on-disk artifact cache of the ``sweep`` subcommand.
DEFAULT_CACHE_DIR = ".repro-cache"


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Green datacenter siting/provisioning and GreenNebula emulation",
    )
    parser.add_argument("--locations", type=int, default=90, help="catalogue size")
    parser.add_argument("--seed", type=int, default=2014, help="catalogue / search seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan = subparsers.add_parser("plan", help="site and provision a datacenter network")
    plan.add_argument("--capacity-mw", type=float, default=50.0, help="compute power to serve")
    plan.add_argument("--green", type=float, default=0.5, help="minimum green fraction [0-1]")
    plan.add_argument("--sources", choices=sorted(_SOURCES), default="both")
    plan.add_argument("--storage", choices=sorted(_STORAGE), default="net_metering")
    plan.add_argument("--migration-factor", type=float, default=1.0)
    plan.add_argument("--net-meter-credit", type=float, default=1.0)
    plan.add_argument("--strict-green", action="store_true",
                      help="enforce the green fraction in every epoch instead of annually")
    plan.add_argument("--iterations", type=int, default=25, help="SA iterations per chain")
    plan.add_argument("--keep", type=int, default=10, help="locations kept after filtering")
    plan.add_argument("--chains", type=int, default=2, help="SA chains")
    plan.add_argument("--survive-n1", action="store_true",
                      help="additionally compute an N-1 survivable sizing: unserved energy "
                           "within the epsilon budget under every single-site outage")
    plan.add_argument("--survivability-epsilon", type=float, default=0.05,
                      help="N-1 unserved-energy budget as a fraction of annual demand "
                           "(default: 0.05)")

    single = subparsers.add_parser("single-site", help="price one datacenter at a location")
    single.add_argument("--location", required=True, help="catalogue location name")
    single.add_argument("--capacity-mw", type=float, default=25.0)
    single.add_argument("--green", type=float, default=0.5)
    single.add_argument("--sources", choices=sorted(_SOURCES), default="both")
    single.add_argument("--storage", choices=sorted(_STORAGE), default="net_metering")

    emulate = subparsers.add_parser("emulate", help="run the GreenNebula emulation")
    emulate.add_argument("--hours", type=int, default=24)
    emulate.add_argument("--vms", type=int, default=9)
    emulate.add_argument(
        "--sites",
        nargs="+",
        default=["Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"],
        help="catalogue locations hosting the emulated datacenters",
    )
    emulate.add_argument("--solar-factor", type=float, default=7.0,
                         help="installed solar as a multiple of the fleet IT power")
    emulate.add_argument("--wind-factor", type=float, default=0.4,
                         help="installed wind as a multiple of the fleet IT power")

    sweep = subparsers.add_parser(
        "sweep", help="run a registered paper scenario or a scenario-spec sweep"
    )
    sweep.add_argument("--scenario", help="registered scenario name (see --list)")
    sweep.add_argument("--spec", help="path to a ScenarioSpec JSON file")
    sweep.add_argument("--list", action="store_true", help="list registered scenarios and exit")
    sweep.add_argument("--set", action="append", default=[], metavar="FIELD=VALUE",
                       help="override a spec field (dotted paths reach search/emulation knobs)")
    sweep.add_argument("--axis", action="append", default=[], metavar="FIELD=V1,V2,...",
                       help="sweep a field over comma-separated values (cartesian with other axes)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="sweep points evaluated concurrently "
                            "(default: CPUs available to this process; results are identical)")
    sweep.add_argument("--executor", choices=EXECUTOR_KINDS, default="thread",
                       help="how sweep points execute: thread (default), process "
                            "(true multi-core scaling) or serial; results are identical")
    sweep.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"artifact-cache directory (default: {DEFAULT_CACHE_DIR})")
    sweep.add_argument("--no-cache", action="store_true", help="disable the artifact cache")
    sweep.add_argument("--json", action="store_true", help="print the ResultSet as JSON")

    operate = subparsers.add_parser(
        "operate", help="replay an operating run of a provisioned plan (rolling horizon)"
    )
    operate.add_argument("--scenario", default="operate-fig06",
                         help="registered operate-* scenario name (default: operate-fig06)")
    operate.add_argument("--spec", help="path to an operate-workflow ScenarioSpec JSON file")
    operate.add_argument("--steps", type=int, default=None,
                         help="operating steps to replay (overrides the scenario)")
    operate.add_argument("--horizon", type=int, default=None,
                         help="dispatch look-ahead window in hours")
    operate.add_argument("--forecast-error", type=float, default=None,
                         help="noisy-oracle forecast error level")
    operate.add_argument("--set", action="append", default=[], metavar="FIELD=VALUE",
                         help="override a spec field (dotted paths reach operate knobs)")
    operate.add_argument("--workers", type=int, default=None)
    operate.add_argument("--executor", choices=EXECUTOR_KINDS, default="thread")
    operate.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         help=f"artifact-cache directory (default: {DEFAULT_CACHE_DIR})")
    operate.add_argument("--no-cache", action="store_true", help="disable the artifact cache")
    operate.add_argument("--json", action="store_true", help="print the ResultSet as JSON")

    stress = subparsers.add_parser(
        "stress",
        help="score a scenario against weather/demand ensembles and injected faults",
    )
    stress.add_argument("--scenario", default="robust-fig06",
                        help="registered scenario with an ensemble and/or faults block "
                             "(default: robust-fig06)")
    stress.add_argument("--spec", help="path to a ScenarioSpec JSON file")
    stress.add_argument("--draws", type=int, default=None,
                        help="ensemble size (overrides the scenario's ensemble.draws)")
    stress.add_argument("--alpha", type=float, default=None,
                        help="CVaR tail level (overrides ensemble.alpha)")
    stress.add_argument("--mode", choices=("saa", "stochastic"), default=None,
                        help="ensemble mode (overrides ensemble.mode)")
    stress.add_argument("--set", action="append", default=[], metavar="FIELD=VALUE",
                        help="override a spec field (dotted paths reach ensemble/faults knobs)")
    stress.add_argument("--fail-on", action="append", default=[], metavar="METRIC=THRESHOLD",
                        help="exit non-zero when a flattened record metric exceeds the "
                             "threshold (e.g. stress_unserved_kwh=1000 or stress_degraded=0); "
                             "repeatable — CI gates build on this")
    stress.add_argument("--workers", type=int, default=None)
    stress.add_argument("--executor", choices=EXECUTOR_KINDS, default="thread")
    stress.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"artifact-cache directory (default: {DEFAULT_CACHE_DIR})")
    stress.add_argument("--no-cache", action="store_true", help="disable the artifact cache")
    stress.add_argument("--json", action="store_true", help="print the ResultSet as JSON")

    serve = subparsers.add_parser(
        "serve", help="run the planning daemon (HTTP or newline-delimited-JSON stdin)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    serve.add_argument("--port", type=int, default=8734,
                       help="HTTP port (0 picks a free one; default: 8734)")
    serve.add_argument("--stdin", action="store_true",
                       help="serve newline-delimited JSON on stdin/stdout instead of HTTP")
    serve.add_argument("--executor", choices=EXECUTOR_KINDS, default="process",
                       help="how requests solve: process (default; persistent warm worker "
                            "pool), thread or serial; records are identical")
    serve.add_argument("--workers", type=int, default=None,
                       help="pool size (default: CPUs available to this process)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="distinct in-flight solves admitted before requests are "
                            "answered 'overloaded' (deduped waiters are free; default: 64)")
    serve.add_argument("--timeout", type=float, default=300.0,
                       help="per-request wait in seconds before a typed 'timeout' "
                            "response (the solve continues; 0 disables; default: 300)")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       help="seconds SIGTERM waits for in-flight solves (default: 30)")
    serve.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"artifact-cache directory shared with sweeps "
                            f"(default: {DEFAULT_CACHE_DIR})")
    serve.add_argument("--no-cache", action="store_true", help="disable the artifact cache")

    cache = subparsers.add_parser("cache", help="inspect or clear the sweep artifact cache")
    cache.add_argument("action", choices=("info", "clear"),
                       help="info: show the cache location and size; clear: delete stored points")
    cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"artifact-cache directory (default: {DEFAULT_CACHE_DIR})")
    cache.add_argument("--server", metavar="URL",
                       help="with info: also query a running serve daemon's /metrics for "
                            "worker-cache hit rates (e.g. http://127.0.0.1:8734)")
    return parser


def _print(lines: Sequence[str], stream) -> None:
    for line in lines:
        print(line, file=stream)


def _print_plan_solution(solution, stream) -> int:
    if not solution.feasible or solution.plan is None:
        _print([f"no feasible plan found: {solution.message}"], stream)
        return 1
    plan = solution.plan
    _print(
        [
            plan.describe(),
            "",
            f"achieved green fraction: {100 * plan.green_fraction:.1f} %",
            f"network availability   : {100 * plan.availability:.4f} %",
            f"LP evaluations         : {solution.evaluations}",
            "",
            format_table(case_study_breakdown(plan)),
        ],
        stream,
    )
    return 0


def run_plan(args: argparse.Namespace, stream) -> int:
    spec = ScenarioSpec(
        name="cli-plan",
        num_locations=args.locations,
        catalog_seed=args.seed,
        total_capacity_kw=args.capacity_mw * 1000.0,
        min_green_fraction=args.green,
        sources=_SOURCES[args.sources],
        storage=_STORAGE[args.storage],
        migration_factor=args.migration_factor,
        net_meter_credit=args.net_meter_credit,
        green_enforcement=(
            GreenEnforcement.PER_EPOCH.value if args.strict_green
            else GreenEnforcement.ANNUAL.value
        ),
        search={
            "keep_locations": args.keep,
            "max_iterations": args.iterations,
            "num_chains": args.chains,
            "seed": args.seed,
        },
        contingency=(
            {"survivability_epsilon": args.survivability_epsilon}
            if args.survive_n1
            else {}
        ),
    )
    point = ExperimentRunner().run_point(spec)
    code = _print_plan_solution(point.solution, stream)
    report = point.record.get("contingency")
    if code == 0 and report:
        worst = report["worst_case"]
        _print(
            [
                "",
                f"N-1 survivability (epsilon {report['epsilon']:.3f}, "
                f"budget {report['budget_unserved_kwh']:,.0f} kWh/yr):",
                f"  survivable sizing premium: {report['cost_premium_pct']:+.2f} %",
                f"  deterministic worst case : {worst['det']['unserved_kwh']:,.0f} kWh unserved "
                f"(site {worst['det']['site']} dark, "
                f"{report['det_violations']} contingency violation(s))",
                f"  N-1 worst case           : {worst['n1']['unserved_kwh']:,.0f} kWh unserved "
                f"({report['n1_violations']} contingency violation(s))",
                f"  most critical site       : {report['criticality'][0]['site']}",
            ],
            stream,
        )
    return code


def run_single_site(args: argparse.Namespace, stream) -> int:
    spec = ScenarioSpec(
        name="cli-single-site",
        workflow="single_site",
        num_locations=args.locations,
        catalog_seed=args.seed,
        candidate_names=(args.location,),
        total_capacity_kw=args.capacity_mw * 1000.0,
        min_green_fraction=args.green,
        sources=_SOURCES[args.sources],
        storage=_STORAGE[args.storage],
    )
    runner = ExperimentRunner()
    try:
        point = runner.run_point(spec)
    except KeyError:
        _print([f"unknown location {args.location!r}; known anchors include:"], stream)
        catalog = runner.tool_for(spec.with_updates(candidate_names=None)).catalog
        anchors = [loc.name for loc in catalog.locations if loc.is_anchor]
        _print([f"  {name}" for name in anchors], stream)
        return 1
    costs = point.solution
    result = costs[0]
    if not result.feasible:
        _print([f"a {args.capacity_mw:.0f} MW datacenter is not feasible at {args.location}"], stream)
        return 1
    _print([format_table([result.table_row()])], stream)
    return 0


def run_emulate(args: argparse.Namespace, stream) -> int:
    spec = ScenarioSpec(
        name="cli-emulate",
        workflow="emulate",
        num_locations=max(args.locations, 30),
        catalog_seed=args.seed,
        hours_per_epoch=1,
        emulation={
            "sites": tuple(args.sites),
            "num_vms": args.vms,
            "duration_hours": args.hours,
            "seed": args.seed,
            "solar_factor": args.solar_factor,
            "wind_factor": args.wind_factor,
        },
    )
    try:
        point = ExperimentRunner().run_point(spec)
    except KeyError as error:
        _print([f"unknown emulation site: {error}"], stream)
        return 1
    record = point.record
    _print(
        [
            f"emulated {args.hours} hours over {len(record['sites'])} datacenters "
            f"with {args.vms} VMs",
            f"migrations          : {record['total_migrations']}",
            f"migrated state      : {record['migrated_state_mb']:.0f} MB",
            f"green fraction      : {100 * record['green_fraction']:.1f} %",
            f"mean scheduling time: {1000 * record['mean_schedule_time_s']:.0f} ms",
        ],
        stream,
    )
    for name in record["sites"]:
        series = " ".join(f"{value:5.2f}" for value in record["load_series"][name])
        _print([f"  {name:<28} {series}"], stream)
    return 0


def _parse_value(text: str) -> Any:
    """Parse an override value: JSON when it looks like it, else a string."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_assignments(pairs: Sequence[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"expected FIELD=VALUE, got {pair!r}")
        key, _, value = pair.partition("=")
        overrides[key.strip()] = _parse_value(value.strip())
    return overrides


def _parse_axes(pairs: Sequence[str]) -> dict:
    axes = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"expected FIELD=V1,V2,..., got {pair!r}")
        key, _, values = pair.partition("=")
        axes[key.strip()] = [_parse_value(value.strip()) for value in values.split(",")]
    return axes


def run_sweep(args: argparse.Namespace, stream) -> int:
    if args.list:
        rows = []
        for name in scenario_names():
            definition = get_scenario(name)
            sweep = definition.build()
            rows.append(
                {
                    "scenario": name,
                    "workflow": sweep.base.workflow,
                    "points": len(sweep),
                    "description": definition.description,
                }
            )
        _print([format_table(rows)], stream)
        return 0
    if bool(args.scenario) == bool(args.spec):
        _print(["exactly one of --scenario or --spec is required (or --list)"], stream)
        return 2

    if args.scenario:
        try:
            sweep = get_scenario(args.scenario).build()
        except KeyError as error:
            _print([str(error.args[0])], stream)
            return 1
    else:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                base = ScenarioSpec.from_json(handle.read())
        except (OSError, ValueError, KeyError) as error:
            _print([f"cannot load spec {args.spec!r}: {error}"], stream)
            return 1
        sweep = ParameterSweep(base=base)

    try:
        overrides = _parse_assignments(args.set)
        axes = _parse_axes(args.axis)
        if overrides:
            sweep = ParameterSweep(
                base=sweep.base.with_updates(**overrides),
                axes=sweep.axes,
                mode=sweep.mode,
                name=sweep.name,
            )
        if axes:
            merged = dict(sweep.axes)
            merged.update(axes)
            sweep = ParameterSweep(base=sweep.base, axes=merged, mode=sweep.mode, name=sweep.name)
        sweep.points()  # resolve every override now, so bad fields/values fail cleanly
    except (ValueError, KeyError) as error:
        _print([f"invalid scenario override: {error}"], stream)
        return 2

    runner = ExperimentRunner(
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        executor=args.executor,
    )
    results = runner.run(sweep)

    if args.json:
        _print([results.to_json()], stream)
        return 0
    title = sweep.name or "sweep"
    _print(
        [
            f"scenario {title}: {len(results)} points "
            f"({results.computed} computed, {results.cache_hits} from cache)",
            "",
            format_table(results.rows()),
        ],
        stream,
    )
    return 0


def run_operate(args: argparse.Namespace, stream) -> int:
    if args.spec:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                base = ScenarioSpec.from_json(handle.read())
        except (OSError, ValueError, KeyError) as error:
            _print([f"cannot load spec {args.spec!r}: {error}"], stream)
            return 1
        sweep = ParameterSweep(base=base)
    else:
        try:
            sweep = get_scenario(args.scenario).build()
        except KeyError as error:
            _print([str(error.args[0])], stream)
            return 1
    overrides = {}
    if args.steps is not None:
        overrides["operate.steps"] = args.steps
    if args.horizon is not None:
        overrides["operate.horizon_hours"] = args.horizon
    if args.forecast_error is not None:
        overrides["operate.forecast_error"] = args.forecast_error
    try:
        overrides.update(_parse_assignments(args.set))
        if overrides:
            sweep = ParameterSweep(
                base=sweep.base.with_updates(**overrides),
                axes=sweep.axes,
                mode=sweep.mode,
                name=sweep.name,
            )
        sweep.points()
    except (ValueError, KeyError) as error:
        _print([f"invalid scenario override: {error}"], stream)
        return 2
    # Checked after --set overrides: `--set workflow=plan` must be rejected
    # too, not just a non-operate --scenario.
    if sweep.base.workflow != "operate":
        _print([f"scenario {sweep.name!r} is not an operate-workflow scenario"], stream)
        return 2

    runner = ExperimentRunner(
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        executor=args.executor,
    )
    results = runner.run(sweep)
    if args.json:
        _print([results.to_json()], stream)
        return 0

    exit_code = 0
    for point in results:
        record = point.record
        if not record.get("feasible", False):
            _print([f"no feasible plan to operate: {record.get('message', '')}"], stream)
            exit_code = 1
            continue
        label = ", ".join(f"{k}={v}" for k, v in point.overrides.items()) or sweep.name
        _print(
            [
                f"[{label}] operated {record['num_sites']} sites over "
                f"{record['steps']} x {record['step_hours']:g} h steps "
                f"(horizon {record['horizon_steps']} steps, "
                f"{record['load_forecast']}/{record['energy_forecast']} forecasts)",
                f"  forecast-driven cost : ${record['forecast_cost_usd']:,.2f}",
                f"  oracle cost          : ${record['oracle_cost_usd']:,.2f}",
                f"  regret               : ${record['regret_cost_usd']:,.2f} "
                f"({record['regret_cost_pct']:+.2f} %)",
                f"  green fraction       : {100 * record['forecast_green_fraction']:.1f} % "
                f"(oracle {100 * record['oracle_green_fraction']:.1f} %)",
                f"  SLA violation steps  : {record['sla_violation_steps']}",
                f"  dispatch LPs         : {record['lp_solves']} solves, "
                f"{record['cold_loads']} cold load(s), {record['slides']} in-place slides, "
                f"{100 * record['warm_start_rate']:.0f} % warm-started",
            ],
            stream,
        )
    _print(
        [
            "",
            f"scenario {sweep.name}: {len(results)} point(s) "
            f"({results.computed} computed, {results.cache_hits} from cache)",
        ],
        stream,
    )
    return exit_code


def run_stress(args: argparse.Namespace, stream) -> int:
    if args.spec:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                base = ScenarioSpec.from_json(handle.read())
        except (OSError, ValueError, KeyError) as error:
            _print([f"cannot load spec {args.spec!r}: {error}"], stream)
            return 1
        sweep = ParameterSweep(base=base)
    else:
        try:
            sweep = get_scenario(args.scenario).build()
        except KeyError as error:
            _print([str(error.args[0])], stream)
            return 1
    overrides = {}
    if args.draws is not None:
        overrides["ensemble.draws"] = args.draws
    if args.alpha is not None:
        overrides["ensemble.alpha"] = args.alpha
    if args.mode is not None:
        overrides["ensemble.mode"] = args.mode
    try:
        overrides.update(_parse_assignments(args.set))
        if overrides:
            sweep = ParameterSweep(
                base=sweep.base.with_updates(**overrides),
                axes=sweep.axes,
                mode=sweep.mode,
                name=sweep.name,
            )
        sweep.points()
    except (ValueError, KeyError) as error:
        _print([f"invalid scenario override: {error}"], stream)
        return 2
    if not sweep.base.ensemble and not sweep.base.faults:
        _print(
            [
                f"scenario {sweep.name!r} has neither an ensemble nor a faults block; "
                "nothing to stress (set ensemble.draws or faults.* via --set)"
            ],
            stream,
        )
        return 2

    runner = ExperimentRunner(
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        executor=args.executor,
    )
    results = runner.run(sweep)
    if args.json:
        _print([results.to_json()], stream)
        # Gates still apply (the output stays pure JSON; only the exit code
        # reports violations).
        try:
            gates = _parse_assignments(args.fail_on)
        except ValueError:
            return 2
        return 3 if _gate_violations(gates, results, None) else 0

    exit_code = 0
    for point in results:
        record = point.record
        if not record.get("feasible", True):
            _print([f"no feasible plan to stress: {record.get('message', '')}"], stream)
            exit_code = 1
            continue
        label = ", ".join(f"{k}={v}" for k, v in point.overrides.items()) or sweep.name
        lines = [f"[{label}] workflow {record.get('workflow', '?')}"]
        robustness = record.get("robustness")
        if robustness:
            lines += [
                f"  ensemble             : {robustness['draws']} draws, "
                f"mode {robustness['mode']}, seed {robustness['seed']}",
                f"  expected cost        : ${robustness['expected_cost']:,.2f} / month",
                f"  CVaR@{robustness['alpha']:.2f}            : "
                f"${robustness['cvar_cost']:,.2f} / month",
                f"  plan regret          : ${robustness['regret_mean']:,.2f} mean, "
                f"${robustness['regret_max']:,.2f} worst draw "
                f"({robustness['regret_mean_pct']:+.2f} % mean)",
                f"  draws with unserved  : {robustness['draws_with_unserved']} "
                f"of {robustness['draws']}",
            ]
            if "stochastic_expected_cost" in robustness:
                lines.append(
                    f"  stochastic sizing    : "
                    f"${robustness['stochastic_expected_cost']:,.2f} expected "
                    f"({robustness['stochastic_saving_pct']:+.2f} % vs deterministic plan)"
                )
        stress_block = record.get("stress")
        if stress_block:
            fragility_score = stress_block["fragility"]
            lines += [
                f"  faulted replay cost  : ${fragility_score['cost_usd']:,.2f} "
                f"({fragility_score['cost_blowup_pct']:+.2f} % vs nominal)",
                f"  unserved demand      : {fragility_score['unserved_kwh']:,.1f} kWh "
                f"(+{fragility_score['unserved_delta_kwh']:,.1f} vs nominal)",
                f"  SLA violation steps  : {fragility_score['sla_violation_steps']} "
                f"(+{fragility_score['sla_delta_steps']} vs nominal)",
                f"  solver resilience    : {fragility_score['slide_retries']} retries, "
                f"{fragility_score['fallback_rebuilds']} cold-rebuild fallbacks, "
                f"{fragility_score['forecast_blackout_steps']} blackout steps",
            ]
            if fragility_score.get("greedy_fallback_steps", 0):
                lines.append(
                    f"  DEGRADED             : {fragility_score['greedy_fallback_steps']} "
                    "greedy fallback step(s) committed without an LP optimum"
                )
        contingency = record.get("contingency")
        if contingency:
            worst = contingency["worst_case"]
            lines += [
                f"  N-1 sizing premium   : {contingency['cost_premium_pct']:+.2f} % "
                f"(epsilon {contingency['epsilon']:.3f})",
                f"  worst-case unserved  : deterministic {worst['det']['unserved_kwh']:,.1f} kWh "
                f"({contingency['det_violations']} violations) vs "
                f"N-1 {worst['n1']['unserved_kwh']:,.1f} kWh "
                f"({contingency['n1_violations']} violations)",
            ]
        survivability = record.get("survivability")
        if survivability:
            det_plan = survivability["plans"]["deterministic"]
            n1_plan = survivability["plans"]["n1"]
            lines += [
                f"  survivability replay : N-1 within epsilon: {n1_plan['within_epsilon']}, "
                f"deterministic: {det_plan['within_epsilon']}",
                f"  outage unserved delta: deterministic worst "
                f"{det_plan['worst_unserved_delta_kwh']:,.1f} kWh "
                f"(site {det_plan['worst_site']}), "
                f"N-1 worst {n1_plan['worst_unserved_delta_kwh']:,.1f} kWh",
            ]
        if len(lines) == 1:
            lines.append("  (no robustness data on this record)")
        _print(lines, stream)
    _print(
        [
            "",
            f"scenario {sweep.name}: {len(results)} point(s) "
            f"({results.computed} computed, {results.cache_hits} from cache)",
        ],
        stream,
    )
    try:
        gates = _parse_assignments(args.fail_on)
    except ValueError as error:
        _print([f"invalid --fail-on gate: {error}"], stream)
        return 2
    gate_failures = _gate_violations(gates, results, stream)
    if gate_failures:
        _print([f"{gate_failures} fail-on gate violation(s)"], stream)
        return 3
    if gates:
        _print([f"all {len(gates)} fail-on gate(s) passed"], stream)
    return exit_code


def _gate_violations(gates: dict, results, stream) -> int:
    """Count ``--fail-on`` violations: a flattened record metric above its
    threshold (or missing entirely) fails the gate.  Booleans coerce the
    usual way, so ``stress_degraded=0`` fails exactly when a replay
    degraded."""
    failures = 0
    for metric, threshold in gates.items():
        try:
            limit = float(threshold)
        except (TypeError, ValueError):
            if stream is not None:
                _print(
                    [f"invalid --fail-on gate: {metric}={threshold!r} is not numeric"],
                    stream,
                )
            failures += 1
            continue
        for point in results:
            value = point.record.get(metric)
            if value is None:
                if stream is not None:
                    _print([f"FAIL {metric}: metric missing from the record"], stream)
                failures += 1
            elif float(value) > limit:
                if stream is not None:
                    _print([f"FAIL {metric}: {float(value):g} > {limit:g}"], stream)
                failures += 1
    return failures


def run_serve(args: argparse.Namespace, stream) -> int:
    import asyncio

    from repro.serve import PlanServer, ServeConfig, serve_http, serve_stdio

    try:
        config = ServeConfig(
            executor=args.executor,
            workers=args.workers,
            queue_limit=args.queue_limit,
            timeout_s=None if args.timeout == 0 else args.timeout,
            drain_grace_s=args.drain_grace,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
    except ValueError as error:
        _print([str(error)], stream)
        return 2
    server = PlanServer(config)
    if args.stdin:
        return asyncio.run(
            serve_stdio(server, sys.stdin, stream, install_signals=True)
        )
    return asyncio.run(
        serve_http(server, args.host, args.port, stream=stream, install_signals=True)
    )


def _server_cache_lines(url: str) -> List[str]:
    """Fetch a serve daemon's /metrics and format its worker-cache hit rates."""
    import urllib.error
    import urllib.request

    if "://" not in url:
        url = f"http://{url}"
    try:
        with urllib.request.urlopen(f"{url.rstrip('/')}/metrics", timeout=10) as response:
            metrics = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        return [f"cannot reach serve daemon at {url}: {error}"]

    def rate(value: Any) -> str:
        return f"{100 * value:.1f} %" if isinstance(value, float) and value == value else "n/a"

    caches = metrics.get("worker_caches", {})
    latency = metrics.get("latency", {})
    return [
        "",
        f"serve daemon  : {url} (executor {metrics.get('executor')}, "
        f"{metrics.get('workers')} workers, up {metrics.get('uptime_s', 0):.0f} s)",
        f"requests      : {metrics.get('requests_total', 0)} total, "
        f"{metrics.get('responses_ok', 0)} ok, "
        f"{metrics.get('dedup_hits', 0)} dedup hits, "
        f"{metrics.get('artifact_cache_hits', 0)} artifact hits",
        f"latency       : p50 {latency.get('p50_s', float('nan')):.3f} s, "
        f"p99 {latency.get('p99_s', float('nan')):.3f} s "
        f"over {latency.get('count', 0)} responses",
        f"worker caches : {caches.get('workers_reporting', 0)} worker(s) reporting",
        f"  skeleton warm rate : {rate(caches.get('skeleton_warm_rate'))}",
        f"  problem warm rate  : {rate(caches.get('problem_warm_rate'))}",
        f"  catalog warm rate  : {rate(caches.get('catalog_warm_rate'))}",
        f"  artifact hit rate  : {rate(caches.get('artifact_hit_rate'))}",
    ]


def run_cache(args: argparse.Namespace, stream) -> int:
    from repro.scenarios.runner import list_artifacts

    cache_dir = args.cache_dir
    artifacts = list_artifacts(cache_dir)
    if args.action == "info":
        total_bytes = sum(os.path.getsize(path) for path in artifacts)
        lines = [
            f"artifact cache: {cache_dir}",
            f"stored points : {len(artifacts)}",
            f"total size    : {total_bytes / 1024:.1f} KiB",
        ]
        if args.server:
            lines += _server_cache_lines(args.server)
        _print(lines, stream)
        return 0
    removed = clear_artifact_cache(cache_dir)
    _print([f"removed {removed} cached points from {cache_dir}"], stream)
    return 0


def main(argv: Optional[List[str]] = None, stream=None) -> int:
    """CLI entry point; returns the process exit code."""
    stream = stream or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "plan":
        return run_plan(args, stream)
    if args.command == "single-site":
        return run_single_site(args, stream)
    if args.command == "emulate":
        return run_emulate(args, stream)
    if args.command == "sweep":
        return run_sweep(args, stream)
    if args.command == "operate":
        return run_operate(args, stream)
    if args.command == "stress":
        return run_stress(args, stream)
    if args.command == "serve":
        return run_serve(args, stream)
    if args.command == "cache":
        return run_cache(args, stream)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
