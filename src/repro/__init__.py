"""Reproduction of *Building Green Cloud Services at Low Cost* (ICDCS 2014).

The package is organised around the two contributions of the paper:

* ``repro.core`` — the cost-driven siting and provisioning framework for a
  follow-the-renewables HPC cloud service (Table I parameters, the Fig. 1
  MILP, the heuristic filter + simulated-annealing solver, and the placement
  tool built on top of them).
* ``repro.greennebula`` — GreenNebula, the multi-datacenter VM placement and
  live-migration system with the GDFS distributed file system and the 48-hour
  look-ahead brown-energy-minimising scheduler.

Everything those two systems depend on is implemented here as well:
``repro.lpsolver`` (LP/MILP modelling on SciPy/HiGHS), ``repro.weather``
(synthetic TMY data for a world-wide location catalogue), ``repro.energy``
(solar, wind, PUE, battery and net-metering models), ``repro.geo``
(infrastructure distances, land and grid prices), ``repro.simulation`` (a
discrete-event engine and HPC batch workloads) and ``repro.analysis``
(drivers that regenerate every table and figure of the evaluation).
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "energy",
    "geo",
    "greennebula",
    "lpsolver",
    "scenarios",
    "simulation",
    "weather",
]
