"""Virtual machines managed by GreenNebula."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.simulation.workload import VMSpec


class VMState(enum.Enum):
    """Lifecycle states of a VM."""

    PENDING = "pending"
    RUNNING = "running"
    MIGRATING = "migrating"
    STOPPED = "stopped"


@dataclass
class VirtualMachine:
    """A running VM instance: a spec plus placement and dirty-data state.

    The VM keeps running while it migrates (live migration), so its power is
    accounted at both the donor and the receiver during the migration window
    — the same pessimistic accounting the placement framework uses.
    """

    spec: VMSpec
    state: VMState = VMState.PENDING
    datacenter: Optional[str] = None
    host: Optional[str] = None
    dirty_data_mb: float = 0.0
    total_migrations: int = 0
    gdfs_file: Optional[str] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def power_kw(self) -> float:
        """Power drawn by the VM while running (zero when stopped)."""
        return 0.0 if self.state is VMState.STOPPED else self.spec.power_kw

    @property
    def is_placed(self) -> bool:
        return self.datacenter is not None and self.host is not None

    # -- dirty data tracking -------------------------------------------------------
    def accumulate_dirty_data(self, hours: float) -> float:
        """Account for ``hours`` of disk writes; returns the new dirty total."""
        if hours < 0:
            raise ValueError("time cannot run backwards")
        if self.state in (VMState.RUNNING, VMState.MIGRATING):
            self.dirty_data_mb += self.spec.dirty_data_mb_per_hour * hours
        return self.dirty_data_mb

    def flush_dirty_data(self) -> float:
        """Mark all dirty data as replicated; returns how much was flushed."""
        flushed = self.dirty_data_mb
        self.dirty_data_mb = 0.0
        return flushed

    @property
    def migration_state_mb(self) -> float:
        """Data a live migration must move: memory plus unreplicated disk blocks."""
        return self.spec.memory_mb + self.dirty_data_mb

    # -- state transitions ------------------------------------------------------------
    def place(self, datacenter: str, host: str) -> None:
        """Record the VM's placement and mark it running."""
        self.datacenter = datacenter
        self.host = host
        self.state = VMState.RUNNING

    def start_migration(self) -> None:
        if self.state is not VMState.RUNNING:
            raise ValueError(f"VM {self.name} cannot migrate from state {self.state.value}")
        self.state = VMState.MIGRATING

    def finish_migration(self, datacenter: str, host: str) -> None:
        if self.state is not VMState.MIGRATING:
            raise ValueError(f"VM {self.name} is not migrating")
        self.datacenter = datacenter
        self.host = host
        self.state = VMState.RUNNING
        self.total_migrations += 1

    def stop(self) -> None:
        self.state = VMState.STOPPED
