"""Live VM migration across datacenters.

Two pieces live here:

* :class:`WANLink` — the bandwidth-limited wide-area link between two
  datacenters.  The paper measured that, over a VPN between Barcelona and
  Piscataway, GreenNebula migrates VMs whose memory plus unreplicated disk
  state totals ~750 MB in under an hour; the default link bandwidth matches
  that observation.
* :class:`MigrationPlanner` — turns the scheduler's per-datacenter load
  targets into an ordered list of VM migrations, using the paper's policy:
  donors are processed in decreasing order of load to shed, each donor sends
  to the closest receiver that still needs load (first fit), and within a
  donor the VMs with the smallest memory/disk footprints move first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.geo.coordinates import haversine_km
from repro.greennebula.datacenter import GreenDatacenter


@dataclass(frozen=True)
class WANLink:
    """A wide-area network path between two datacenters."""

    source: str
    destination: str
    bandwidth_mb_per_hour: float = 750.0
    latency_ms: float = 90.0

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("a WAN link must connect two different datacenters")
        if self.bandwidth_mb_per_hour <= 0:
            raise ValueError("the link bandwidth must be positive")
        if self.latency_ms < 0:
            raise ValueError("latency cannot be negative")

    def transfer_hours(self, data_mb: float) -> float:
        """Time to move ``data_mb`` over the link."""
        if data_mb < 0:
            raise ValueError("cannot transfer a negative amount of data")
        return data_mb / self.bandwidth_mb_per_hour


@dataclass
class MigrationRequest:
    """One planned VM migration."""

    vm_name: str
    source: str
    destination: str
    state_mb: float
    power_kw: float
    duration_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("a migration must change datacenters")
        if self.state_mb < 0 or self.power_kw < 0 or self.duration_hours < 0:
            raise ValueError("migration quantities cannot be negative")


class MigrationPlanner:
    """Builds migration schedules from load-shift targets.

    Parameters
    ----------
    default_bandwidth_mb_per_hour:
        Bandwidth assumed for datacenter pairs without an explicit link.
    """

    def __init__(
        self,
        links: Optional[Sequence[WANLink]] = None,
        default_bandwidth_mb_per_hour: float = 750.0,
    ) -> None:
        if default_bandwidth_mb_per_hour <= 0:
            raise ValueError("the default bandwidth must be positive")
        self.default_bandwidth = default_bandwidth_mb_per_hour
        self._links: Dict[Tuple[str, str], WANLink] = {}
        for link in links or []:
            self.add_link(link)

    def add_link(self, link: WANLink) -> None:
        self._links[(link.source, link.destination)] = link
        self._links[(link.destination, link.source)] = WANLink(
            source=link.destination,
            destination=link.source,
            bandwidth_mb_per_hour=link.bandwidth_mb_per_hour,
            latency_ms=link.latency_ms,
        )

    def link(self, source: str, destination: str) -> WANLink:
        key = (source, destination)
        if key not in self._links:
            self._links[key] = WANLink(
                source=source,
                destination=destination,
                bandwidth_mb_per_hour=self.default_bandwidth,
            )
        return self._links[key]

    # -- planning -----------------------------------------------------------------------
    def plan(
        self,
        datacenters: Sequence[GreenDatacenter],
        target_power_kw: Mapping[str, float],
    ) -> List[MigrationRequest]:
        """Plan migrations so each datacenter's VM power approaches its target.

        ``target_power_kw`` maps datacenter names to the VM power the
        scheduler wants placed there for the next window.  Donors (current
        power above target) are ordered by decreasing excess; receivers are
        tried closest-first; within a donor, the smallest-footprint VMs are
        chosen first, and VMs move until the donor's excess is covered.
        """
        by_name = {dc.name: dc for dc in datacenters}
        unknown = set(target_power_kw) - set(by_name)
        if unknown:
            raise KeyError(f"targets refer to unknown datacenters: {sorted(unknown)}")

        excess: Dict[str, float] = {}
        deficit: Dict[str, float] = {}
        for name, dc in by_name.items():
            target = float(target_power_kw.get(name, dc.vm_power_kw))
            delta = dc.vm_power_kw - target
            if delta > 1e-9:
                excess[name] = delta
            elif delta < -1e-9:
                deficit[name] = -delta

        migrations: List[MigrationRequest] = []
        # Donors in decreasing order of the load (power) they must shed.
        for donor_name in sorted(excess, key=lambda name: -excess[name]):
            donor = by_name[donor_name]
            to_shed = excess[donor_name]
            candidate_vms = sorted(
                donor.vms(), key=lambda vm: (vm.migration_state_mb, vm.name)
            )
            # Receivers closest to the donor first.
            receivers = sorted(
                deficit,
                key=lambda name: haversine_km(
                    donor.profile.location.point, by_name[name].profile.location.point
                ),
            )
            for receiver_name in receivers:
                if to_shed <= 1e-9:
                    break
                receiver = by_name[receiver_name]
                need = deficit.get(receiver_name, 0.0)
                while to_shed > 1e-9 and need > 1e-9 and candidate_vms:
                    vm = candidate_vms.pop(0)
                    if vm.power_kw <= 0:
                        continue
                    if not receiver.manager.can_accept(vm):
                        continue
                    link = self.link(donor_name, receiver_name)
                    state_mb = vm.migration_state_mb
                    migrations.append(
                        MigrationRequest(
                            vm_name=vm.name,
                            source=donor_name,
                            destination=receiver_name,
                            state_mb=state_mb,
                            power_kw=vm.power_kw,
                            duration_hours=link.transfer_hours(state_mb),
                        )
                    )
                    to_shed -= vm.power_kw
                    need -= vm.power_kw
                deficit[receiver_name] = max(0.0, need)
        return migrations

    # -- accounting ------------------------------------------------------------------------
    @staticmethod
    def migrated_power_kw(migrations: Sequence[MigrationRequest]) -> float:
        """Total VM power moved by a migration schedule."""
        return float(sum(m.power_kw for m in migrations))

    @staticmethod
    def migrated_state_mb(migrations: Sequence[MigrationRequest]) -> float:
        """Total memory + unreplicated disk state moved by a schedule."""
        return float(sum(m.state_mb for m in migrations))
