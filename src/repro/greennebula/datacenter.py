"""A green datacenter as seen by GreenNebula.

Each datacenter bundles its OpenNebula manager (hosts and VMs), its location
profile (for PUE and green-energy availability), and its installed solar/wind
capacity.  GreenNebula's scheduler only needs a handful of quantities from a
datacenter: its current load (power), the green power it will produce over the
next scheduling window, its PUE, and its remaining capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.energy.profiles import LocationProfile
from repro.greennebula.host import PhysicalHost
from repro.greennebula.opennebula import OpenNebulaManager
from repro.greennebula.vm import VirtualMachine


@dataclass
class GreenDatacenter:
    """One datacenter of the follow-the-renewables service."""

    name: str
    profile: LocationProfile
    it_capacity_kw: float
    solar_kw: float = 0.0
    wind_kw: float = 0.0
    battery_kwh: float = 0.0
    manager: OpenNebulaManager = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.it_capacity_kw <= 0:
            raise ValueError("the datacenter IT capacity must be positive")
        if min(self.solar_kw, self.wind_kw, self.battery_kwh) < 0:
            raise ValueError("installed capacities cannot be negative")
        if self.manager is None:
            self.manager = OpenNebulaManager(datacenter_name=self.name)

    # -- host provisioning -----------------------------------------------------------
    def provision_hosts(self, count: int, cores: int = 4, memory_mb: float = 6144.0) -> None:
        """Add ``count`` identical physical hosts to the datacenter."""
        if count < 0:
            raise ValueError("cannot provision a negative number of hosts")
        existing = len(self.manager.hosts)
        for index in range(count):
            self.manager.add_host(
                PhysicalHost(
                    name=f"{self.name}-host-{existing + index:05d}",
                    cpu_cores=cores,
                    memory_mb=memory_mb,
                )
            )

    # -- load ---------------------------------------------------------------------------
    @property
    def vm_power_kw(self) -> float:
        return self.manager.vm_power_kw

    @property
    def it_power_kw(self) -> float:
        return self.manager.it_power_kw

    @property
    def num_vms(self) -> int:
        return self.manager.num_vms

    def vms(self) -> List[VirtualMachine]:
        return self.manager.vms()

    @property
    def headroom_kw(self) -> float:
        """IT power capacity not currently used by VMs."""
        return max(0.0, self.it_capacity_kw - self.vm_power_kw)

    # -- environment -----------------------------------------------------------------------
    def epoch_index(self, hour_of_year: float) -> int:
        """Map an absolute simulation hour onto the profile's epoch grid.

        The emulation runs over the representative days of the profile's epoch
        grid, so the mapping wraps around the grid cyclically.
        """
        # Delegated to the grid: adaptively refined grids have non-uniform
        # epoch durations, so the division-based mapping lives with the grid.
        return self.profile.epochs.epoch_index(hour_of_year)

    def green_power_kw(self, hour_of_year: float) -> float:
        """On-site green power produced at the given simulation hour."""
        index = self.epoch_index(hour_of_year)
        return float(
            self.profile.solar_alpha[index] * self.solar_kw
            + self.profile.wind_beta[index] * self.wind_kw
        )

    def green_power_forecast_kw(self, hour_of_year: float, horizon_hours: int) -> np.ndarray:
        """Green power for each of the next ``horizon_hours`` hours."""
        if horizon_hours <= 0:
            raise ValueError("the forecast horizon must be positive")
        return np.array(
            [self.green_power_kw(hour_of_year + offset) for offset in range(horizon_hours)]
        )

    def pue(self, hour_of_year: float) -> float:
        """PUE during the epoch containing the given hour."""
        return float(self.profile.pue[self.epoch_index(hour_of_year)])

    def facility_power_kw(self, hour_of_year: float, extra_it_kw: float = 0.0) -> float:
        """Total facility power: (IT load + migration overhead) times PUE."""
        return (self.it_power_kw + extra_it_kw) * self.pue(hour_of_year)

    def brown_power_kw(self, hour_of_year: float, extra_it_kw: float = 0.0) -> float:
        """Grid power needed after on-site green production is used."""
        return max(0.0, self.facility_power_kw(hour_of_year, extra_it_kw) - self.green_power_kw(hour_of_year))
