"""Physical machines inside a datacenter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.greennebula.vm import VirtualMachine


@dataclass
class PhysicalHost:
    """A physical machine that hosts VMs.

    The host model matches the paper's server instantiation: a fixed number
    of cores and a memory capacity, an idle power draw plus the per-VM power
    of the VMs it hosts.
    """

    name: str
    cpu_cores: int = 4
    memory_mb: float = 6144.0
    idle_power_kw: float = 0.120
    vms: Dict[str, VirtualMachine] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0:
            raise ValueError("a host needs at least one core")
        if self.memory_mb <= 0:
            raise ValueError("a host needs memory")
        if self.idle_power_kw < 0:
            raise ValueError("idle power cannot be negative")

    # -- capacity accounting -----------------------------------------------------
    @property
    def used_cores(self) -> int:
        return sum(vm.spec.virtual_cpus for vm in self.vms.values())

    @property
    def used_memory_mb(self) -> float:
        return sum(vm.spec.memory_mb for vm in self.vms.values())

    @property
    def free_cores(self) -> int:
        return self.cpu_cores - self.used_cores

    @property
    def free_memory_mb(self) -> float:
        return self.memory_mb - self.used_memory_mb

    def can_host(self, vm: VirtualMachine) -> bool:
        """True when the VM fits in the remaining CPU and memory."""
        return (
            vm.spec.virtual_cpus <= self.free_cores
            and vm.spec.memory_mb <= self.free_memory_mb + 1e-9
        )

    # -- placement ------------------------------------------------------------------
    def attach(self, vm: VirtualMachine) -> None:
        """Place a VM on this host."""
        if vm.name in self.vms:
            raise ValueError(f"VM {vm.name} is already on host {self.name}")
        if not self.can_host(vm):
            raise ValueError(f"host {self.name} cannot fit VM {vm.name}")
        self.vms[vm.name] = vm

    def detach(self, vm_name: str) -> VirtualMachine:
        """Remove a VM from this host and return it."""
        try:
            return self.vms.pop(vm_name)
        except KeyError:
            raise KeyError(f"VM {vm_name} is not on host {self.name}") from None

    # -- power ------------------------------------------------------------------------
    @property
    def power_kw(self) -> float:
        """Current power draw: idle power plus the hosted VMs."""
        if not self.vms:
            return self.idle_power_kw
        return self.idle_power_kw + sum(vm.power_kw for vm in self.vms.values())

    def vm_list(self) -> List[VirtualMachine]:
        return list(self.vms.values())
