"""The GreenNebula multi-datacenter scheduler.

Every hour the scheduler (which runs at one of the datacenters) predicts the
green energy production of every datacenter 48 hours ahead, collects the
current workload (average power) from each datacenter, and solves a small
optimisation that re-partitions the workload across the datacenters for the
coming window.  The optimisation is the placement problem of Section II with
the locations and provisioning fixed and the minimum-green constraint
removed: it minimises the brown energy drawn over the window, accounting for
the predicted green production and for the energy overhead of migrating load
between datacenters.  The first hour of the optimised partition is then
turned into a migration schedule by the :class:`MigrationPlanner`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.greennebula.datacenter import GreenDatacenter
from repro.greennebula.migration import MigrationPlanner, MigrationRequest
from repro.greennebula.prediction import GreenEnergyPredictor
from repro.lpsolver import ConstraintSense, LinearExpression, Model, SolverOptions


@dataclass
class ScheduleDecision:
    """Output of one scheduling pass."""

    hour_of_year: float
    target_power_kw: Dict[str, float]
    migrations: List[MigrationRequest]
    predicted_brown_kwh: float
    solve_time_seconds: float
    window_power_kw: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def migrated_power_kw(self) -> float:
        return MigrationPlanner.migrated_power_kw(self.migrations)


class GreenNebulaScheduler:
    """Brown-energy-minimising workload partitioner with a 48-hour look-ahead."""

    def __init__(
        self,
        datacenters: Sequence[GreenDatacenter],
        predictor: Optional[GreenEnergyPredictor] = None,
        planner: Optional[MigrationPlanner] = None,
        horizon_hours: int = 48,
        migration_penalty_kwh: float = 1e-3,
        net_metering: bool = False,
        solver_options: Optional[SolverOptions] = None,
    ) -> None:
        if not datacenters:
            raise ValueError("the scheduler needs at least one datacenter")
        if horizon_hours <= 0:
            raise ValueError("the look-ahead horizon must be positive")
        self.datacenters = list(datacenters)
        self.predictor = predictor or GreenEnergyPredictor(horizon_hours=horizon_hours)
        if self.predictor.horizon_hours != horizon_hours:
            self.predictor.horizon_hours = horizon_hours
        self.planner = planner or MigrationPlanner()
        self.horizon_hours = horizon_hours
        self.migration_penalty_kwh = migration_penalty_kwh
        self.net_metering = net_metering
        self.solver_options = solver_options or SolverOptions()

    # -- the optimisation ------------------------------------------------------------------
    def build_model(
        self,
        hour_of_year: float,
        total_load_kw: float,
        current_load_kw: Mapping[str, float],
        green_forecast_kw: Mapping[str, np.ndarray],
    ) -> tuple[Model, Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Build the window LP; returns (model, compute indices, migrate indices).

        Each per-datacenter constraint family (migration coupling, capacity,
        brown balance) is emitted as one vectorized triplet block over the
        whole horizon; the variable handles are returned as index arrays for
        fancy-indexed extraction from the solve result.
        """
        horizon = self.horizon_hours
        model = Model(name="greennebula-window", sense="min")
        compute: Dict[str, np.ndarray] = {}
        migrate: Dict[str, np.ndarray] = {}
        t = np.arange(horizon, dtype=np.int64)
        ones = np.ones(horizon)
        objective_cols: List[np.ndarray] = []
        objective_vals: List[np.ndarray] = []

        for dc in self.datacenters:
            name = dc.name
            forecast = np.asarray(green_forecast_kw[name], dtype=float)
            if forecast.shape[0] < horizon:
                raise ValueError(f"forecast for {name} shorter than the scheduling horizon")
            compute[name] = model.add_variable_array(
                [f"compute[{name},{step}]" for step in range(horizon)],
                upper=dc.it_capacity_kw,
            )
            migrate[name] = model.add_variable_array(
                [f"migrate[{name},{step}]" for step in range(horizon)]
            )
            brown = model.add_variable_array(
                [f"brown[{name},{step}]" for step in range(horizon)]
            )
            pue = np.array([dc.pue(hour_of_year + step) for step in range(horizon)])
            previous_load = float(current_load_kw.get(name, dc.vm_power_kw))

            # Load that leaves this DC still consumes energy here this hour:
            # migrate[t] + compute[t] - compute[t-1] >= 0, with the t=0 row
            # anchored to the currently measured load.
            migration_rhs = np.zeros(horizon)
            migration_rhs[0] = previous_load
            model.add_linear_block(
                np.concatenate([t, t, t[1:]]),
                np.concatenate([migrate[name], compute[name], compute[name][:-1]]),
                np.concatenate([ones, ones, -ones[1:]]),
                ConstraintSense.GREATER_EQUAL,
                migration_rhs,
                name=f"migration[{name}]",
            )
            model.add_linear_block(
                np.concatenate([t, t]),
                np.concatenate([compute[name], migrate[name]]),
                np.concatenate([ones, ones]),
                ConstraintSense.LESS_EQUAL,
                np.full(horizon, dc.it_capacity_kw),
                name=f"capacity[{name}]",
            )
            # brown[t] >= pue[t] * (compute[t] + migrate[t]) - forecast[t]
            model.add_linear_block(
                np.concatenate([t, t, t]),
                np.concatenate([brown, compute[name], migrate[name]]),
                np.concatenate([ones, -pue, -pue]),
                ConstraintSense.GREATER_EQUAL,
                -forecast[:horizon],
                name=f"brown[{name}]",
            )
            objective_cols.extend([brown, migrate[name]])
            objective_vals.extend([ones, np.full(horizon, self.migration_penalty_kwh)])

        model.add_linear_block(
            np.concatenate([t] * len(self.datacenters)),
            np.concatenate([compute[dc.name] for dc in self.datacenters]),
            np.ones(horizon * len(self.datacenters)),
            ConstraintSense.GREATER_EQUAL,
            np.full(horizon, total_load_kw),
            name="total_load",
        )

        model.set_objective(
            LinearExpression(
                dict(
                    zip(
                        np.concatenate(objective_cols).tolist(),
                        np.concatenate(objective_vals).tolist(),
                    )
                )
            )
        )
        return model, compute, migrate

    def schedule(self, hour_of_year: float) -> ScheduleDecision:
        """Run one scheduling pass at the given simulation hour."""
        started = _time.perf_counter()
        current_load = {dc.name: dc.vm_power_kw for dc in self.datacenters}
        total_load = float(sum(current_load.values()))
        forecasts = self.predictor.predict_all(self.datacenters, hour_of_year)
        model, compute, _ = self.build_model(hour_of_year, total_load, current_load, forecasts)
        result = model.solve(self.solver_options)
        if not result.is_optimal:
            # Fall back to keeping the current placement.
            targets = dict(current_load)
            predicted_brown = float("nan")
            window = {name: np.full(self.horizon_hours, current_load[name]) for name in current_load}
        else:
            window = {
                name: result.value_array(indices) for name, indices in compute.items()
            }
            targets = {name: max(0.0, float(series[0])) for name, series in window.items()}
            predicted_brown = self._predicted_brown_kwh(window, hour_of_year, forecasts)
        migrations = self.planner.plan(self.datacenters, targets)
        elapsed = _time.perf_counter() - started
        return ScheduleDecision(
            hour_of_year=hour_of_year,
            target_power_kw=targets,
            migrations=migrations,
            predicted_brown_kwh=predicted_brown,
            solve_time_seconds=elapsed,
            window_power_kw=window,
        )

    # -- helpers ------------------------------------------------------------------------------
    def _predicted_brown_kwh(
        self,
        window: Mapping[str, np.ndarray],
        hour_of_year: float,
        forecasts: Mapping[str, np.ndarray],
    ) -> float:
        total = 0.0
        for dc in self.datacenters:
            series = window[dc.name]
            forecast = np.asarray(forecasts[dc.name], dtype=float)[: len(series)]
            pue = np.array([dc.pue(hour_of_year + t) for t in range(len(series))])
            total += float(np.sum(np.maximum(0.0, series * pue - forecast)))
        return total
