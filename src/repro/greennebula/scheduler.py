"""The GreenNebula multi-datacenter scheduler.

Every hour the scheduler (which runs at one of the datacenters) predicts the
green energy production of every datacenter 48 hours ahead, collects the
current workload (average power) from each datacenter, and solves a small
optimisation that re-partitions the workload across the datacenters for the
coming window.  The optimisation is the placement problem of Section II with
the locations and provisioning fixed and the minimum-green constraint
removed: it minimises the brown energy drawn over the window, accounting for
the predicted green production and for the energy overhead of migrating load
between datacenters.  The first hour of the optimised partition is then
turned into a migration schedule by the :class:`MigrationPlanner`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.greennebula.datacenter import GreenDatacenter
from repro.greennebula.migration import MigrationPlanner, MigrationRequest
from repro.greennebula.prediction import GreenEnergyPredictor
from repro.lpsolver import LinearExpression, Model, SolverOptions


@dataclass
class ScheduleDecision:
    """Output of one scheduling pass."""

    hour_of_year: float
    target_power_kw: Dict[str, float]
    migrations: List[MigrationRequest]
    predicted_brown_kwh: float
    solve_time_seconds: float
    window_power_kw: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def migrated_power_kw(self) -> float:
        return MigrationPlanner.migrated_power_kw(self.migrations)


class GreenNebulaScheduler:
    """Brown-energy-minimising workload partitioner with a 48-hour look-ahead."""

    def __init__(
        self,
        datacenters: Sequence[GreenDatacenter],
        predictor: Optional[GreenEnergyPredictor] = None,
        planner: Optional[MigrationPlanner] = None,
        horizon_hours: int = 48,
        migration_penalty_kwh: float = 1e-3,
        net_metering: bool = False,
        solver_options: Optional[SolverOptions] = None,
    ) -> None:
        if not datacenters:
            raise ValueError("the scheduler needs at least one datacenter")
        if horizon_hours <= 0:
            raise ValueError("the look-ahead horizon must be positive")
        self.datacenters = list(datacenters)
        self.predictor = predictor or GreenEnergyPredictor(horizon_hours=horizon_hours)
        if self.predictor.horizon_hours != horizon_hours:
            self.predictor.horizon_hours = horizon_hours
        self.planner = planner or MigrationPlanner()
        self.horizon_hours = horizon_hours
        self.migration_penalty_kwh = migration_penalty_kwh
        self.net_metering = net_metering
        self.solver_options = solver_options or SolverOptions()

    # -- the optimisation ------------------------------------------------------------------
    def build_model(
        self,
        hour_of_year: float,
        total_load_kw: float,
        current_load_kw: Mapping[str, float],
        green_forecast_kw: Mapping[str, np.ndarray],
    ) -> tuple[Model, Dict[str, List], Dict[str, List]]:
        """Build the window LP; returns (model, compute vars, migrate vars)."""
        horizon = self.horizon_hours
        model = Model(name="greennebula-window", sense="min")
        compute: Dict[str, List] = {}
        migrate: Dict[str, List] = {}
        brown: Dict[str, List] = {}
        objective_terms: List = []

        for dc in self.datacenters:
            name = dc.name
            forecast = np.asarray(green_forecast_kw[name], dtype=float)
            if forecast.shape[0] < horizon:
                raise ValueError(f"forecast for {name} shorter than the scheduling horizon")
            compute[name] = [
                model.add_variable(f"compute[{name},{t}]", upper=dc.it_capacity_kw)
                for t in range(horizon)
            ]
            migrate[name] = [model.add_variable(f"migrate[{name},{t}]") for t in range(horizon)]
            brown[name] = [model.add_variable(f"brown[{name},{t}]") for t in range(horizon)]
            for t in range(horizon):
                pue = dc.pue(hour_of_year + t)
                previous_load = (
                    float(current_load_kw.get(name, dc.vm_power_kw))
                    if t == 0
                    else compute[name][t - 1]
                )
                # Load that leaves this DC still consumes energy here this hour.
                model.add_constraint(
                    migrate[name][t] >= previous_load - compute[name][t],
                    name=f"migration[{name},{t}]",
                )
                model.add_constraint(
                    compute[name][t] + migrate[name][t] <= dc.it_capacity_kw,
                    name=f"capacity[{name},{t}]",
                )
                demand = (compute[name][t] + migrate[name][t]) * pue
                model.add_constraint(
                    brown[name][t] >= demand - float(forecast[t]),
                    name=f"brown[{name},{t}]",
                )
                objective_terms.append(brown[name][t])
                objective_terms.append(self.migration_penalty_kwh * migrate[name][t])

        for t in range(horizon):
            total = LinearExpression.sum(compute[name][t] for name in compute)
            model.add_constraint(total >= total_load_kw, name=f"total_load[{t}]")

        model.set_objective(LinearExpression.sum(objective_terms))
        return model, compute, migrate

    def schedule(self, hour_of_year: float) -> ScheduleDecision:
        """Run one scheduling pass at the given simulation hour."""
        started = _time.perf_counter()
        current_load = {dc.name: dc.vm_power_kw for dc in self.datacenters}
        total_load = float(sum(current_load.values()))
        forecasts = self.predictor.predict_all(self.datacenters, hour_of_year)
        model, compute, _ = self.build_model(hour_of_year, total_load, current_load, forecasts)
        result = model.solve(self.solver_options)
        if not result.is_optimal:
            # Fall back to keeping the current placement.
            targets = dict(current_load)
            predicted_brown = float("nan")
            window = {name: np.full(self.horizon_hours, current_load[name]) for name in current_load}
        else:
            targets = {
                name: max(0.0, result.value(variables[0])) for name, variables in compute.items()
            }
            window = {
                name: np.array([result.value(v) for v in variables])
                for name, variables in compute.items()
            }
            predicted_brown = self._predicted_brown_kwh(result, hour_of_year, compute, forecasts)
        migrations = self.planner.plan(self.datacenters, targets)
        elapsed = _time.perf_counter() - started
        return ScheduleDecision(
            hour_of_year=hour_of_year,
            target_power_kw=targets,
            migrations=migrations,
            predicted_brown_kwh=predicted_brown,
            solve_time_seconds=elapsed,
            window_power_kw=window,
        )

    # -- helpers ------------------------------------------------------------------------------
    def _predicted_brown_kwh(
        self,
        result,
        hour_of_year: float,
        compute: Dict[str, List],
        forecasts: Mapping[str, np.ndarray],
    ) -> float:
        total = 0.0
        for dc in self.datacenters:
            variables = compute[dc.name]
            forecast = forecasts[dc.name]
            for t, variable in enumerate(variables):
                pue = dc.pue(hour_of_year + t)
                demand = result.value(variable) * pue
                total += max(0.0, demand - float(forecast[t]))
        return total
