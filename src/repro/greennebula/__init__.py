"""GreenNebula: follow-the-renewables VM placement and migration (Section V).

GreenNebula extends an OpenNebula-like within-datacenter VM manager with:

* a multi-datacenter scheduler that, every hour, predicts green energy 48
  hours ahead, re-partitions the workload across the datacenters by solving a
  small brown-energy-minimising optimisation, and orders the required
  migrations (donors ranked by load to shed, first-fit to the closest
  receiver, smallest-footprint VMs first);
* live VM migration over a bandwidth-limited WAN, where applications keep
  running during the transfer; and
* GDFS, an HDFS-like multi-datacenter file system with mutable blocks, local
  writes, remote invalidation and background re-replication, so that a
  migrating VM only needs to carry its recently modified, not-yet-replicated
  blocks.

:class:`EmulatedCloud` wires everything to the discrete-event engine and
reproduces the paper's emulation experiments (Figs. 14-15, Section V-B/C).
"""

from repro.greennebula.vm import VirtualMachine, VMState
from repro.greennebula.host import PhysicalHost
from repro.greennebula.opennebula import OpenNebulaManager, PlacementError
from repro.greennebula.datacenter import GreenDatacenter
from repro.greennebula.gdfs import GDFS, BlockReplica, FileMetadata
from repro.greennebula.prediction import GreenEnergyPredictor
from repro.greennebula.scheduler import GreenNebulaScheduler, ScheduleDecision
from repro.greennebula.migration import MigrationPlanner, MigrationRequest, WANLink
from repro.greennebula.emulation import EmulatedCloud, EmulationConfig

__all__ = [
    "BlockReplica",
    "EmulatedCloud",
    "EmulationConfig",
    "FileMetadata",
    "GDFS",
    "GreenDatacenter",
    "GreenEnergyPredictor",
    "GreenNebulaScheduler",
    "MigrationPlanner",
    "MigrationRequest",
    "OpenNebulaManager",
    "PhysicalHost",
    "PlacementError",
    "ScheduleDecision",
    "VirtualMachine",
    "VMState",
    "WANLink",
]
