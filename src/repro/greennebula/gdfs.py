"""GDFS: GreenNebula's multi-datacenter distributed file system.

The design follows the paper's description: like HDFS there is one master
holding name bindings and block metadata while the datacenters store block
replicas, but unlike HDFS files are mutable.  A write goes to the local
replica and *invalidates* the remote replicas (metadata update at the
master); if there is no valid local replica and the write does not cover a
whole block, the block is first fetched from another datacenter.  Written
blocks are re-replicated in the background.  The payoff for migration is that
a migrating VM only needs to carry the recently modified blocks that have not
been re-replicated yet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

DEFAULT_BLOCK_SIZE_MB = 64.0


@dataclass
class BlockReplica:
    """State of one block replica at one datacenter."""

    datacenter: str
    valid: bool = True
    dirty: bool = False  #: modified locally and not yet re-replicated elsewhere


@dataclass
class FileMetadata:
    """Master-side metadata of one GDFS file."""

    name: str
    size_mb: float
    block_size_mb: float
    replicas: Dict[int, Dict[str, BlockReplica]] = field(default_factory=dict)

    @property
    def num_blocks(self) -> int:
        if self.size_mb <= 0:
            return 0
        return int(math.ceil(self.size_mb / self.block_size_mb))

    def block_indices(self) -> List[int]:
        return list(range(self.num_blocks))


@dataclass
class TransferLog:
    """Bytes moved across the WAN, grouped by reason (for the validation tests)."""

    fetch_mb: float = 0.0
    replication_mb: float = 0.0
    migration_mb: float = 0.0

    @property
    def total_mb(self) -> float:
        return self.fetch_mb + self.replication_mb + self.migration_mb


class GDFS:
    """The GreenNebula distributed file system (master view).

    Parameters
    ----------
    datacenters:
        Names of the participating datacenters.
    replication_factor:
        Number of datacenters that hold a replica of each block.
    block_size_mb:
        Size of a data block.
    """

    def __init__(
        self,
        datacenters: List[str],
        replication_factor: int = 2,
        block_size_mb: float = DEFAULT_BLOCK_SIZE_MB,
    ) -> None:
        if not datacenters:
            raise ValueError("GDFS needs at least one datacenter")
        if len(set(datacenters)) != len(datacenters):
            raise ValueError("datacenter names must be unique")
        if replication_factor < 1:
            raise ValueError("the replication factor must be at least 1")
        if replication_factor > len(datacenters):
            raise ValueError("cannot replicate to more datacenters than exist")
        if block_size_mb <= 0:
            raise ValueError("the block size must be positive")
        self.datacenters = list(datacenters)
        self.replication_factor = replication_factor
        self.block_size_mb = block_size_mb
        self.files: Dict[str, FileMetadata] = {}
        self.transfers = TransferLog()

    # -- namespace -------------------------------------------------------------------
    def create_file(self, name: str, size_mb: float, primary_datacenter: str) -> FileMetadata:
        """Create a file with all blocks initially replicated from the primary."""
        if name in self.files:
            raise ValueError(f"GDFS file {name!r} already exists")
        if size_mb < 0:
            raise ValueError("the file size cannot be negative")
        self._check_datacenter(primary_datacenter)
        metadata = FileMetadata(name=name, size_mb=size_mb, block_size_mb=self.block_size_mb)
        placement = self._replica_placement(primary_datacenter)
        for block in range(self._block_count(size_mb)):
            metadata.replicas[block] = {
                dc: BlockReplica(datacenter=dc, valid=True, dirty=False) for dc in placement
            }
        self.files[name] = metadata
        return metadata

    def delete_file(self, name: str) -> None:
        self.files.pop(name, None)

    def file(self, name: str) -> FileMetadata:
        try:
            return self.files[name]
        except KeyError:
            raise KeyError(f"no GDFS file named {name!r}") from None

    # -- reads and writes ------------------------------------------------------------------
    def read(self, name: str, block: int, datacenter: str) -> float:
        """Read a block from a datacenter; returns the WAN traffic incurred (MB)."""
        self._check_datacenter(datacenter)
        metadata = self.file(name)
        replicas = self._block_replicas(metadata, block)
        local = replicas.get(datacenter)
        if local is not None and local.valid:
            return 0.0
        # Remote fetch from any valid replica.
        if not any(replica.valid for replica in replicas.values()):
            raise RuntimeError(f"block {block} of {name!r} has no valid replica")
        self.transfers.fetch_mb += self.block_size_mb
        replicas[datacenter] = BlockReplica(datacenter=datacenter, valid=True, dirty=False)
        return self.block_size_mb

    def write(
        self, name: str, block: int, datacenter: str, partial: bool = False
    ) -> float:
        """Write a block at a datacenter; returns the WAN traffic incurred (MB).

        The local replica becomes the only valid one (remote replicas are
        invalidated through the master).  A *partial* write without a valid
        local replica first fetches the block from a remote datacenter, which
        is the only case in which a write generates WAN traffic.
        """
        self._check_datacenter(datacenter)
        metadata = self.file(name)
        replicas = self._block_replicas(metadata, block)
        traffic = 0.0
        local = replicas.get(datacenter)
        if partial and (local is None or not local.valid):
            traffic += self.read(name, block, datacenter)
            replicas = self._block_replicas(metadata, block)
        for dc, replica in list(replicas.items()):
            if dc != datacenter:
                replica.valid = False
                replica.dirty = False
        replicas[datacenter] = BlockReplica(datacenter=datacenter, valid=True, dirty=True)
        return traffic

    # -- background re-replication -----------------------------------------------------------
    def dirty_blocks(self, datacenter: Optional[str] = None) -> List[Tuple[str, int]]:
        """Blocks whose only valid, unreplicated copy is at ``datacenter`` (or anywhere)."""
        result: List[Tuple[str, int]] = []
        for name, metadata in self.files.items():
            for block, replicas in metadata.replicas.items():
                for dc, replica in replicas.items():
                    if replica.dirty and replica.valid and (datacenter is None or dc == datacenter):
                        result.append((name, block))
                        break
        return result

    def replicate_step(self, max_blocks: int = 16) -> float:
        """Re-replicate up to ``max_blocks`` dirty blocks; returns WAN traffic (MB)."""
        if max_blocks <= 0:
            raise ValueError("max_blocks must be positive")
        traffic = 0.0
        replicated = 0
        for name, metadata in self.files.items():
            for block, replicas in metadata.replicas.items():
                if replicated >= max_blocks:
                    return traffic
                dirty_home = next(
                    (dc for dc, replica in replicas.items() if replica.dirty and replica.valid),
                    None,
                )
                if dirty_home is None:
                    continue
                placement = self._replica_placement(dirty_home)
                for dc in placement:
                    if dc == dirty_home:
                        continue
                    replicas[dc] = BlockReplica(datacenter=dc, valid=True, dirty=False)
                    traffic += self.block_size_mb
                    self.transfers.replication_mb += self.block_size_mb
                replicas[dirty_home].dirty = False
                replicated += 1
        return traffic

    # -- migration support ---------------------------------------------------------------------
    def unreplicated_data_mb(self, name: str, datacenter: str) -> float:
        """Data a VM migration must carry: dirty blocks valid only at ``datacenter``."""
        metadata = self.file(name)
        total = 0.0
        for replicas in metadata.replicas.values():
            local = replicas.get(datacenter)
            if local is not None and local.valid and local.dirty:
                total += self.block_size_mb
        return total

    def transfer_for_migration(self, name: str, source: str, destination: str) -> float:
        """Move the unreplicated blocks of a file with its migrating VM.

        Returns the WAN traffic (MB).  After the transfer the destination
        holds valid copies of every moved block.
        """
        self._check_datacenter(source)
        self._check_datacenter(destination)
        metadata = self.file(name)
        traffic = 0.0
        for replicas in metadata.replicas.values():
            local = replicas.get(source)
            if local is not None and local.valid and local.dirty:
                replicas[destination] = BlockReplica(datacenter=destination, valid=True, dirty=True)
                local.dirty = False
                traffic += self.block_size_mb
                self.transfers.migration_mb += self.block_size_mb
        return traffic

    # -- invariants (used by property-based tests) ------------------------------------------------
    def check_invariants(self) -> List[str]:
        """Return a list of invariant violations (empty when healthy)."""
        problems: List[str] = []
        for name, metadata in self.files.items():
            for block, replicas in metadata.replicas.items():
                valid = [dc for dc, replica in replicas.items() if replica.valid]
                if not valid:
                    problems.append(f"{name}[{block}] has no valid replica")
                unknown = set(replicas) - set(self.datacenters)
                if unknown:
                    problems.append(f"{name}[{block}] has replicas at unknown datacenters {unknown}")
        return problems

    # -- helpers ------------------------------------------------------------------------------------
    def _block_count(self, size_mb: float) -> int:
        if size_mb <= 0:
            return 0
        return int(math.ceil(size_mb / self.block_size_mb))

    def _block_replicas(self, metadata: FileMetadata, block: int) -> Dict[str, BlockReplica]:
        if block not in metadata.replicas:
            raise KeyError(f"file {metadata.name!r} has no block {block}")
        return metadata.replicas[block]

    def _replica_placement(self, primary: str) -> List[str]:
        others = [dc for dc in self.datacenters if dc != primary]
        return [primary] + others[: self.replication_factor - 1]

    def _check_datacenter(self, name: str) -> None:
        if name not in self.datacenters:
            raise KeyError(f"unknown datacenter {name!r}")
