"""Within-datacenter VM management (the OpenNebula role).

GreenNebula is built around OpenNebula, which handles VM placement *inside* a
datacenter.  This module emulates the slice of OpenNebula functionality that
GreenNebula relies on: deploying a VM onto a host (first-fit), undeploying it,
listing the VMs, and reporting the IT power draw — the "current workload
information (average power usage)" the multi-datacenter scheduler collects
every hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.greennebula.host import PhysicalHost
from repro.greennebula.vm import VirtualMachine


class PlacementError(RuntimeError):
    """Raised when no host can accommodate a VM."""


@dataclass
class OpenNebulaManager:
    """First-fit VM placement over a pool of physical hosts."""

    datacenter_name: str
    hosts: Dict[str, PhysicalHost] = field(default_factory=dict)

    # -- host pool ----------------------------------------------------------------
    def add_host(self, host: PhysicalHost) -> None:
        if host.name in self.hosts:
            raise ValueError(f"host {host.name} already registered in {self.datacenter_name}")
        self.hosts[host.name] = host

    def host(self, name: str) -> PhysicalHost:
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"no host named {name!r} in {self.datacenter_name}") from None

    # -- VM lifecycle ---------------------------------------------------------------
    def deploy(self, vm: VirtualMachine) -> PhysicalHost:
        """Place a VM on the first host with room for it."""
        for host in self.hosts.values():
            if host.can_host(vm):
                host.attach(vm)
                vm.place(self.datacenter_name, host.name)
                return host
        raise PlacementError(
            f"datacenter {self.datacenter_name} has no host with room for VM {vm.name}"
        )

    def undeploy(self, vm_name: str) -> VirtualMachine:
        """Remove a VM from whichever host runs it."""
        for host in self.hosts.values():
            if vm_name in host.vms:
                return host.detach(vm_name)
        raise KeyError(f"VM {vm_name} is not deployed in {self.datacenter_name}")

    def vm_names(self) -> List[str]:
        names: List[str] = []
        for host in self.hosts.values():
            names.extend(host.vms.keys())
        return sorted(names)

    def vms(self) -> List[VirtualMachine]:
        machines: List[VirtualMachine] = []
        for host in self.hosts.values():
            machines.extend(host.vm_list())
        return machines

    def find_vm(self, vm_name: str) -> Optional[VirtualMachine]:
        for host in self.hosts.values():
            if vm_name in host.vms:
                return host.vms[vm_name]
        return None

    # -- capacity and power -------------------------------------------------------------
    @property
    def num_vms(self) -> int:
        return sum(len(host.vms) for host in self.hosts.values())

    @property
    def it_power_kw(self) -> float:
        """Power drawn by all hosts (idle plus VM power)."""
        return sum(host.power_kw for host in self.hosts.values())

    @property
    def vm_power_kw(self) -> float:
        """Power attributable to VMs only (what the scheduler redistributes)."""
        return sum(vm.power_kw for vm in self.vms())

    def free_capacity(self) -> Dict[str, float]:
        """Remaining CPU and memory across the host pool."""
        return {
            "cores": float(sum(host.free_cores for host in self.hosts.values())),
            "memory_mb": float(sum(host.free_memory_mb for host in self.hosts.values())),
        }

    def can_accept(self, vm: VirtualMachine) -> bool:
        """True when some host could take the VM right now."""
        return any(host.can_host(vm) for host in self.hosts.values())
