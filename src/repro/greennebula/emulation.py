"""Emulation harness for GreenNebula (Section V-B/C).

The paper validates GreenNebula by emulating three datacenters with three
physical servers hosting nine VirtualBox VMs.  Here the emulation is driven
by the discrete-event engine: each datacenter is a :class:`GreenDatacenter`
with hosts, VMs, a share of the network's green plants, and the GDFS file
system; the scheduler runs every hour, migrations are executed over
bandwidth-limited WAN links, and a trace records the per-hour load, PUE
overhead, migration overhead and green availability that Fig. 15 plots.

The emulated fleet is tiny compared to the 50 MW service the siting study
provisions, so the green plants of a :class:`~repro.core.solution.NetworkPlan`
are scaled down proportionally when the harness is built from a plan — the
follow-the-renewables behaviour is unchanged by the scaling because both the
demand and the supply shrink by the same factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.solution import NetworkPlan
from repro.energy.profiles import LocationProfile
from repro.greennebula.datacenter import GreenDatacenter
from repro.greennebula.gdfs import GDFS
from repro.greennebula.migration import MigrationPlanner, MigrationRequest
from repro.greennebula.prediction import GreenEnergyPredictor
from repro.greennebula.scheduler import GreenNebulaScheduler, ScheduleDecision
from repro.greennebula.vm import VirtualMachine, VMState
from repro.simulation.engine import SimulationEngine
from repro.simulation.trace import TraceRecorder
from repro.simulation.workload import HPCWorkloadGenerator, VMSpec


@dataclass
class DatacenterSpec:
    """Provisioning of one emulated datacenter."""

    name: str
    profile: LocationProfile
    it_capacity_kw: float
    solar_kw: float = 0.0
    wind_kw: float = 0.0
    battery_kwh: float = 0.0


@dataclass
class EmulationConfig:
    """Configuration of an emulation run."""

    num_vms: int = 9
    duration_hours: int = 24
    start_hour: float = 0.0
    scheduler_horizon_hours: int = 48
    wan_bandwidth_mb_per_hour: float = 750.0
    gdfs_replication_factor: int = 2
    prediction_noise_std: float = 0.0
    seed: int = 0
    initial_datacenter: Optional[str] = None  #: where all VMs start (first DC when None)

    def __post_init__(self) -> None:
        if self.num_vms < 1:
            raise ValueError("the emulation needs at least one VM")
        if self.duration_hours < 1:
            raise ValueError("the emulation must run for at least one hour")
        if self.wan_bandwidth_mb_per_hour <= 0:
            raise ValueError("the WAN bandwidth must be positive")


@dataclass
class EmulationSummary:
    """Aggregate results of an emulation run."""

    total_hours: int
    total_migrations: int
    migrated_state_mb: float
    total_green_used_kwh: float
    total_brown_kwh: float
    mean_schedule_time_s: float
    green_fraction: float


class EmulatedCloud:
    """A multi-datacenter GreenNebula deployment driven by the event engine."""

    def __init__(
        self,
        specs: Sequence[DatacenterSpec],
        config: Optional[EmulationConfig] = None,
    ) -> None:
        if not specs:
            raise ValueError("the emulation needs at least one datacenter")
        self.config = config or EmulationConfig()
        self.datacenters: List[GreenDatacenter] = []
        for spec in specs:
            dc = GreenDatacenter(
                name=spec.name,
                profile=spec.profile,
                it_capacity_kw=spec.it_capacity_kw,
                solar_kw=spec.solar_kw,
                wind_kw=spec.wind_kw,
                battery_kwh=spec.battery_kwh,
            )
            self.datacenters.append(dc)
        self._by_name = {dc.name: dc for dc in self.datacenters}

        self.engine = SimulationEngine(start_time=self.config.start_hour)
        self.trace = TraceRecorder()
        self.gdfs = GDFS(
            [dc.name for dc in self.datacenters],
            replication_factor=min(self.config.gdfs_replication_factor, len(self.datacenters)),
        )
        self.planner = MigrationPlanner(
            default_bandwidth_mb_per_hour=self.config.wan_bandwidth_mb_per_hour
        )
        self.predictor = GreenEnergyPredictor(
            horizon_hours=self.config.scheduler_horizon_hours,
            noise_std=self.config.prediction_noise_std,
            seed=self.config.seed,
        )
        self.scheduler = GreenNebulaScheduler(
            self.datacenters,
            predictor=self.predictor,
            planner=self.planner,
            horizon_hours=self.config.scheduler_horizon_hours,
        )
        self.vms: Dict[str, VirtualMachine] = {}
        self.decisions: List[ScheduleDecision] = []
        self._in_flight: List[MigrationRequest] = []
        self._migration_overhead_kw: Dict[str, float] = {dc.name: 0.0 for dc in self.datacenters}
        self._deploy_workload()

    # -- construction helpers ---------------------------------------------------------
    @classmethod
    def from_spec(cls, spec) -> "EmulatedCloud":
        """Build an emulation from an ``emulate``-workflow scenario spec.

        The spec's catalogue fields select the world the datacenters live in
        (profiles are built on an hourly grid by convention —
        ``hours_per_epoch=1``), and its ``emulation`` knobs size the deployment
        the way the paper's Section V experiments do: each site's IT power and
        green plants are multiples of the emulated VM fleet's power.
        """
        from repro.energy.profiles import ProfileBuilder
        from repro.simulation.workload import VMSpec

        knobs = spec.emulation_knobs()
        catalog = spec.build_catalog()
        builder = ProfileBuilder(catalog)
        grid = spec.build_epoch_grid()
        fleet_kw = knobs["num_vms"] * VMSpec(name="probe").power_kw
        specs = [
            DatacenterSpec(
                name=name,
                profile=builder.build(catalog.get(name), grid),
                it_capacity_kw=fleet_kw * knobs["it_factor"],
                solar_kw=fleet_kw * knobs["solar_factor"],
                wind_kw=fleet_kw * knobs["wind_factor"],
                battery_kwh=fleet_kw * knobs["battery_kwh_factor"],
            )
            for name in knobs["sites"]
        ]
        config = EmulationConfig(
            num_vms=knobs["num_vms"],
            duration_hours=knobs["duration_hours"],
            initial_datacenter=knobs["initial_datacenter"],
            seed=knobs["seed"],
        )
        return cls(specs, config)

    @classmethod
    def from_network_plan(
        cls,
        plan: NetworkPlan,
        config: Optional[EmulationConfig] = None,
    ) -> "EmulatedCloud":
        """Build an emulation whose datacenters mirror a siting solution.

        The plan's IT capacity and green plants are scaled down so the tiny
        emulated VM fleet plays the role of the full service (the ratios
        between datacenters, and between supply and demand, are preserved).
        """
        config = config or EmulationConfig()
        fleet_power_kw = config.num_vms * VMSpec(name="probe").power_kw
        scale = fleet_power_kw / max(plan.total_capacity_kw, 1e-9)
        specs = [
            DatacenterSpec(
                name=dc.name,
                profile=dc.profile,
                it_capacity_kw=max(dc.capacity_kw * scale, fleet_power_kw),
                solar_kw=dc.solar_kw * scale,
                wind_kw=dc.wind_kw * scale,
                battery_kwh=dc.battery_kwh * scale,
            )
            for dc in plan.datacenters
        ]
        return cls(specs, config)

    def _deploy_workload(self) -> None:
        config = self.config
        generator = HPCWorkloadGenerator(seed=config.seed)
        fleet = generator.homogeneous_fleet(config.num_vms)
        start_name = config.initial_datacenter or self.datacenters[0].name
        if start_name not in self._by_name:
            raise KeyError(f"initial datacenter {start_name!r} is not part of the emulation")
        start_dc = self._by_name[start_name]
        hosts_needed = max(1, int(np.ceil(config.num_vms / 4)))
        for dc in self.datacenters:
            dc.provision_hosts(hosts_needed)
        for spec in fleet:
            vm = VirtualMachine(spec=spec)
            vm.gdfs_file = f"{spec.name}.img"
            self.gdfs.create_file(vm.gdfs_file, spec.disk_gb * 1024.0, start_name)
            start_dc.manager.deploy(vm)
            self.vms[vm.name] = vm

    # -- simulation loop -----------------------------------------------------------------
    def run(self) -> EmulationSummary:
        """Run the emulation for the configured duration and return a summary."""
        config = self.config
        hourly = self.engine.schedule_every(1.0, self._hourly_pass, name="hourly-pass", priority=0)
        self.engine.run_until(config.start_hour + config.duration_hours - 1e-9)
        # Retire the periodic pass so the engine's queue is empty at the
        # horizon: the emulation can be extended (run() again after raising
        # the clock) or inspected without a stale event pending.
        hourly.cancel()
        return self.summary()

    def _hourly_pass(self, engine: SimulationEngine) -> None:
        hour = engine.now
        self._complete_migrations(hour)
        decision = self.scheduler.schedule(hour)
        self.decisions.append(decision)
        self._start_migrations(decision, hour)
        self._record_hour(hour, decision)
        self._advance_workload(1.0)

    # -- migrations ---------------------------------------------------------------------------
    def _start_migrations(self, decision: ScheduleDecision, hour: float) -> None:
        for request in decision.migrations:
            vm = self.vms[request.vm_name]
            if vm.state is not VMState.RUNNING:
                continue
            vm.start_migration()
            if vm.gdfs_file is not None:
                self.gdfs.transfer_for_migration(vm.gdfs_file, request.source, request.destination)
            self._in_flight.append(request)
            # The migrating load consumes energy at the receiver too while it
            # is being brought up (the paper's pessimistic accounting).
            self._migration_overhead_kw[request.destination] += request.power_kw
            self.trace.record(
                hour,
                "migration",
                vm=request.vm_name,
                source=request.source,
                destination=request.destination,
                state_mb=request.state_mb,
                duration_hours=request.duration_hours,
            )

    def _complete_migrations(self, hour: float) -> None:
        for request in self._in_flight:
            vm = self.vms[request.vm_name]
            if vm.state is not VMState.MIGRATING:
                continue
            source_dc = self._by_name[request.source]
            destination_dc = self._by_name[request.destination]
            source_host_name = vm.host
            source_dc.manager.undeploy(vm.name)
            destination_host = next(
                (h for h in destination_dc.manager.hosts.values() if h.can_host(vm)), None
            )
            if destination_host is None:
                # No room at the receiver after all: abort and keep the VM home.
                source_dc.manager.host(source_host_name).attach(vm)
                vm.state = VMState.RUNNING
            else:
                destination_host.attach(vm)
                vm.finish_migration(destination_dc.name, destination_host.name)
                vm.flush_dirty_data()
            self._migration_overhead_kw[request.destination] = max(
                0.0, self._migration_overhead_kw[request.destination] - request.power_kw
            )
        self._in_flight.clear()

    # -- workload progression ----------------------------------------------------------------------
    def _advance_workload(self, hours: float) -> None:
        for vm in self.vms.values():
            dirty_before = vm.dirty_data_mb
            vm.accumulate_dirty_data(hours)
            written_mb = vm.dirty_data_mb - dirty_before
            if vm.gdfs_file is not None and written_mb > 0 and vm.datacenter is not None:
                blocks = max(1, int(written_mb // self.gdfs.block_size_mb))
                metadata = self.gdfs.file(vm.gdfs_file)
                for index in range(blocks):
                    block = index % max(1, metadata.num_blocks)
                    self.gdfs.write(vm.gdfs_file, block, vm.datacenter)
        self.gdfs.replicate_step(max_blocks=8)

    # -- tracing and summaries ------------------------------------------------------------------------
    def _record_hour(self, hour: float, decision: ScheduleDecision) -> None:
        for dc in self.datacenters:
            load_kw = dc.vm_power_kw
            migration_kw = self._migration_overhead_kw[dc.name]
            pue = dc.pue(hour)
            green_kw = dc.green_power_kw(hour)
            facility_kw = (load_kw + migration_kw) * pue
            brown_kw = max(0.0, facility_kw - green_kw)
            self.trace.record(
                hour,
                "datacenter",
                datacenter=dc.name,
                load_kw=load_kw,
                migration_kw=migration_kw,
                pue=pue,
                pue_overhead_kw=(load_kw + migration_kw) * (pue - 1.0),
                green_available_kw=green_kw,
                facility_kw=facility_kw,
                brown_kw=brown_kw,
                num_vms=dc.num_vms,
            )
        self.trace.record(
            hour,
            "schedule",
            solve_time_s=decision.solve_time_seconds,
            migrations=len(decision.migrations),
            predicted_brown_kwh=decision.predicted_brown_kwh,
        )

    def summary(self) -> EmulationSummary:
        """Aggregate the trace into the quantities reported in Section V."""
        dc_records = self.trace.of_kind("datacenter")
        total_green_used = 0.0
        total_brown = 0.0
        for record in dc_records:
            facility = record["facility_kw"]
            green = min(record["green_available_kw"], facility)
            total_green_used += green
            total_brown += record["brown_kw"]
        migration_records = self.trace.of_kind("migration")
        schedule_records = self.trace.of_kind("schedule")
        solve_times = [record["solve_time_s"] for record in schedule_records]
        total_energy = total_green_used + total_brown
        return EmulationSummary(
            total_hours=self.config.duration_hours,
            total_migrations=len(migration_records),
            migrated_state_mb=float(sum(r["state_mb"] for r in migration_records)),
            total_green_used_kwh=total_green_used,
            total_brown_kwh=total_brown,
            mean_schedule_time_s=float(np.mean(solve_times)) if solve_times else 0.0,
            green_fraction=(total_green_used / total_energy) if total_energy > 0 else 0.0,
        )

    # -- convenience accessors -----------------------------------------------------------------------------
    def datacenter(self, name: str) -> GreenDatacenter:
        return self._by_name[name]

    def load_series(self, name: str) -> List[float]:
        """Per-hour VM load (kW) of one datacenter, from the trace."""
        return [
            record["load_kw"]
            for record in self.trace.of_kind("datacenter")
            if record["datacenter"] == name
        ]
