"""Green-energy prediction for the GreenNebula scheduler.

Every hour the scheduler predicts the green energy production of each
datacenter 48 hours into the future.  The paper assumes perfectly accurate
predictions in its experiments (citing prior work showing such predictions
are achievable); we default to the same, but the predictor also supports a
multiplicative noise model so the test-suite and the emulation can exercise
the scheduler's robustness to forecast errors.

The predictor is built on the operations subsystem's forecaster family
(:mod:`repro.operator.forecast`): noise factors are a pure function of
``(seed, datacenter, absolute hour)`` via the same counter-based stream the
replay harness uses.  Predictions therefore no longer depend on how many
forecasts were issued before — two processes, or two interleavings of
``predict`` calls, produce bit-identical forecasts for the same seed, which
is what makes emulation runs reproducible across the ``serial``/``thread``/
``process`` executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.greennebula.datacenter import GreenDatacenter
from repro.operator.forecast import deterministic_noise


@dataclass
class GreenEnergyPredictor:
    """Predicts per-datacenter green power for a scheduling window.

    Attributes
    ----------
    horizon_hours:
        Length of the prediction window (48 hours in the paper).
    noise_std:
        Standard deviation of multiplicative forecast noise (0 = perfect
        predictions, the paper's assumption).
    seed:
        Seed of the deterministic noise stream.
    forecast_error:
        Explicit forecast-error knob; when given it overrides ``noise_std``
        (the two are the same quantity — this name matches the operations
        subsystem's ``operate.forecast_error``).
    """

    horizon_hours: int = 48
    noise_std: float = 0.0
    seed: int = 0
    forecast_error: Optional[float] = None

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0:
            raise ValueError("the prediction horizon must be positive")
        if self.forecast_error is not None:
            self.noise_std = float(self.forecast_error)
        if self.noise_std < 0:
            raise ValueError("the noise level cannot be negative")

    def predict(self, datacenter: GreenDatacenter, hour_of_year: float) -> np.ndarray:
        """Predicted green power (kW) for each hour of the window.

        The noise applied to a given (datacenter, absolute hour) pair is
        always the same for a fixed seed, no matter when — or in which
        process — the prediction is made.
        """
        actual = datacenter.green_power_forecast_kw(hour_of_year, self.horizon_hours)
        if self.noise_std == 0.0:
            return actual
        start = int(hour_of_year)
        factors = deterministic_noise(
            self.seed,
            datacenter.name,
            start + np.arange(self.horizon_hours),
            self.noise_std,
        )
        return np.clip(actual * factors, 0.0, None)

    def predict_all(self, datacenters, hour_of_year: float) -> dict:
        """Predictions for every datacenter, keyed by datacenter name."""
        return {dc.name: self.predict(dc, hour_of_year) for dc in datacenters}
