"""Green-energy prediction for the GreenNebula scheduler.

Every hour the scheduler predicts the green energy production of each
datacenter 48 hours into the future.  The paper assumes perfectly accurate
predictions in its experiments (citing prior work showing such predictions
are achievable); we default to the same, but the predictor also supports a
multiplicative noise model so the test-suite can exercise the scheduler's
robustness to forecast errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.greennebula.datacenter import GreenDatacenter


@dataclass
class GreenEnergyPredictor:
    """Predicts per-datacenter green power for a scheduling window.

    Attributes
    ----------
    horizon_hours:
        Length of the prediction window (48 hours in the paper).
    noise_std:
        Standard deviation of multiplicative forecast noise (0 = perfect
        predictions, the paper's assumption).
    seed:
        RNG seed for the noise.
    """

    horizon_hours: int = 48
    noise_std: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0:
            raise ValueError("the prediction horizon must be positive")
        if self.noise_std < 0:
            raise ValueError("the noise level cannot be negative")
        self._rng = np.random.default_rng(self.seed)

    def predict(self, datacenter: GreenDatacenter, hour_of_year: float) -> np.ndarray:
        """Predicted green power (kW) for each hour of the window."""
        actual = datacenter.green_power_forecast_kw(hour_of_year, self.horizon_hours)
        if self.noise_std == 0.0:
            return actual
        noise = self._rng.normal(1.0, self.noise_std, size=actual.shape)
        return np.clip(actual * noise, 0.0, None)

    def predict_all(self, datacenters, hour_of_year: float) -> dict:
        """Predictions for every datacenter, keyed by datacenter name."""
        return {dc.name: self.predict(dc, hour_of_year) for dc in datacenters}
