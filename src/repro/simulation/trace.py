"""Trace recording for emulation experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class TraceRecorder:
    """Collects time-stamped records (dicts) during a simulation run.

    The Fig. 15 benchmark turns these records into the per-datacenter
    load/PUE/migration/green-availability series the paper plots.
    """

    records: List[Dict[str, Any]] = field(default_factory=list)

    def record(self, time: float, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one record and return it."""
        entry: Dict[str, Any] = {"time": float(time), "kind": str(kind)}
        entry.update(fields)
        self.records.append(entry)
        return entry

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """All records of one kind, in chronological order."""
        return [record for record in self.records if record["kind"] == kind]

    def kinds(self) -> List[str]:
        return sorted({record["kind"] for record in self.records})

    def series(self, kind: str, field_name: str) -> List[float]:
        """The values of one field across all records of a kind."""
        return [record[field_name] for record in self.of_kind(kind) if field_name in record]

    def between(self, start: float, end: float) -> List[Dict[str, Any]]:
        """Records with ``start <= time < end``."""
        if end < start:
            raise ValueError("the end of the window must not precede its start")
        return [record for record in self.records if start <= record["time"] < end]

    def filter(self, predicate) -> List[Dict[str, Any]]:
        return [record for record in self.records if predicate(record)]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
