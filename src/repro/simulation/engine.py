"""A small deterministic discrete-event simulation engine."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.simulation.events import Event


class SimulationError(RuntimeError):
    """Raised for scheduling mistakes (events in the past, negative delays...)."""


class PeriodicHandle:
    """Cancellation handle of a :meth:`SimulationEngine.schedule_every` series.

    Cancelling stops the series permanently: the currently pending occurrence
    is cancelled and no further occurrences are scheduled.  Cancelling is
    idempotent and safe from within the periodic action itself, which is how
    finite-horizon emulations retire their hourly pass.
    """

    __slots__ = ("_pending", "_cancelled")

    def __init__(self) -> None:
        self._pending: Optional[Event] = None
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None


class SimulationEngine:
    """Event-queue simulator with a floating-point clock in hours.

    The engine is intentionally simple: callers schedule events (absolute time
    or relative delay) and then advance the clock with :meth:`run_until` or
    :meth:`run`.  Periodic activities (the hourly GreenNebula scheduling pass)
    are expressed with :meth:`schedule_every`.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: List[Event] = []
        self._processed = 0

    # -- scheduling -------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        action: Optional[Callable[["SimulationEngine"], None]] = None,
        name: str = "",
        priority: int = 0,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Event:
        """Schedule an event at an absolute simulation time."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule event {name!r} at {time}; the clock is already at {self.now}"
            )
        event = Event(time=float(time), priority=priority, name=name, action=action,
                      payload=payload or {})
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        action: Optional[Callable[["SimulationEngine"], None]] = None,
        name: str = "",
        priority: int = 0,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Event:
        """Schedule an event ``delay`` hours from now."""
        if delay < 0:
            raise SimulationError("delays cannot be negative")
        return self.schedule_at(self.now + delay, action, name, priority, payload)

    def schedule_every(
        self,
        interval: float,
        action: Callable[["SimulationEngine"], None],
        name: str = "",
        priority: int = 0,
        start_offset: float = 0.0,
    ) -> PeriodicHandle:
        """Schedule ``action`` to run every ``interval`` hours.

        Returns a :class:`PeriodicHandle`; the series runs until the handle is
        cancelled (or forever, for callers that discard it).
        """
        if interval <= 0:
            raise SimulationError("the interval of a periodic event must be positive")
        handle = PeriodicHandle()

        def periodic(engine: "SimulationEngine") -> None:
            if handle.cancelled:
                return
            action(engine)
            if not handle.cancelled:
                handle._pending = engine.schedule_after(
                    interval, periodic, name=name, priority=priority
                )

        handle._pending = self.schedule_after(start_offset, periodic, name=name, priority=priority)
        return handle

    # -- execution ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Process the next event; returns it, or None when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.fire(self)
            self._processed += 1
            return event
        return None

    def run_until(self, end_time: float) -> int:
        """Process events up to and including ``end_time``; returns the count."""
        if end_time < self.now:
            raise SimulationError("cannot run the simulation backwards")
        processed = 0
        while self._queue and self._queue[0].time <= end_time + 1e-12:
            if self.step() is not None:
                processed += 1
        self.now = max(self.now, end_time)
        return processed

    def run(self) -> int:
        """Process all scheduled events."""
        processed = 0
        while self._queue:
            if self.step() is not None:
                processed += 1
        return processed

    # -- introspection -----------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed_events(self) -> int:
        return self._processed
