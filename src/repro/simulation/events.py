"""Events for the discrete-event engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled event.

    Events are ordered by ``(time, priority, sequence)`` so that simultaneous
    events fire in a deterministic order: lower ``priority`` first, then
    insertion order.  The ``action`` callable receives the engine as its only
    argument; ``payload`` is free-form metadata available to the action and to
    the trace.
    """

    time: float
    priority: int = 0
    sequence: int = field(default_factory=lambda: next(_sequence))
    name: str = field(default="", compare=False)
    action: Optional[Callable[["Any"], None]] = field(default=None, compare=False)
    payload: Dict[str, Any] = field(default_factory=dict, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    def fire(self, engine) -> None:
        """Execute the event's action (no-op when there is none)."""
        if self.action is not None and not self.cancelled:
            self.action(engine)
