"""HPC batch workload model.

The paper's validation workload is a set of identically configured VMs (one
virtual CPU, 512 MB of memory, a 5 GB disk, 30 W of power, writing 110 MB of
disk data per hour) running CPU-intensive synthetic batch applications.  The
generator below produces such VM specifications, either exactly homogeneous
(the paper's setup) or with bounded heterogeneity for the wider test-suite,
and can size a fleet to a target IT power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class VMSpec:
    """Resource and behaviour specification of one batch VM."""

    name: str
    virtual_cpus: int = 1
    memory_mb: float = 512.0
    disk_gb: float = 5.0
    power_w: float = 30.0
    dirty_data_mb_per_hour: float = 110.0
    runtime_hours: float = float("inf")

    def __post_init__(self) -> None:
        if self.virtual_cpus <= 0:
            raise ValueError("a VM needs at least one virtual CPU")
        for field_name in ("memory_mb", "disk_gb", "power_w", "dirty_data_mb_per_hour"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")
        if self.runtime_hours <= 0:
            raise ValueError("the runtime must be positive")

    @property
    def power_kw(self) -> float:
        return self.power_w / 1000.0

    @property
    def migration_state_mb(self) -> float:
        """Baseline state moved by a live migration: the memory footprint."""
        return self.memory_mb

    @property
    def state_mb_per_kw(self) -> float:
        """Migration state (MB) behind one kW of fleet power.

        The operations subsystem plans load shifts in kW; this converts a
        shifted power amount into the state a live migration actually moves,
        which is what WAN budgets and transfer times are expressed in.
        """
        return self.migration_state_mb / self.power_kw


class HPCWorkloadGenerator:
    """Generates fleets of batch VMs.

    Parameters
    ----------
    seed:
        RNG seed for the heterogeneous variants.
    base_spec:
        Template VM; the paper's 512 MB / 5 GB / 30 W configuration by default.
    """

    def __init__(self, seed: int = 0, base_spec: Optional[VMSpec] = None) -> None:
        self.rng = np.random.default_rng(seed)
        self.base_spec = base_spec or VMSpec(name="template")

    def homogeneous_fleet(self, count: int, prefix: str = "vm") -> List[VMSpec]:
        """``count`` identical VMs (the paper's 9-VM validation workload)."""
        if count < 0:
            raise ValueError("the fleet size cannot be negative")
        base = self.base_spec
        return [
            VMSpec(
                name=f"{prefix}-{index:04d}",
                virtual_cpus=base.virtual_cpus,
                memory_mb=base.memory_mb,
                disk_gb=base.disk_gb,
                power_w=base.power_w,
                dirty_data_mb_per_hour=base.dirty_data_mb_per_hour,
                runtime_hours=base.runtime_hours,
            )
            for index in range(count)
        ]

    def heterogeneous_fleet(
        self,
        count: int,
        prefix: str = "vm",
        memory_range_mb: tuple = (512.0, 4096.0),
        power_range_w: tuple = (20.0, 120.0),
    ) -> List[VMSpec]:
        """A fleet with varied memory footprints and power draws.

        Used by tests and the migration planner benchmarks: the paper's
        planner picks small-footprint VMs first, which only matters when VMs
        are not all identical.
        """
        if count < 0:
            raise ValueError("the fleet size cannot be negative")
        if memory_range_mb[0] > memory_range_mb[1] or power_range_w[0] > power_range_w[1]:
            raise ValueError("ranges must be (low, high)")
        fleet = []
        for index in range(count):
            memory = float(self.rng.uniform(*memory_range_mb))
            power = float(self.rng.uniform(*power_range_w))
            disk = float(self.rng.uniform(5.0, 50.0))
            dirty = float(self.rng.uniform(50.0, 300.0))
            fleet.append(
                VMSpec(
                    name=f"{prefix}-{index:04d}",
                    memory_mb=memory,
                    disk_gb=disk,
                    power_w=power,
                    dirty_data_mb_per_hour=dirty,
                )
            )
        return fleet

    def fleet_for_power(self, target_power_kw: float, prefix: str = "vm") -> List[VMSpec]:
        """Enough identical VMs to draw approximately ``target_power_kw``."""
        if target_power_kw < 0:
            raise ValueError("the target power cannot be negative")
        count = int(round(target_power_kw / self.base_spec.power_kw))
        return self.homogeneous_fleet(count, prefix=prefix)


def fleet_counts(demand_kw: np.ndarray, spec: VMSpec) -> np.ndarray:
    """VM fleet sizes covering a power-demand series (one count per step).

    The operations traffic layer synthesizes demand in kW; dispatch and
    migration accounting need it as whole VMs of the given specification.
    """
    demand = np.asarray(demand_kw, dtype=float)
    if np.any(demand < 0):
        raise ValueError("demand cannot be negative")
    return np.ceil(demand / spec.power_kw).astype(np.int64)


def migration_state_mb(moved_kw: float, spec: VMSpec) -> float:
    """State (MB) that live-migrating ``moved_kw`` of fleet power transfers."""
    if moved_kw < 0:
        raise ValueError("the moved power cannot be negative")
    return moved_kw * spec.state_mb_per_kw


def migration_transfer_hours(
    moved_kw: float, spec: VMSpec, bandwidth_mb_per_hour: float
) -> float:
    """WAN time to move ``moved_kw`` of fleet power over one link."""
    if bandwidth_mb_per_hour <= 0:
        raise ValueError("the WAN bandwidth must be positive")
    return migration_state_mb(moved_kw, spec) / bandwidth_mb_per_hour
