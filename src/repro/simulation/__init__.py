"""Discrete-event simulation substrate used by the GreenNebula emulation.

The paper validates GreenNebula in emulation (three servers standing in for
three datacenters).  We reproduce that with a small discrete-event engine:
an event queue with deterministic ordering, a trace recorder for the
quantities plotted in Fig. 15, and an HPC batch workload model (VM-shaped
jobs of the kind the paper runs inside VirtualBox).
"""

from repro.simulation.engine import PeriodicHandle, SimulationEngine, SimulationError
from repro.simulation.events import Event
from repro.simulation.trace import TraceRecorder
from repro.simulation.workload import HPCWorkloadGenerator, VMSpec

from repro.simulation import engine, events, trace, workload

__all__ = [
    "Event",
    "PeriodicHandle",
    "HPCWorkloadGenerator",
    "SimulationEngine",
    "SimulationError",
    "TraceRecorder",
    "VMSpec",
]
