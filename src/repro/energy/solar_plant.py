"""Photovoltaic production model (``alpha(d, t)``).

``alpha`` is the fraction of the *installed* (nameplate) solar capacity that a
plant produces during an epoch.  Nameplate capacity is defined at standard
test conditions (1000 W/m^2, 25 degC cell temperature), so the fraction is the
irradiance ratio corrected for cell-temperature derating and DC->AC
conversion losses.  The paper combines a 15 % module efficiency with
conversion losses into alpha; module efficiency cancels out of the fraction
but is kept here because it determines the land area per installed kW.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

STC_IRRADIANCE_W_M2 = 1000.0
STC_CELL_TEMPERATURE_C = 25.0


@dataclass(frozen=True)
class SolarPanelModel:
    """Multi-crystalline silicon PV plant model.

    Attributes
    ----------
    module_efficiency:
        Sunlight-to-DC efficiency (the paper uses 15 %).
    temperature_coefficient:
        Relative output change per degree of cell temperature above 25 degC
        (negative; typical -0.4 %/degC).
    inverter_efficiency:
        DC->AC conversion efficiency.
    noct_coefficient:
        Cell heating above ambient per unit irradiance (degC per W/m^2).
    """

    module_efficiency: float = 0.15
    temperature_coefficient: float = -0.004
    inverter_efficiency: float = 0.92
    noct_coefficient: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 < self.module_efficiency <= 1.0:
            raise ValueError("module efficiency must be in (0, 1]")
        if not 0.0 < self.inverter_efficiency <= 1.0:
            raise ValueError("inverter efficiency must be in (0, 1]")
        if self.temperature_coefficient > 0:
            raise ValueError("the temperature coefficient of silicon PV is negative")

    def cell_temperature_c(self, ambient_c: np.ndarray, ghi_w_m2: np.ndarray) -> np.ndarray:
        """Cell temperature given ambient temperature and irradiance."""
        return np.asarray(ambient_c, dtype=float) + self.noct_coefficient * np.asarray(
            ghi_w_m2, dtype=float
        )

    def production_fraction(
        self, ghi_w_m2: np.ndarray, ambient_temperature_c: np.ndarray
    ) -> np.ndarray:
        """``alpha``: fraction of installed capacity produced, in [0, 1]."""
        ghi = np.asarray(ghi_w_m2, dtype=float)
        cell = self.cell_temperature_c(ambient_temperature_c, ghi)
        derate = 1.0 + self.temperature_coefficient * (cell - STC_CELL_TEMPERATURE_C)
        fraction = (ghi / STC_IRRADIANCE_W_M2) * np.clip(derate, 0.0, None) * self.inverter_efficiency
        return np.clip(fraction, 0.0, 1.0)

    def area_per_kw_m2(self) -> float:
        """Land area needed per installed kW, m^2/kW.

        With 15 % efficient modules, 1 kW of nameplate needs ~6.7 m^2 of
        panel; packing, spacing and access roads roughly inflate that to the
        9.41 m^2/kW the paper uses (Table I).
        """
        panel_area = 1000.0 / (STC_IRRADIANCE_W_M2 * self.module_efficiency)
        packing_factor = 1.41
        return panel_area * packing_factor
