"""Capacity-factor helpers.

The capacity factor of a plant is the fraction of its theoretical maximum
annual production that it actually delivers — the annual mean of
``alpha(d, t)`` (solar) or ``beta(d, t)`` (wind).
"""

from __future__ import annotations

import numpy as np


def capacity_factor(production_fraction: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Capacity factor of a production-fraction series.

    ``weights`` (optional) gives the number of hours each entry represents;
    when omitted, the entries are assumed equally weighted.
    """
    series = np.asarray(production_fraction, dtype=float)
    if series.size == 0:
        raise ValueError("cannot compute a capacity factor of an empty series")
    if np.any(series < -1e-9) or np.any(series > 1.0 + 1e-9):
        raise ValueError("production fractions must lie within [0, 1]")
    if weights is None:
        return float(np.mean(series))
    weights = np.asarray(weights, dtype=float)
    if weights.shape != series.shape:
        raise ValueError("weights must have the same shape as the series")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    return float(np.average(series, weights=weights))


def annual_energy_kwh(
    installed_capacity_kw: float,
    production_fraction: np.ndarray,
    hours_per_step: float = 1.0,
    weights: np.ndarray | None = None,
) -> float:
    """Annual energy produced by a plant of ``installed_capacity_kw``.

    When ``weights`` is given it already contains the number of hours each
    step represents and ``hours_per_step`` is ignored for the total.
    """
    if installed_capacity_kw < 0:
        raise ValueError("installed capacity cannot be negative")
    series = np.asarray(production_fraction, dtype=float)
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        return float(installed_capacity_kw * np.sum(series * weights))
    return float(installed_capacity_kw * np.sum(series) * hours_per_step)
