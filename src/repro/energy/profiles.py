"""Per-location epoch profiles consumed by the placement framework.

The optimisation of Fig. 1 works on discrete time slots ("epochs").  Using
all 8760 hours of the TMY year for every candidate location makes the LPs
needlessly large, so — like the paper's own tool — we aggregate the year into
a set of *representative days*, each standing in for an equal slice of the
year, split into epochs of a few hours.  A :class:`LocationProfile` holds the
aggregated ``alpha``/``beta``/``PUE`` series for one location together with
the per-location scalars (prices, distances, plant capacity) needed by the
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.energy.capacity_factor import capacity_factor
from repro.energy.pue import PUEModel
from repro.energy.solar_plant import SolarPanelModel
from repro.energy.wind_plant import WindTurbineModel
from repro.weather.locations import Location, WorldCatalog
from repro.weather.records import DAYS_PER_YEAR, HOURS_PER_DAY


def calibrate_series(
    series: np.ndarray,
    target_mean: float,
    upper: float = 1.0,
    iterations: int = 60,
) -> np.ndarray:
    """Scale a production series so its mean hits ``target_mean``.

    Scaling preserves the diurnal/seasonal shape; values are clipped to
    ``[0, upper]`` and the scale factor is re-estimated a few times so the
    clipped series converges to the requested mean (used to pin anchor
    locations to the capacity factors published in the paper).
    """
    values = np.clip(np.asarray(series, dtype=float), 0.0, upper)
    if not 0.0 <= target_mean <= upper:
        raise ValueError(f"target mean {target_mean} outside [0, {upper}]")
    if target_mean == 0.0:
        return np.zeros_like(values)
    if float(values.max()) <= 0.0:
        # Nothing to scale: fall back to a flat series at the target level.
        return np.full_like(values, target_mean)
    if abs(float(values.mean()) - target_mean) <= 1e-6:
        # Already calibrated (e.g. a series rebuilt from calibrated data).
        return values

    def mean_at(scale: float) -> float:
        return float(np.clip(values * scale, 0.0, upper).mean())

    # The clipped mean is non-decreasing in the scale factor, so a simple
    # bisection finds the factor that hits the target (when it is reachable).
    low, high = 0.0, 1.0
    high_mean = mean_at(high)
    growth = 0
    while high_mean < target_mean and growth < 60:
        high *= 4.0
        high_mean = mean_at(high)
        growth += 1
    if high_mean < target_mean:
        # Target unreachable (too few non-zero entries): return the best effort.
        return np.clip(values * high, 0.0, upper)
    for _ in range(iterations):
        middle = 0.5 * (low + high)
        middle_mean = mean_at(middle)
        if middle_mean < target_mean:
            low = middle
        else:
            high = middle
            high_mean = middle_mean
        if abs(high_mean - target_mean) <= 1e-6:
            break
    return np.clip(values * high, 0.0, upper)


@dataclass(frozen=True)
class EpochGrid:
    """Discretisation of the year into epochs over representative days.

    Attributes
    ----------
    representative_days:
        Day-of-year indices (0-based) of the days that stand in for the year.
    hours_per_epoch:
        Epoch duration; must divide 24.
    """

    representative_days: tuple
    hours_per_epoch: int = 1

    def __post_init__(self) -> None:
        if not self.representative_days:
            raise ValueError("at least one representative day is required")
        if HOURS_PER_DAY % self.hours_per_epoch != 0:
            raise ValueError("hours_per_epoch must divide 24")
        for day in self.representative_days:
            if not 0 <= day < DAYS_PER_YEAR:
                raise ValueError(f"representative day {day} outside the year")

    @classmethod
    def from_seasons(cls, days_per_season: int = 1, hours_per_epoch: int = 3) -> "EpochGrid":
        """Pick representative days spread over the four seasons.

        With the defaults this yields 4 days x 8 epochs = 32 epochs, which is
        what the fast test configurations use; benchmarks use finer grids.
        """
        season_centres = (15, 105, 196, 288)  # mid-Jan, mid-Apr, mid-Jul, mid-Oct
        days: List[int] = []
        for centre in season_centres:
            for offset in range(days_per_season):
                days.append((centre + offset * 7) % DAYS_PER_YEAR)
        return cls(representative_days=tuple(sorted(days)), hours_per_epoch=hours_per_epoch)

    @property
    def epochs_per_day(self) -> int:
        return HOURS_PER_DAY // self.hours_per_epoch

    @property
    def num_epochs(self) -> int:
        return len(self.representative_days) * self.epochs_per_day

    @property
    def day_weight(self) -> float:
        """Number of real days each representative day stands for."""
        return DAYS_PER_YEAR / len(self.representative_days)

    @property
    def epoch_hours(self) -> float:
        """Duration of one epoch in hours (within its representative day)."""
        return float(self.hours_per_epoch)

    def epoch_weights_hours(self) -> np.ndarray:
        """Hours of the year represented by each epoch (sums to 8760)."""
        weight = self.hours_per_epoch * self.day_weight
        return np.full(self.num_epochs, weight)

    def hour_indices(self) -> np.ndarray:
        """Hour-of-year index array of shape (num_epochs, hours_per_epoch)."""
        indices = []
        for day in self.representative_days:
            day_start = day * HOURS_PER_DAY
            for epoch in range(self.epochs_per_day):
                start = day_start + epoch * self.hours_per_epoch
                indices.append(np.arange(start, start + self.hours_per_epoch))
        return np.array(indices)

    def aggregate(self, hourly_values: np.ndarray) -> np.ndarray:
        """Average an 8760-hour array into the epoch grid."""
        hourly = np.asarray(hourly_values, dtype=float)
        indices = self.hour_indices()
        return hourly[indices].mean(axis=1)

    def epoch_index(self, hour_of_year: float) -> int:
        """Map an absolute hour cyclically onto the grid's epoch sequence.

        The emulation layer runs simulation time over the grid's
        representative days back to back, so the mapping wraps around.
        """
        return int(hour_of_year // self.hours_per_epoch) % self.num_epochs


@dataclass(frozen=True)
class RefinedEpochGrid:
    """Epoch grid with *non-uniform* epoch durations.

    Produced by the adaptive epoch-grid scheme
    (:mod:`repro.core.adaptive_grid`): most of a representative day stays at
    a coarse resolution while the spans where the provisioning plan is
    storage- or migration-bound are split back to full resolution.
    ``day_patterns`` holds one tuple of epoch durations (in hours) per
    representative day; each pattern must sum to 24.  The interface mirrors
    :class:`EpochGrid` except that ``epoch_hours`` (and ``hours_per_epoch``)
    are per-epoch rather than scalar — the model builders broadcast either
    form.
    """

    representative_days: tuple
    day_patterns: tuple

    def __post_init__(self) -> None:
        if not self.representative_days:
            raise ValueError("at least one representative day is required")
        if len(self.day_patterns) != len(self.representative_days):
            raise ValueError("one duration pattern per representative day is required")
        for pattern in self.day_patterns:
            if not pattern or sum(pattern) != HOURS_PER_DAY:
                raise ValueError("every day pattern must sum to 24 hours")
            if any(int(h) != h or h < 1 for h in pattern):
                raise ValueError("epoch durations must be whole hours of at least one hour")
        for day in self.representative_days:
            if not 0 <= day < DAYS_PER_YEAR:
                raise ValueError(f"representative day {day} outside the year")
        # Cumulative epoch end-hours, precomputed once: epoch_index runs per
        # simulated hour per datacenter in the emulation loop.
        object.__setattr__(self, "_epoch_ends", np.cumsum(self.epoch_hours))

    @property
    def hours_per_epoch(self) -> tuple:
        """Per-day duration patterns; doubles as the grid-equality key."""
        return self.day_patterns

    @property
    def num_epochs(self) -> int:
        return sum(len(pattern) for pattern in self.day_patterns)

    @property
    def day_weight(self) -> float:
        """Number of real days each representative day stands for."""
        return DAYS_PER_YEAR / len(self.representative_days)

    @property
    def epoch_hours(self) -> np.ndarray:
        """Duration of each epoch in hours (non-uniform array form)."""
        return np.array(
            [hours for pattern in self.day_patterns for hours in pattern], dtype=float
        )

    def epoch_weights_hours(self) -> np.ndarray:
        """Hours of the year represented by each epoch (sums to 8760)."""
        return self.epoch_hours * self.day_weight

    def hour_indices(self) -> List[np.ndarray]:
        """Hour-of-year indices per epoch (ragged: one array per epoch)."""
        indices: List[np.ndarray] = []
        for day, pattern in zip(self.representative_days, self.day_patterns):
            start = day * HOURS_PER_DAY
            for hours in pattern:
                indices.append(np.arange(start, start + int(hours)))
                start += int(hours)
        return indices

    def aggregate(self, hourly_values: np.ndarray) -> np.ndarray:
        """Average an 8760-hour array into the (non-uniform) epoch grid."""
        hourly = np.asarray(hourly_values, dtype=float)
        return np.array([hourly[idx].mean() for idx in self.hour_indices()])

    def epoch_index(self, hour_of_year: float) -> int:
        """Map an absolute hour cyclically onto the non-uniform epochs."""
        ends = self._epoch_ends
        wrapped = float(hour_of_year) % ends[-1]
        return int(np.searchsorted(ends, wrapped, side="right"))


@dataclass
class LocationProfile:
    """Everything the cost model and the optimiser need about one location."""

    location: Location
    epochs: EpochGrid
    solar_alpha: np.ndarray
    wind_beta: np.ndarray
    pue: np.ndarray
    land_price_per_m2: float
    energy_price_per_kwh: float
    distance_power_km: float
    distance_network_km: float
    near_plant_capacity_kw: float

    def __post_init__(self) -> None:
        expected = self.epochs.num_epochs
        for name in ("solar_alpha", "wind_beta", "pue"):
            array = np.asarray(getattr(self, name), dtype=float)
            if array.shape != (expected,):
                raise ValueError(f"profile series {name} must have {expected} epochs")
            setattr(self, name, array)
        if np.any(self.pue < 1.0 - 1e-9):
            raise ValueError("PUE cannot be below 1.0")

    @property
    def name(self) -> str:
        return self.location.name

    @property
    def solar_capacity_factor(self) -> float:
        return capacity_factor(self.solar_alpha)

    @property
    def wind_capacity_factor(self) -> float:
        return capacity_factor(self.wind_beta)

    @property
    def average_pue(self) -> float:
        return float(np.mean(self.pue))

    @property
    def max_pue(self) -> float:
        return float(np.max(self.pue))


class ProfileBuilder:
    """Build :class:`LocationProfile` objects from a :class:`WorldCatalog`."""

    def __init__(
        self,
        catalog: WorldCatalog,
        solar_model: Optional[SolarPanelModel] = None,
        wind_model: Optional[WindTurbineModel] = None,
        pue_model: Optional[PUEModel] = None,
    ) -> None:
        self.catalog = catalog
        self.solar_model = solar_model or SolarPanelModel()
        self.wind_model = wind_model or WindTurbineModel()
        self.pue_model = pue_model or PUEModel()
        self._cache: Dict[tuple, LocationProfile] = {}

    def build(self, location: Location, epochs: EpochGrid) -> LocationProfile:
        """Build (and cache) the profile of one location on an epoch grid."""
        key = (location.name, epochs.representative_days, epochs.hours_per_epoch)
        if key in self._cache:
            return self._cache[key]
        tmy = self.catalog.tmy(location)
        alpha_hourly = self.solar_model.production_fraction(tmy.ghi_w_m2, tmy.temperature_c)
        beta_hourly = self.wind_model.production_fraction(
            tmy.wind_speed_m_s, tmy.pressure_kpa, tmy.temperature_c
        )
        pue_hourly = self.pue_model.series(tmy.temperature_c)

        # The TMY channels are in local solar time; the optimiser and the
        # GreenNebula scheduler reason about all locations at the same instant,
        # so the series are shifted to UTC.  This is what makes the sun "move"
        # from one candidate location to the next — the effect the
        # follow-the-renewables solutions exploit.
        shift = int(round(location.point.longitude / 15.0))
        alpha = epochs.aggregate(np.roll(alpha_hourly, -shift))
        beta = epochs.aggregate(np.roll(beta_hourly, -shift))
        pue = epochs.aggregate(np.roll(pue_hourly, -shift))

        overrides = location.overrides
        if overrides.solar_capacity_factor is not None:
            alpha = calibrate_series(alpha, overrides.solar_capacity_factor)
        if overrides.wind_capacity_factor is not None:
            beta = calibrate_series(beta, overrides.wind_capacity_factor)
        if overrides.max_pue is not None:
            pue = _calibrate_pue(pue, overrides.max_pue, self.pue_model.min_pue)

        profile = LocationProfile(
            location=location,
            epochs=epochs,
            solar_alpha=alpha,
            wind_beta=beta,
            pue=pue,
            land_price_per_m2=self.catalog.land_price_per_m2(location),
            energy_price_per_kwh=self.catalog.energy_price_per_kwh(location),
            distance_power_km=self.catalog.distance_to_power_km(location),
            distance_network_km=self.catalog.distance_to_network_km(location),
            near_plant_capacity_kw=self.catalog.near_plant_capacity_kw(location),
        )
        self._cache[key] = profile
        return profile

    def build_all(
        self, epochs: EpochGrid, names: Optional[Iterable[str]] = None
    ) -> List[LocationProfile]:
        """Profiles for all (or the named subset of) catalogue locations."""
        if names is None:
            locations: Sequence[Location] = self.catalog.locations
        else:
            locations = [self.catalog.get(name) for name in names]
        return [self.build(location, epochs) for location in locations]


def _calibrate_pue(pue: np.ndarray, target_max: float, floor: float) -> np.ndarray:
    """Rescale a PUE series so its maximum equals ``target_max`` (>= floor)."""
    target_max = max(target_max, floor)
    overhead = pue - 1.0
    peak = float(overhead.max())
    if peak <= 1e-9:
        return np.full_like(pue, target_max)
    scaled = 1.0 + overhead * ((target_max - 1.0) / peak)
    return np.maximum(scaled, 1.0)
