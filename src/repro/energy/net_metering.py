"""Net-metering policy.

Net metering lets a datacenter push surplus green energy into the grid and
draw it back later; the utility may credit anywhere between 0 % and 100 % of
the retail price for the pushed energy.  The paper's base case assumes a
100 % credit everywhere and finds that the *storage* aspect, not the revenue,
is what matters (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetMeteringPolicy:
    """Availability and pricing of net metering at a location or scenario.

    Attributes
    ----------
    allowed:
        Whether surplus green energy may be banked in the grid at all.
    credit_fraction:
        ``creditNetMeter``: fraction of the retail price paid for each kWh
        pushed into the grid (1.0 = full retail credit).
    """

    allowed: bool = True
    credit_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.credit_fraction <= 1.0:
            raise ValueError("net-metering credit must lie in [0, 1]")

    @classmethod
    def disallowed(cls) -> "NetMeteringPolicy":
        """A policy in which no energy may be net metered."""
        return cls(allowed=False, credit_fraction=0.0)

    def settlement_cost(
        self, drawn_kwh: float, pushed_kwh: float, retail_price_per_kwh: float
    ) -> float:
        """Net cost of the metered exchange for a billing period, in dollars.

        ``drawn_kwh`` is energy previously banked and drawn back (billed at
        retail like any other grid energy by the paper's brownCost formula),
        ``pushed_kwh`` is surplus pushed into the grid (credited at
        ``credit_fraction`` of retail).
        """
        if drawn_kwh < 0 or pushed_kwh < 0:
            raise ValueError("energy amounts cannot be negative")
        if not self.allowed and (drawn_kwh > 0 or pushed_kwh > 0):
            raise ValueError("net metering is not allowed under this policy")
        return retail_price_per_kwh * (drawn_kwh - self.credit_fraction * pushed_kwh)
