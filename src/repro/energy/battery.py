"""Battery storage model.

The placement framework only needs the battery *capacity* decision variable,
its charging efficiency and its price; GreenNebula's emulation additionally
simulates the charge/discharge state over time.  :class:`BatteryBank`
provides both: stateless parameters for the optimiser and a small stateful
simulator (charge/discharge with efficiency and capacity limits) used by the
emulation and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BatteryBank:
    """A bank of datacenter batteries.

    Attributes
    ----------
    capacity_kwh:
        Usable energy capacity.
    charge_efficiency:
        Fraction of energy sent to the battery that is actually stored
        (the paper uses 75 %); discharging is assumed lossless, i.e. the
        round-trip efficiency equals the charge efficiency.
    level_kwh:
        Current state of charge (simulation state, starts empty).
    """

    capacity_kwh: float
    charge_efficiency: float = 0.75
    level_kwh: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.capacity_kwh < 0:
            raise ValueError("battery capacity cannot be negative")
        if not 0.0 < self.charge_efficiency <= 1.0:
            raise ValueError("charge efficiency must be in (0, 1]")
        if not 0.0 <= self.level_kwh <= self.capacity_kwh + 1e-9:
            raise ValueError("initial battery level must lie within [0, capacity]")

    @property
    def headroom_kwh(self) -> float:
        """Energy that can still be stored (after efficiency losses)."""
        return max(0.0, self.capacity_kwh - self.level_kwh)

    def charge(self, energy_kwh: float) -> float:
        """Send ``energy_kwh`` to the battery; return the energy actually absorbed.

        The returned value is measured at the battery input (i.e. what the
        green plant had to supply), not what ended up stored.
        """
        if energy_kwh < 0:
            raise ValueError("cannot charge a negative amount of energy")
        storable = self.headroom_kwh
        absorbed_input = min(energy_kwh, storable / self.charge_efficiency if self.charge_efficiency else 0.0)
        self.level_kwh = min(self.capacity_kwh, self.level_kwh + absorbed_input * self.charge_efficiency)
        return absorbed_input

    def discharge(self, energy_kwh: float) -> float:
        """Draw up to ``energy_kwh`` from the battery; return the energy delivered."""
        if energy_kwh < 0:
            raise ValueError("cannot discharge a negative amount of energy")
        delivered = min(energy_kwh, self.level_kwh)
        self.level_kwh -= delivered
        return delivered

    def reset(self, level_kwh: float = 0.0) -> None:
        """Reset the state of charge (used between simulated days)."""
        if not 0.0 <= level_kwh <= self.capacity_kwh + 1e-9:
            raise ValueError("battery level must lie within [0, capacity]")
        self.level_kwh = min(level_kwh, self.capacity_kwh)
