"""Green-energy production, efficiency and storage models.

This subpackage turns raw weather (``repro.weather``) into the quantities the
placement framework consumes:

* ``alpha(d, t)`` — fraction of installed solar capacity produced in epoch
  ``t`` at location ``d`` (:class:`SolarPanelModel`),
* ``beta(d, t)`` — the same for wind (:class:`WindTurbineModel`, modelled on
  the Enercon E-126 used in the paper),
* ``PUE(d, t)`` — the temperature-driven power-usage-effectiveness curve of
  Fig. 4 (:class:`PUEModel`),
* battery and net-metering storage models, and
* :class:`LocationProfile` / :class:`ProfileBuilder`, which bundle everything
  into per-location epoch series over a representative year.
"""

from repro.energy.battery import BatteryBank
from repro.energy.capacity_factor import annual_energy_kwh, capacity_factor
from repro.energy.net_metering import NetMeteringPolicy
from repro.energy.pue import PUEModel
from repro.energy.solar_plant import SolarPanelModel
from repro.energy.wind_plant import WindTurbineModel
from repro.energy.profiles import (
    EpochGrid,
    LocationProfile,
    ProfileBuilder,
    RefinedEpochGrid,
    calibrate_series,
)

__all__ = [
    "BatteryBank",
    "EpochGrid",
    "LocationProfile",
    "NetMeteringPolicy",
    "PUEModel",
    "ProfileBuilder",
    "RefinedEpochGrid",
    "SolarPanelModel",
    "WindTurbineModel",
    "annual_energy_kwh",
    "calibrate_series",
    "capacity_factor",
]
