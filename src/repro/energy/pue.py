"""Temperature-driven PUE model (Fig. 4 of the paper).

The paper measured the curve on a free-cooled micro-datacenter (Parasol) with
a backup direct-expansion air conditioner: the PUE stays near 1.05 while
outside-air cooling suffices and climbs towards ~1.4 as the external
temperature approaches 45 degC and the DX unit carries the load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PUEModel:
    """Piecewise-linear PUE as a function of external temperature.

    The default break points reproduce Fig. 4: flat at ``min_pue`` up to
    ``free_cooling_limit_c``, a gentle slope while the economizer still covers
    most of the load, then a steep climb to ``max_pue`` at ``peak_temperature_c``.
    """

    min_pue: float = 1.05
    max_pue: float = 1.40
    free_cooling_limit_c: float = 15.0
    economizer_limit_c: float = 30.0
    peak_temperature_c: float = 45.0
    economizer_pue: float = 1.13

    def __post_init__(self) -> None:
        if self.min_pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")
        if not self.min_pue <= self.economizer_pue <= self.max_pue:
            raise ValueError("economizer PUE must lie between the minimum and maximum PUE")
        if not self.free_cooling_limit_c < self.economizer_limit_c < self.peak_temperature_c:
            raise ValueError("temperature break points must be increasing")

    def pue(self, temperature_c: np.ndarray | float) -> np.ndarray | float:
        """PUE for one or many external temperatures."""
        temperature = np.asarray(temperature_c, dtype=float)
        result = np.interp(
            temperature,
            [self.free_cooling_limit_c, self.economizer_limit_c, self.peak_temperature_c],
            [self.min_pue, self.economizer_pue, self.max_pue],
        )
        result = np.clip(result, self.min_pue, self.max_pue)
        if np.isscalar(temperature_c):
            return float(result)
        return result

    def series(self, temperature_c: np.ndarray) -> np.ndarray:
        """Vector alias of :meth:`pue` for clarity at call sites."""
        return np.asarray(self.pue(temperature_c), dtype=float)

    def curve(self, start_c: float = 15.0, stop_c: float = 45.0, step_c: float = 1.0):
        """The (temperature, PUE) curve of Fig. 4 as two arrays."""
        temperatures = np.arange(start_c, stop_c + step_c / 2.0, step_c)
        return temperatures, self.series(temperatures)
