"""Wind production model (``beta(d, t)``) based on the Enercon E-126 turbine.

``beta`` is the fraction of installed wind capacity produced in an epoch.  It
is computed from the turbine power curve (cut-in, cubic ramp to rated power,
flat region, cut-out), corrected for local air density derived from the TMY
pressure and temperature channels, and de-rated for electrical conversion
losses — the same ingredients the paper lists for its 7.6 MW E-126 model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SPECIFIC_GAS_CONSTANT_DRY_AIR = 287.058  # J/(kg*K)
REFERENCE_AIR_DENSITY = 1.225  # kg/m^3 (sea level, 15 degC)


@dataclass(frozen=True)
class WindTurbineModel:
    """Large onshore turbine (Enercon E-126 class) power-curve model.

    Attributes
    ----------
    rated_power_kw:
        Nameplate power of one turbine (7 580 kW for the E-126).
    cut_in_speed_m_s, rated_speed_m_s, cut_out_speed_m_s:
        Power-curve break points.
    conversion_efficiency:
        Generator/converter losses applied on top of the aerodynamic curve.
    rotor_diameter_m:
        Used to derive land area per installed kW (turbine spacing).
    """

    rated_power_kw: float = 7580.0
    cut_in_speed_m_s: float = 3.0
    rated_speed_m_s: float = 13.0
    cut_out_speed_m_s: float = 28.0
    conversion_efficiency: float = 0.93
    rotor_diameter_m: float = 127.0

    def __post_init__(self) -> None:
        if not 0.0 < self.conversion_efficiency <= 1.0:
            raise ValueError("conversion efficiency must be in (0, 1]")
        if not self.cut_in_speed_m_s < self.rated_speed_m_s < self.cut_out_speed_m_s:
            raise ValueError("power-curve break points must be ordered cut-in < rated < cut-out")

    def air_density(self, pressure_kpa: np.ndarray, temperature_c: np.ndarray) -> np.ndarray:
        """Air density in kg/m^3 from pressure and temperature."""
        pressure_pa = np.asarray(pressure_kpa, dtype=float) * 1000.0
        temperature_k = np.asarray(temperature_c, dtype=float) + 273.15
        return pressure_pa / (SPECIFIC_GAS_CONSTANT_DRY_AIR * temperature_k)

    def power_curve_fraction(self, wind_speed_m_s: np.ndarray) -> np.ndarray:
        """Aerodynamic power fraction of rated power at standard density."""
        speed = np.asarray(wind_speed_m_s, dtype=float)
        cubic = (speed**3 - self.cut_in_speed_m_s**3) / (
            self.rated_speed_m_s**3 - self.cut_in_speed_m_s**3
        )
        fraction = np.where(speed < self.cut_in_speed_m_s, 0.0, np.clip(cubic, 0.0, 1.0))
        fraction = np.where(speed >= self.rated_speed_m_s, 1.0, fraction)
        fraction = np.where(speed >= self.cut_out_speed_m_s, 0.0, fraction)
        return fraction

    def production_fraction(
        self,
        wind_speed_m_s: np.ndarray,
        pressure_kpa: np.ndarray | float = 101.325,
        temperature_c: np.ndarray | float = 15.0,
    ) -> np.ndarray:
        """``beta``: fraction of installed capacity produced, in [0, 1]."""
        fraction = self.power_curve_fraction(wind_speed_m_s)
        density = self.air_density(np.asarray(pressure_kpa, dtype=float), np.asarray(temperature_c, dtype=float))
        density_ratio = np.clip(density / REFERENCE_AIR_DENSITY, 0.5, 1.2)
        # Density only matters below rated power; at/above rated the turbine
        # is pitch-limited to nameplate output.
        below_rated = fraction < 1.0
        adjusted = np.where(below_rated, fraction * density_ratio, fraction)
        return np.clip(adjusted * self.conversion_efficiency, 0.0, 1.0)

    def area_per_kw_m2(self) -> float:
        """Land area per installed kW, m^2/kW.

        Turbines are spaced several rotor diameters apart; using the compact
        spacing the paper adopted for existing farms yields ~18 m^2/kW
        (Table I value: 18.21).
        """
        spacing_area_m2 = (3.0 * self.rotor_diameter_m) * (2.85 * self.rotor_diameter_m)
        return spacing_area_m2 / self.rated_power_kw
