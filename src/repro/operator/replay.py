"""Replay harness: oracle vs forecast-driven operation of a provisioned plan.

A replay runs the rolling-horizon dispatcher over a synthesized traffic
trace, one policy at a time, against the *same* demand and production
actuals:

* the **oracle** policy sees the actual series over its whole look-ahead
  window (perfect forecasts — the paper's assumption), and
* the **forecast** policy sees the configured forecasters' output (with the
  current step nowcast exactly, like a real operator would observe it).

Both policies realize their committed first step against the actuals, so the
difference between their operating costs is pure forecast regret: the money,
brown energy and SLA violations imperfect foresight costs.  The replay is
deterministic for a fixed spec — traffic, forecasts and LP solves all derive
from seeds and counters, never from wall-clock or process identity — which
is what lets the experiment runner cache replay records by content hash and
the determinism tests compare records bit for bit across executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.operator.dispatch import (
    DispatchConfig,
    DispatchDecision,
    RollingDispatcher,
    SiteAsset,
)
from repro.operator.faults import FaultSpec, SiteOutage
from repro.operator.forecast import RollingForecast, make_forecaster
from repro.operator.traffic import TrafficModel, TrafficTrace, default_regions
from repro.simulation.workload import VMSpec, migration_state_mb

#: Operating policies a replay can run.
POLICIES = ("forecast", "oracle")


@dataclass
class OperateConfig:
    """Everything one operating replay needs besides the plan itself."""

    steps: int = 168                      #: operating steps to replay
    step_hours: float = 1.0
    start_hour: float = 0.0
    horizon_hours: int = 24               #: dispatch look-ahead window
    reforecast_every: int = 1             #: rolling re-forecast cadence (steps)
    energy_forecast: str = "persistence"  #: per-site green-production forecaster
    load_forecast: str = "seasonal-naive"  #: global demand forecaster
    forecast_error: float = 0.0           #: noisy-oracle error level
    forecast_seed: int = 0
    traffic_seed: int = 0
    num_regions: int = 3
    base_utilization: float = 0.55
    peak_utilization: float = 0.95
    traffic_noise: float = 0.02
    flash_crowds_per_week: float = 1.0
    outages_per_week: float = 0.5
    wan_move_fraction_per_hour: float = 0.25  #: service share movable per hour
    unserved_penalty: float = 10.0
    shed_tiers: Optional[Sequence[Sequence[float]]] = None  #: priority classes [(fraction, penalty), ...]
    migration_penalty_per_kw: float = 1e-3
    export_credit: float = 1.0
    allow_export: bool = True
    battery_efficiency: float = 0.75
    migration_factor: float = 1.0
    incremental: Optional[bool] = None
    carry_block_status: bool = True
    greedy_fallback: bool = True          #: commit greedy steps when the solver is down

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("a replay needs at least one step")
        if self.step_hours <= 0 or self.horizon_hours < 2 * self.step_hours:
            raise ValueError("need a positive step and a horizon of at least two steps")
        if self.reforecast_every < 1:
            raise ValueError("the re-forecast cadence must be at least one step")
        if self.forecast_error < 0:
            raise ValueError("the forecast error cannot be negative")
        if not 0.0 < self.wan_move_fraction_per_hour:
            raise ValueError("the WAN move fraction must be positive")
        if self.shed_tiers is not None:
            # JSON-friendly [[fraction, penalty], ...] -> canonical tuples;
            # DispatchConfig validates fractions/penalties on construction.
            self.shed_tiers = tuple(
                (float(fraction), float(penalty)) for fraction, penalty in self.shed_tiers
            )

    @property
    def horizon_steps(self) -> int:
        return max(2, int(round(self.horizon_hours / self.step_hours)))

    def dispatch_config(self, total_capacity_kw: float) -> DispatchConfig:
        return DispatchConfig(
            horizon=self.horizon_steps,
            step_hours=self.step_hours,
            migration_factor=self.migration_factor,
            battery_efficiency=self.battery_efficiency,
            allow_export=self.allow_export,
            export_credit=self.export_credit,
            wan_move_kw=self.wan_move_fraction_per_hour * total_capacity_kw * self.step_hours,
            unserved_penalty=self.unserved_penalty,
            shed_tiers=self.shed_tiers,
            migration_penalty_per_kw=self.migration_penalty_per_kw,
            incremental=self.incremental,
            carry_block_status=self.carry_block_status,
            greedy_fallback=self.greedy_fallback,
        )


@dataclass
class ReplayResult:
    """Aggregate outcome of one policy's replay."""

    policy: str
    steps: int
    step_hours: float
    cost_usd: float
    brown_kwh: float
    green_kwh: float
    export_kwh: float
    unserved_kwh: float
    moved_kw: float
    migrated_state_gb: float
    migration_stall_steps: int
    sla_violation_steps: int
    stats: Dict[str, int]
    site_names: List[str]
    site_brown_kwh: np.ndarray
    site_compute_kwh: np.ndarray
    decisions: List[DispatchDecision] = field(default_factory=list, repr=False)

    @property
    def green_fraction(self) -> float:
        total = self.green_kwh + self.brown_kwh
        return self.green_kwh / total if total > 0 else 0.0

    @property
    def degraded(self) -> bool:
        """Did any step commit a greedy fallback decision (no LP optimum)?"""
        return self.stats.get("greedy_fallback_steps", 0) > 0

    @property
    def warm_start_rate(self) -> float:
        solves = self.stats.get("lp_solves", 0)
        return self.stats.get("warm_solves", 0) / solves if solves else 0.0

    def to_record(self) -> Dict[str, Any]:
        """JSON-ready summary (what the experiment runner stores)."""
        return {
            "policy": self.policy,
            "cost_usd": float(self.cost_usd),
            "brown_kwh": float(self.brown_kwh),
            "green_kwh": float(self.green_kwh),
            "export_kwh": float(self.export_kwh),
            "unserved_kwh": float(self.unserved_kwh),
            "green_fraction": float(self.green_fraction),
            "moved_kw": float(self.moved_kw),
            "migrated_state_gb": float(self.migrated_state_gb),
            "migration_stall_steps": int(self.migration_stall_steps),
            "sla_violation_steps": int(self.sla_violation_steps),
            "lp_solves": int(self.stats.get("lp_solves", 0)),
            "cold_loads": int(self.stats.get("cold_loads", 0)),
            "slides": int(self.stats.get("slides", 0)),
            "warm_start_rate": float(self.warm_start_rate),
            "simplex_iterations": int(self.stats.get("simplex_iterations", 0)),
            "slide_retries": int(self.stats.get("slide_retries", 0)),
            "fallback_rebuilds": int(self.stats.get("fallback_rebuilds", 0)),
            "forecast_blackout_steps": int(self.stats.get("forecast_blackout_steps", 0)),
            "greedy_fallback_steps": int(self.stats.get("greedy_fallback_steps", 0)),
            "degraded": bool(self.degraded),
            "site_brown_kwh": {
                name: float(value)
                for name, value in zip(self.site_names, self.site_brown_kwh)
            },
            "site_compute_kwh": {
                name: float(value)
                for name, value in zip(self.site_names, self.site_compute_kwh)
            },
        }


class ReplayHarness:
    """Drives one policy over a trace with a rolling-horizon dispatcher."""

    def __init__(
        self,
        sites: Sequence[SiteAsset],
        trace: TrafficTrace,
        config: OperateConfig,
        total_capacity_kw: float,
        vm_spec: Optional[VMSpec] = None,
        faults: Optional[FaultSpec] = None,
    ) -> None:
        if not sites:
            raise ValueError("the replay needs at least one site")
        horizon = config.horizon_steps
        needed = config.steps + horizon + config.reforecast_every
        if trace.num_steps < needed:
            raise ValueError(
                f"the trace must cover steps + horizon + cadence ({needed}), "
                f"got {trace.num_steps}"
            )
        for site in sites:
            if len(site.pue) < needed:
                raise ValueError(f"site {site.name!r} series shorter than the replay")
        self.sites = list(sites)
        self.trace = trace
        self.config = config
        self.total_capacity_kw = total_capacity_kw
        self.vm_spec = vm_spec or VMSpec(name="template")
        self._production = np.stack([site.production_kw[:needed] for site in self.sites])
        self._demand = np.asarray(trace.demand_kw[:needed], dtype=float)
        # Held-out faults perturb the *actuals*: surges multiply realized
        # demand, outages zero a site's realized production (its capacity is
        # withdrawn per step through the dispatcher).  Forecasters read the
        # same actuals, so the operator observes faults only as they unfold.
        self.faults = faults if faults is not None and not faults.is_empty else None
        self._capacity_factor_matrix: Optional[np.ndarray] = None
        self._wan_factor_steps: Optional[np.ndarray] = None
        self._blackout_steps: Optional[np.ndarray] = None
        if self.faults is not None:
            site_names = [site.name for site in self.sites]
            self._demand = self._demand * self.faults.demand_multipliers(needed)
            self._production = np.where(
                self.faults.outage_mask(needed, site_names), 0.0, self._production
            )
            # Precompute every per-step fault query once per replay so the
            # hot loop only indexes arrays (the scalar queries scan the fault
            # list on every call).
            self._capacity_factor_matrix = self.faults.capacity_factor_matrix(
                needed, site_names
            )
            self._wan_factor_steps = self.faults.wan_factors(needed)
            self._blackout_steps = self.faults.blackout_mask(needed)

    def _forecasts(self, policy: str):
        config = self.config
        horizon = config.horizon_steps
        cadence = config.reforecast_every
        if policy == "oracle":
            load_kind = energy_kind = "oracle"
        elif policy == "forecast":
            load_kind, energy_kind = config.load_forecast, config.energy_forecast
        else:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        period_steps = max(1, int(round(24.0 / config.step_hours)))
        load = RollingForecast(
            make_forecaster(
                load_kind,
                key="demand",
                error=config.forecast_error,
                seed=config.forecast_seed,
                period=period_steps,
            ),
            horizon=horizon,
            cadence=cadence,
        )
        energy = [
            RollingForecast(
                make_forecaster(
                    energy_kind,
                    key=site.name,
                    error=config.forecast_error,
                    seed=config.forecast_seed,
                    period=period_steps,
                ),
                horizon=horizon,
                cadence=cadence,
            )
            for site in self.sites
        ]
        return load, energy

    def run(self, policy: str = "forecast") -> ReplayResult:
        config = self.config
        delta = config.step_hours
        horizon = config.horizon_steps
        N = len(self.sites)
        load_forecast, energy_forecasts = self._forecasts(policy)
        dispatcher = RollingDispatcher(
            self.sites,
            config=config.dispatch_config(self.total_capacity_kw),
        )
        if self.faults is not None:
            if self.faults.solver_faults:
                dispatcher.inject_solve_failures(self.faults.solver_faults)
            if self.faults.solver_outages:
                dispatcher.inject_solver_outages(
                    self.faults.solver_outage_steps(config.steps)
                )

        # Initial state: demand spread proportionally to capacity (clipped to
        # each site's cap — an overloaded first step surfaces as unserved
        # demand, not as an infeasible anchor), batteries empty.
        capacities = np.array([site.capacity_kw for site in self.sites])
        load_kw = np.minimum(self._demand[0] * capacities / capacities.sum(), capacities)
        level_kwh = np.zeros(N)
        prices = np.array([site.energy_price_per_kwh for site in self.sites])
        wan_mb_per_step = migration_state_mb(
            config.wan_move_fraction_per_hour * self.total_capacity_kw * delta,
            self.vm_spec,
        )

        tier_penalties = (
            np.array([penalty for _, penalty in config.shed_tiers])
            if config.shed_tiers is not None
            else None
        )
        cost = brown = green = export = unserved = moved = state_gb = 0.0
        stalls = sla_steps = blackout_steps = 0
        site_brown = np.zeros(N)
        site_compute = np.zeros(N)
        decisions: List[DispatchDecision] = []

        for step in range(config.steps):
            demand_hat = load_forecast.window(self._demand, step)
            production_hat = np.stack(
                [
                    forecast.window(self._production[d], step)
                    for d, forecast in enumerate(energy_forecasts)
                ]
            )
            # The operator observes the current step exactly (nowcast).
            demand_hat = demand_hat.copy()
            demand_hat[0] = self._demand[step]
            production_hat[:, 0] = self._production[:, step]

            capacity_now = None
            wan_factor = 1.0
            if self.faults is not None:
                capacity_now = capacities * self._capacity_factor_matrix[:, step]
                wan_factor = float(self._wan_factor_steps[step])
                if policy == "forecast" and self._blackout_steps[step]:
                    # Forecasting service down: degrade to persistence (flat
                    # continuation of the current observation).  The rolling
                    # forecasters were still advanced above, so their cadence
                    # state — and the replay's determinism — is unaffected.
                    blackout_steps += 1
                    demand_hat = np.full(horizon, float(self._demand[step]))
                    production_hat = np.repeat(
                        self._production[:, step : step + 1], horizon, axis=1
                    )

            if step == 0:
                decision = dispatcher.start(
                    0, load_kw, level_kwh, demand_hat, production_hat,
                    capacity_now=capacity_now, wan_factor=wan_factor,
                )
            else:
                decision = dispatcher.advance(
                    load_kw, level_kwh, demand_hat, production_hat,
                    capacity_now=capacity_now, wan_factor=wan_factor,
                )
            decisions.append(decision)

            # Realize the committed first step against the actuals (position 0
            # of the window already carries them, so the LP flows *are* the
            # realized flows).
            brown_step = decision.brown_kw * delta
            green_step = (decision.green_direct_kw + decision.discharge_kw) * delta
            export_step = decision.export_kw * delta
            cost += float(np.sum(prices * brown_step))
            cost -= config.export_credit * float(np.sum(prices * export_step))
            cost += config.migration_penalty_per_kw * decision.moved_kw
            brown += float(brown_step.sum())
            green += float(green_step.sum())
            export += float(export_step.sum())
            site_brown += brown_step
            site_compute += decision.compute_kw * delta
            unserved_step = decision.unserved_kw * delta
            unserved += unserved_step
            # The SLA penalty is part of the realized cost, exactly as the
            # dispatch LP prices it — otherwise a policy that simply fails
            # to serve demand would "beat" the oracle on headline regret.
            # With tiered shedding each priority class pays its own penalty.
            if tier_penalties is not None and decision.unserved_by_tier is not None:
                cost += float(tier_penalties @ decision.unserved_by_tier) * delta
            else:
                cost += config.unserved_penalty * unserved_step
            if unserved_step > 1e-6:
                sla_steps += 1
            moved += decision.moved_kw
            moved_state = migration_state_mb(decision.moved_kw, self.vm_spec)
            state_gb += moved_state / 1024.0
            if wan_mb_per_step > 0 and moved_state >= 0.999 * wan_mb_per_step:
                stalls += 1

            # The committed placement and battery trajectory become the next
            # step's anchors.
            load_kw = decision.compute_kw.copy()
            level_kwh = decision.level_kwh.copy()

        stats = dict(dispatcher.stats)
        stats["forecast_blackout_steps"] = blackout_steps
        return ReplayResult(
            policy=policy,
            steps=config.steps,
            step_hours=delta,
            cost_usd=cost,
            brown_kwh=brown,
            green_kwh=green,
            export_kwh=export,
            unserved_kwh=unserved,
            moved_kw=moved,
            migrated_state_gb=state_gb,
            migration_stall_steps=stalls,
            sla_violation_steps=sla_steps,
            stats=stats,
            site_names=[site.name for site in self.sites],
            site_brown_kwh=site_brown,
            site_compute_kwh=site_compute,
            decisions=decisions,
        )


def sites_from_plan(plan, hours: np.ndarray) -> List[SiteAsset]:
    """Operator site assets for every datacenter of a network plan."""
    return [
        SiteAsset.from_plan_datacenter(dc, hours)
        for dc in sorted(plan.datacenters, key=lambda d: d.name)
    ]


def fragility(faulted: ReplayResult, nominal: ReplayResult) -> Dict[str, float]:
    """Fragility score of a plan: the faulted replay against its nominal twin.

    The interesting quantities are the *deltas* — unserved demand and SLA
    hours the faults caused, and the cost blowup relative to the same policy
    on the unfaulted trace — plus the resilience counters showing how the LP
    runtime degraded (retries, cold rebuilds, persistence fallbacks) instead
    of crashing.
    """
    baseline = abs(nominal.cost_usd)
    cost_delta = faulted.cost_usd - nominal.cost_usd
    return {
        "cost_usd": float(faulted.cost_usd),
        "cost_blowup_usd": float(cost_delta),
        "cost_blowup_pct": float(100.0 * cost_delta / baseline) if baseline > 0 else 0.0,
        "unserved_kwh": float(faulted.unserved_kwh),
        "unserved_delta_kwh": float(faulted.unserved_kwh - nominal.unserved_kwh),
        "sla_violation_steps": int(faulted.sla_violation_steps),
        "sla_delta_steps": int(faulted.sla_violation_steps - nominal.sla_violation_steps),
        "slide_retries": int(faulted.stats.get("slide_retries", 0)),
        "fallback_rebuilds": int(faulted.stats.get("fallback_rebuilds", 0)),
        "forecast_blackout_steps": int(faulted.stats.get("forecast_blackout_steps", 0)),
        "greedy_fallback_steps": int(faulted.stats.get("greedy_fallback_steps", 0)),
        "degraded": bool(faulted.degraded),
    }


def operate_plan(
    plan,
    config: OperateConfig,
    total_capacity_kw: Optional[float] = None,
    faults: Optional[FaultSpec] = None,
) -> Dict[str, Any]:
    """Replay a provisioned plan under the forecast and oracle policies.

    Returns a JSON-ready record: both policies' summaries plus the regret —
    the cost/brown/SLA penalty the forecast-driven operator pays relative to
    perfect foresight over the same trace.

    With a non-empty ``faults`` program the plan is additionally
    stress-replayed (forecast policy, same trace, faults injected) and the
    record gains a ``stress`` block scoring its fragility against the
    unfaulted forecast replay.
    """
    service_kw = float(total_capacity_kw or plan.total_capacity_kw)
    needed = config.steps + config.horizon_steps + config.reforecast_every
    hours = config.start_hour + config.step_hours * np.arange(needed, dtype=float)
    sites = sites_from_plan(plan, hours)
    traffic = TrafficModel(
        regions=default_regions(config.num_regions),
        seed=config.traffic_seed,
        base_utilization=config.base_utilization,
        peak_utilization=config.peak_utilization,
        noise_std=config.traffic_noise,
        flash_crowds_per_week=config.flash_crowds_per_week,
        outages_per_week=config.outages_per_week,
    )
    trace = traffic.synthesize(
        steps=needed,
        step_hours=config.step_hours,
        start_hour=config.start_hour,
        total_capacity_kw=service_kw,
        # The horizon/cadence padding must not change the operating period's
        # actuals: normalisation and events reference only the replayed steps.
        reference_steps=config.steps,
    )
    harness = ReplayHarness(sites, trace, config, total_capacity_kw=service_kw)
    forecast = harness.run("forecast")
    oracle = harness.run("oracle")
    record: Dict[str, Any] = {
        "steps": config.steps,
        "step_hours": config.step_hours,
        "horizon_steps": config.horizon_steps,
        "reforecast_every": config.reforecast_every,
        "num_sites": len(sites),
        "sites": [site.name for site in sites],
        "service_kw": service_kw,
        "load_forecast": config.load_forecast,
        "energy_forecast": config.energy_forecast,
        "forecast_error": config.forecast_error,
        "traffic_events": len(trace.events),
        "forecast": forecast.to_record(),
        "oracle": oracle.to_record(),
        "regret": regret(forecast, oracle),
    }
    # Flattened headline metrics so ResultSet.rows() picks them up.
    record.update(
        {
            "forecast_cost_usd": float(forecast.cost_usd),
            "oracle_cost_usd": float(oracle.cost_usd),
            "regret_cost_usd": record["regret"]["cost_usd"],
            "regret_cost_pct": record["regret"]["cost_pct"],
            "regret_brown_kwh": record["regret"]["brown_kwh"],
            "forecast_green_fraction": float(forecast.green_fraction),
            "oracle_green_fraction": float(oracle.green_fraction),
            "sla_violation_steps": int(forecast.sla_violation_steps),
            "lp_solves": int(forecast.stats.get("lp_solves", 0)),
            "cold_loads": int(forecast.stats.get("cold_loads", 0)),
            "slides": int(forecast.stats.get("slides", 0)),
            "warm_start_rate": float(forecast.warm_start_rate),
        }
    )
    if faults is not None and not faults.is_empty:
        stressed = ReplayHarness(
            sites, trace, config, total_capacity_kw=service_kw, faults=faults
        ).run("forecast")
        score = fragility(stressed, forecast)
        record["stress"] = {
            "faults": faults.to_dict(),
            "replay": stressed.to_record(),
            "fragility": score,
        }
        # Flattened headline fragility metrics, same convention as above.
        record.update(
            {
                "stress_cost_usd": score["cost_usd"],
                "stress_cost_blowup_pct": score["cost_blowup_pct"],
                "stress_unserved_kwh": score["unserved_kwh"],
                "stress_sla_violation_steps": score["sla_violation_steps"],
                "stress_slide_retries": score["slide_retries"],
                "stress_fallback_rebuilds": score["fallback_rebuilds"],
                "stress_blackout_steps": score["forecast_blackout_steps"],
                "stress_greedy_fallback_steps": score["greedy_fallback_steps"],
                "stress_degraded": score["degraded"],
            }
        )
    return record


def survivability_study(
    plan,
    n1_sizing: Dict[str, Dict[str, float]],
    config: OperateConfig,
    survivability_epsilon: float = 0.05,
    outage_start_step: int = 6,
    outage_duration_steps: int = 12,
    total_capacity_kw: Optional[float] = None,
) -> Dict[str, Any]:
    """Replay-level N-1 check: deterministic vs N-1 sizing under every outage.

    Both sizings are replayed (forecast policy) over the *same* synthesized
    trace — nominally, and once per site with that site knocked out for the
    configured window.  A sizing *survives* an outage when the unserved
    energy the outage adds stays within ``survivability_epsilon`` of the
    replayed service demand.  The study is the operational ground truth for
    the planner-level :func:`repro.robust.contingency.contingency_report`:
    the N-1 sizing should survive every contingency; the deterministic one
    typically fails its worst case.
    """
    from repro.robust.contingency import plan_with_sizing

    service_kw = float(total_capacity_kw or plan.total_capacity_kw)
    needed = config.steps + config.horizon_steps + config.reforecast_every
    hours = config.start_hour + config.step_hours * np.arange(needed, dtype=float)
    traffic = TrafficModel(
        regions=default_regions(config.num_regions),
        seed=config.traffic_seed,
        base_utilization=config.base_utilization,
        peak_utilization=config.peak_utilization,
        noise_std=config.traffic_noise,
        flash_crowds_per_week=config.flash_crowds_per_week,
        outages_per_week=config.outages_per_week,
    )
    trace = traffic.synthesize(
        steps=needed,
        step_hours=config.step_hours,
        start_hour=config.start_hour,
        total_capacity_kw=service_kw,
        reference_steps=config.steps,
    )
    demand_kwh = float(np.sum(trace.demand_kw[: config.steps])) * config.step_hours
    budget_kwh = survivability_epsilon * demand_kwh
    tolerance = 1e-9 * max(budget_kwh, 1.0)
    site_names = [dc.name for dc in sorted(plan.datacenters, key=lambda d: d.name)]

    plans = {"deterministic": plan, "n1": plan_with_sizing(plan, n1_sizing)}
    summaries: Dict[str, Dict[str, Any]] = {}
    for label, candidate in plans.items():
        sites = sites_from_plan(candidate, hours)
        nominal = ReplayHarness(
            sites, trace, config, total_capacity_kw=service_kw
        ).run("forecast")
        per_site: Dict[str, Dict[str, Any]] = {}
        for index, name in enumerate(site_names):
            faults = FaultSpec(
                site_outages=(
                    SiteOutage(
                        site=index,
                        start_step=outage_start_step,
                        duration_steps=outage_duration_steps,
                    ),
                )
            )
            faulted = ReplayHarness(
                sites, trace, config, total_capacity_kw=service_kw, faults=faults
            ).run("forecast")
            delta_kwh = faulted.unserved_kwh - nominal.unserved_kwh
            per_site[name] = {
                "unserved_kwh": float(faulted.unserved_kwh),
                "unserved_delta_kwh": float(delta_kwh),
                "cost_usd": float(faulted.cost_usd),
                "within_epsilon": bool(delta_kwh <= budget_kwh + tolerance),
                "degraded": bool(faulted.degraded),
            }
        worst_site = max(per_site, key=lambda name: per_site[name]["unserved_delta_kwh"])
        summaries[label] = {
            "nominal_cost_usd": float(nominal.cost_usd),
            "nominal_unserved_kwh": float(nominal.unserved_kwh),
            "worst_site": worst_site,
            "worst_unserved_delta_kwh": per_site[worst_site]["unserved_delta_kwh"],
            "within_epsilon": all(entry["within_epsilon"] for entry in per_site.values()),
            "per_site": per_site,
        }

    det, n1 = summaries["deterministic"], summaries["n1"]
    baseline = abs(det["nominal_cost_usd"])
    premium = n1["nominal_cost_usd"] - det["nominal_cost_usd"]
    return {
        "survivability_epsilon": float(survivability_epsilon),
        "budget_unserved_kwh": float(budget_kwh),
        "outage_start_step": int(outage_start_step),
        "outage_duration_steps": int(outage_duration_steps),
        "steps": int(config.steps),
        "num_sites": len(site_names),
        "sites": site_names,
        "plans": summaries,
        "cost_premium_pct": float(100.0 * premium / baseline) if baseline > 0 else 0.0,
        "unserved_reduction_kwh": float(
            det["worst_unserved_delta_kwh"] - n1["worst_unserved_delta_kwh"]
        ),
    }


def regret(policy: ReplayResult, oracle: ReplayResult) -> Dict[str, float]:
    """Forecast regret: what imperfect foresight cost, against the oracle."""
    cost_delta = policy.cost_usd - oracle.cost_usd
    baseline = abs(oracle.cost_usd)
    return {
        "cost_usd": float(cost_delta),
        "cost_pct": float(100.0 * cost_delta / baseline) if baseline > 0 else 0.0,
        "brown_kwh": float(policy.brown_kwh - oracle.brown_kwh),
        "unserved_kwh": float(policy.unserved_kwh - oracle.unserved_kwh),
        "migration_stall_steps": int(
            policy.migration_stall_steps - oracle.migration_stall_steps
        ),
        "sla_violation_steps": int(
            policy.sla_violation_steps - oracle.sla_violation_steps
        ),
    }
