"""Rolling-horizon dispatch core of the online operations subsystem.

Every operating step re-solves a sliding-window LP deciding, for each sited
datacenter and each step of the look-ahead horizon: its share of the service
load, the migration volume it sheds, how much brown energy it buys, how the
on-site green production is split between direct use, battery charging and
net-metered export, and the battery trajectory.  The formulation is the
paper's Fig. 1 provisioning LP with the sizing variables frozen at the
provisioned plan and the cyclic year replaced by an anchored look-ahead
window — plus an explicit unserved-demand slack whose penalty turns
capacity shortfalls (flash crowds) into a measurable SLA violation instead
of an infeasible LP.

The window LP is **never rebuilt between steps** on the incremental path:
the model lives in a :class:`~repro.lpsolver.highs_backend.MutableHighsModel`
whose columns and rows are laid out step-major, so advancing the horizon is

1. delete the expiring first step's column/row block,
2. re-anchor the new first step to the realized load and battery levels
   (the coefficients tying it to the deleted block vanish with the block,
   leaving pure bound edits),
3. append a fresh block at the horizon's far end, and
4. refresh the forecast-dependent right-hand sides (demand, production),

with the previous optimal basis carried across the splice.  A cold rebuild
of the identical window (:meth:`RollingDispatcher.rebuild_window`) serves as
the differential oracle, and ``stats`` counts loads/slides/solves so tests
can assert that a replay of *n* steps performs exactly one cold load and
``n - 1`` in-place slides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lpsolver import SolverOptions
from repro.lpsolver import highs_backend
from repro.lpsolver.model import RowFormLP
from repro.lpsolver.result import SolveStatus

#: Per-site variables of one window step, in column order.
_SITE_VARS = ("compute", "migrate", "brown", "green_direct", "charge", "discharge", "level", "export")
_C, _M, _B, _G, _CH, _DIS, _LEV, _X = range(8)

#: Tie-break cost ($/kWh) nudging the LP to use green directly rather than
#: export-and-reimport, and to leave the battery alone when it changes nothing.
_EPSILON_COST = 1e-6


@dataclass
class SiteAsset:
    """One provisioned datacenter as the operator sees it.

    ``pue`` and ``production_kw`` are precomputed per *operating step* over
    the whole replay (trace steps plus the forecast horizon), so the dispatch
    LP and the traffic/forecast layers index them by absolute step.
    """

    name: str
    capacity_kw: float
    battery_kwh: float
    energy_price_per_kwh: float
    pue: np.ndarray
    production_kw: np.ndarray
    solar_kw: float = 0.0
    wind_kw: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_kw <= 0:
            raise ValueError("a site needs positive IT capacity")
        if min(self.battery_kwh, self.energy_price_per_kwh) < 0:
            raise ValueError("battery capacity and energy price cannot be negative")
        self.pue = np.asarray(self.pue, dtype=float)
        self.production_kw = np.asarray(self.production_kw, dtype=float)
        if self.pue.shape != self.production_kw.shape:
            raise ValueError("pue and production series must share one length")

    @classmethod
    def from_plan_datacenter(cls, dc, hours: np.ndarray) -> "SiteAsset":
        """Operator view of one :class:`~repro.core.solution.DatacenterPlan`.

        The plan's epoch grid covers representative days; operating hours map
        onto it cyclically, exactly like the GreenNebula emulation does.
        """
        profile = dc.profile
        indices = np.array([profile.epochs.epoch_index(hour) for hour in np.asarray(hours)])
        production = (
            profile.solar_alpha[indices] * dc.solar_kw
            + profile.wind_beta[indices] * dc.wind_kw
        )
        return cls(
            name=dc.name,
            capacity_kw=float(dc.capacity_kw),
            battery_kwh=float(dc.battery_kwh),
            energy_price_per_kwh=float(profile.energy_price_per_kwh),
            pue=profile.pue[indices],
            production_kw=production,
            solar_kw=float(dc.solar_kw),
            wind_kw=float(dc.wind_kw),
        )


@dataclass
class DispatchConfig:
    """Knobs of the sliding-window dispatch LP."""

    horizon: int = 24                      #: look-ahead window length in steps
    step_hours: float = 1.0
    migration_factor: float = 1.0          #: paper's epoch-fraction migration overhead
    battery_efficiency: float = 0.75
    allow_export: bool = True              #: net-metered export of surplus green
    export_credit: float = 1.0             #: fraction of retail price paid for exports
    wan_move_kw: Optional[float] = None    #: per-step cap on total shifted load (None = uncapped)
    unserved_penalty: float = 10.0         #: $/kWh of demand left unserved (SLA)
    migration_penalty_per_kw: float = 1e-3  #: $ per kW of load shifted
    #: Tiered load shedding: ``((fraction, penalty_per_kwh), ...)`` priority
    #: classes.  Each tier may shed at most ``fraction`` of the step's demand
    #: at its own price; fractions must sum to 1.  ``None`` keeps the single
    #: global slack priced at ``unserved_penalty``.  Cheap (low-priority)
    #: tiers shed first simply because the LP minimises cost.
    shed_tiers: Optional[Tuple[Tuple[float, float], ...]] = None
    #: Engage the proportional-to-capacity greedy dispatcher when the
    #: retry -> cold-rebuild ladder exhausts, instead of raising
    #: :class:`DispatchError`.  Decisions taken this way are flagged
    #: ``degraded`` so replays complete with an honest record.
    greedy_fallback: bool = True
    incremental: Optional[bool] = None     #: None = auto (when HiGHS direct is available)
    #: Transplant the expiring step's basis statuses onto the appended step
    #: (per-block basis memory).  The slide is a pure block swap, and the
    #: transplant beats plain projection on it — 2614 vs 3732 simplex
    #: iterations and ~2 % wall-clock on the ``bench_basis_memory`` dispatch
    #: mix — so it is on by default; realized costs agree to < 1e-9 either way.
    carry_block_status: bool = True

    def __post_init__(self) -> None:
        if self.horizon < 2:
            raise ValueError("the dispatch window needs at least two steps")
        if self.step_hours <= 0:
            raise ValueError("the step duration must be positive")
        if not 0.0 <= self.migration_factor <= 1.0:
            raise ValueError("the migration factor must lie in [0, 1]")
        if not 0.0 < self.battery_efficiency <= 1.0:
            raise ValueError("the battery efficiency must lie in (0, 1]")
        if not 0.0 <= self.export_credit <= 1.0:
            raise ValueError("the export credit must lie in [0, 1]")
        if self.wan_move_kw is not None and self.wan_move_kw < 0:
            raise ValueError("the WAN move budget cannot be negative")
        if self.unserved_penalty <= 0:
            raise ValueError("the unserved-demand penalty must be positive")
        if self.shed_tiers is not None:
            tiers = tuple((float(frac), float(penalty)) for frac, penalty in self.shed_tiers)
            if not tiers:
                raise ValueError("shed_tiers needs at least one (fraction, penalty) tier")
            fractions = [frac for frac, _ in tiers]
            if any(frac <= 0 for frac in fractions) or abs(sum(fractions) - 1.0) > 1e-6:
                raise ValueError("shed-tier fractions must be positive and sum to 1")
            if any(penalty <= 0 for _, penalty in tiers):
                raise ValueError("shed-tier penalties must be positive")
            self.shed_tiers = tiers


@dataclass
class DispatchDecision:
    """The committed first step of one window solve (all arrays site-ordered)."""

    step: int
    objective: float
    compute_kw: np.ndarray
    migrate_kw: np.ndarray
    brown_kw: np.ndarray
    green_direct_kw: np.ndarray
    charge_kw: np.ndarray
    discharge_kw: np.ndarray
    level_kwh: np.ndarray
    export_kw: np.ndarray
    unserved_kw: float
    iterations: int = 0
    #: Unserved split by shedding tier (config order); None without tiers.
    unserved_by_tier: Optional[np.ndarray] = None
    #: True when the decision came from the greedy fallback, not the LP.
    degraded: bool = False

    @property
    def moved_kw(self) -> float:
        """Total load shifted away from its previous site this step."""
        return float(self.migrate_kw.sum())


class DispatchError(RuntimeError):
    """Raised when a window LP fails to solve to optimality."""


class RollingDispatcher:
    """Sliding-window dispatcher over one persistent mutable HiGHS model.

    Not thread-safe; one dispatcher per replay.  The fallback path (HiGHS
    direct backend unavailable, or ``incremental=False``) cold-builds the
    window row form every step — same LP, same numbers, no warm starts —
    and counts each build in ``stats["cold_loads"]``.
    """

    def __init__(
        self,
        sites: Sequence[SiteAsset],
        config: Optional[DispatchConfig] = None,
        options: Optional[SolverOptions] = None,
    ) -> None:
        if not sites:
            raise ValueError("the dispatcher needs at least one site")
        self.sites = list(sites)
        self.config = config or DispatchConfig()
        self.options = options or SolverOptions()
        self._N = len(self.sites)
        self._H = self.config.horizon
        # Tiered shedding appends its extra columns/rows at the *end* of each
        # step block so every legacy index (col 0 unserved, per-site offsets)
        # survives unchanged; without tiers the layout is exactly the old one.
        self._tiered = self.config.shed_tiers is not None
        self._tiers: Tuple[Tuple[float, float], ...] = (
            self.config.shed_tiers
            if self._tiered
            else ((1.0, self.config.unserved_penalty),)
        )
        self._K = len(self._tiers)
        self._ncols_step = 1 + 8 * self._N + (self._K - 1)
        self._nrows_step = 2 + 5 * self._N + (self._K if self._tiered else 0)
        self.incremental = (
            self.config.incremental
            if self.config.incremental is not None
            else highs_backend.AVAILABLE
        )
        if self.incremental and not highs_backend.AVAILABLE:
            raise RuntimeError("incremental dispatch requires the direct HiGHS backend")
        self._model = highs_backend.MutableHighsModel() if self.incremental else None
        # Current window state (kept for slides, RHS refreshes and rebuilds).
        self._start_step: Optional[int] = None
        self._load_kw: Optional[np.ndarray] = None
        self._level_kwh: Optional[np.ndarray] = None
        self._demand_hat: Optional[np.ndarray] = None
        self._production_hat: Optional[np.ndarray] = None
        # Realized first-step state under faults: per-site capacity actually
        # available right now (outages) and the WAN budget fraction in effect.
        # Future window steps always assume nominal conditions — faults are
        # unanticipated, the operator only observes them as they happen.
        self._capacity_nominal = np.array([site.capacity_kw for site in self.sites])
        self._capacity_now = self._capacity_nominal.copy()
        self._wan_factor = 1.0
        self._restore_first_step = False
        self._fault_steps: frozenset = frozenset()
        self._outage_steps: frozenset = frozenset()
        self._greedy = None
        self.stats: Dict[str, int] = {
            "lp_solves": 0,
            "cold_loads": 0,
            "slides": 0,
            "warm_solves": 0,
            "simplex_iterations": 0,
            "slide_retries": 0,
            "fallback_rebuilds": 0,
            "greedy_fallback_steps": 0,
        }

    def inject_solve_failures(self, steps) -> None:
        """Treat the warm solve at these window start steps as failed.

        Chaos-engineering hook: the listed steps skip the in-place warm solve
        and its basis-cleared retry, forcing the slide -> cold-rebuild
        fallback ladder so replays can verify graceful degradation (counters
        increment, objectives stay identical to the cold oracle).
        """
        self._fault_steps = frozenset(int(step) for step in steps)

    def inject_solver_outages(self, steps) -> None:
        """Treat *every* solve attempt at these window start steps as failed.

        Unlike :meth:`inject_solve_failures` (warm solve fails, the cold
        rebuild succeeds), an outage takes the solver down entirely: the
        whole retry -> cold-rebuild ladder exhausts, and the dispatcher
        either raises or — with ``greedy_fallback`` — commits a flagged
        degraded greedy decision so the replay still completes.
        """
        self._outage_steps = frozenset(int(step) for step in steps)

    # -- column/row block construction -----------------------------------------
    def _col(self, base: int, site: int, var: int) -> int:
        return base + 1 + 8 * site + var

    def _tier_col(self, base: int, tier: int) -> int:
        """Column of one shedding tier's unserved slack (tier 0 is column 0)."""
        if tier == 0:
            return base
        return base + 1 + 8 * self._N + (tier - 1)

    def _step_columns(self, absolute: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(cost, lower, upper) of one step's column block."""
        cfg = self.config
        delta = cfg.step_hours
        n = self._ncols_step
        cost = np.zeros(n)
        lower = np.zeros(n)
        upper = np.full(n, np.inf)
        for k, (_, penalty) in enumerate(self._tiers):
            cost[self._tier_col(0, k)] = penalty * delta
        for d, site in enumerate(self.sites):
            base = 1 + 8 * d
            upper[base + _C] = site.capacity_kw
            cost[base + _B] = site.energy_price_per_kwh * delta
            cost[base + _M] = cfg.migration_penalty_per_kw
            cost[base + _CH] = _EPSILON_COST * delta
            cost[base + _DIS] = _EPSILON_COST * delta
            upper[base + _LEV] = site.battery_kwh
            if site.battery_kwh <= 0:
                upper[base + _CH] = 0.0
                upper[base + _DIS] = 0.0
            if cfg.allow_export:
                cost[base + _X] = (_EPSILON_COST - cfg.export_credit * site.energy_price_per_kwh) * delta
            else:
                upper[base + _X] = 0.0
        return cost, lower, upper

    def _step_rows(
        self,
        absolute: int,
        base: int,
        prev_base: Optional[int],
        demand: float,
        production: np.ndarray,
        load_anchor: Optional[np.ndarray],
        level_anchor: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Row-wise CSR data of one step's row block.

        ``prev_base`` is the column base of the previous step's block, or
        ``None`` for the anchored first step (whose coupling terms move into
        the bounds via ``load_anchor`` / ``level_anchor``).
        """
        cfg = self.config
        delta = cfg.step_hours
        eff = cfg.battery_efficiency
        mf = cfg.migration_factor
        anchored = prev_base is None
        row_lower: List[float] = []
        row_upper: List[float] = []
        cols: List[List[int]] = []
        vals: List[List[float]] = []

        # demand: unserved (all tiers) + sum(compute) >= demand
        tier_cols = [self._tier_col(base, k) for k in range(self._K)]
        cols.append(tier_cols + [self._col(base, d, _C) for d in range(self._N)])
        vals.append([1.0] * (self._K + self._N))
        row_lower.append(float(demand))
        row_upper.append(np.inf)
        # wan: sum(migrate) <= budget
        cols.append([self._col(base, d, _M) for d in range(self._N)])
        vals.append([1.0] * self._N)
        row_lower.append(-np.inf)
        row_upper.append(cfg.wan_move_kw if cfg.wan_move_kw is not None else np.inf)

        for d, site in enumerate(self.sites):
            c = self._col(base, d, _C)
            m = self._col(base, d, _M)
            b = self._col(base, d, _B)
            g = self._col(base, d, _G)
            ch = self._col(base, d, _CH)
            dis = self._col(base, d, _DIS)
            lev = self._col(base, d, _LEV)
            x = self._col(base, d, _X)
            pue = float(site.pue[absolute])
            # capacity: compute + incoming-migration overhead within the cap
            cols.append([c, m])
            vals.append([1.0, 1.0])
            row_lower.append(-np.inf)
            row_upper.append(site.capacity_kw)
            # migration: load that left since the previous step
            if anchored:
                cols.append([m, c])
                vals.append([1.0, 1.0])
                row_lower.append(float(load_anchor[d]))
            else:
                cols.append([m, c, self._col(prev_base, d, _C)])
                vals.append([1.0, 1.0, -1.0])
                row_lower.append(0.0)
            row_upper.append(np.inf)
            # power balance: green + battery + brown cover the facility demand
            cols.append([g, dis, b, c, m])
            vals.append([1.0, 1.0, 1.0, -pue, -pue * mf])
            row_lower.append(0.0)
            row_upper.append(np.inf)
            # green allocation: direct use + charge + export within production
            cols.append([g, ch, x])
            vals.append([1.0, 1.0, 1.0])
            row_lower.append(-np.inf)
            row_upper.append(float(production[d]))
            # battery dynamics
            if anchored:
                cols.append([lev, ch, dis])
                vals.append([1.0, -eff * delta, delta])
                anchor = float(level_anchor[d])
                row_lower.append(anchor)
                row_upper.append(anchor)
            else:
                cols.append([lev, self._col(prev_base, d, _LEV), ch, dis])
                vals.append([1.0, -1.0, -eff * delta, delta])
                row_lower.append(0.0)
                row_upper.append(0.0)

        if self._tiered:
            # tier caps: each priority class may shed at most its share
            for k in range(self._K):
                cols.append([self._tier_col(base, k)])
                vals.append([1.0])
                row_lower.append(-np.inf)
                row_upper.append(self._tiers[k][0] * float(demand))

        starts = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum([len(entry) for entry in cols], out=starts[1:])
        return (
            np.asarray(row_lower),
            np.asarray(row_upper),
            starts,
            np.concatenate([np.asarray(entry, dtype=np.int64) for entry in cols]),
            np.concatenate([np.asarray(entry, dtype=float) for entry in vals]),
        )

    # -- whole-window assembly (cold path and differential oracle) --------------
    def _build_row_form(self) -> RowFormLP:
        """The current window as one RowFormLP (identical layout to the splices)."""
        H, N = self._H, self._N
        ncols = H * self._ncols_step
        nrows = H * self._nrows_step
        cost_parts, lower_parts, upper_parts = [], [], []
        row_lower = np.empty(nrows)
        row_upper = np.empty(nrows)
        coo_rows: List[np.ndarray] = []
        coo_cols: List[np.ndarray] = []
        coo_vals: List[np.ndarray] = []
        for t in range(H):
            absolute = self._start_step + t
            base = t * self._ncols_step
            prev_base = None if t == 0 else (t - 1) * self._ncols_step
            cost, lower, upper = self._step_columns(absolute)
            cost_parts.append(cost)
            lower_parts.append(lower)
            upper_parts.append(upper)
            r_lower, r_upper, starts, cols, vals = self._step_rows(
                absolute,
                base,
                prev_base,
                self._demand_hat[t],
                self._production_hat[:, t],
                self._load_kw if t == 0 else None,
                self._level_kwh if t == 0 else None,
            )
            offset = t * self._nrows_step
            row_lower[offset : offset + self._nrows_step] = r_lower
            row_upper[offset : offset + self._nrows_step] = r_upper
            lengths = np.diff(starts)
            coo_rows.append(np.repeat(np.arange(self._nrows_step, dtype=np.int64) + offset, lengths))
            coo_cols.append(cols)
            coo_vals.append(vals)

        rows = np.concatenate(coo_rows)
        cols = np.concatenate(coo_cols)
        vals = np.concatenate(coo_vals)
        order = np.argsort(cols * np.int64(nrows) + rows, kind="stable")
        indptr = np.zeros(ncols + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=ncols), out=indptr[1:])
        lower = np.concatenate(lower_parts)
        upper = np.concatenate(upper_parts)
        if self._faulted:
            self._override_first_step(row_lower, row_upper, upper)
        return RowFormLP(
            cost=np.concatenate(cost_parts),
            a_indptr=indptr.astype(np.int32),
            a_indices=rows[order].astype(np.int32),
            a_data=vals[order],
            shape=(nrows, ncols),
            row_lower=row_lower,
            row_upper=row_upper,
            lower=lower,
            upper=upper,
            integrality=np.zeros(ncols, dtype=np.int64),
            maximise=False,
            objective_constant=0.0,
        )

    @property
    def _faulted(self) -> bool:
        """Is the realized first step operating off-nominal right now?"""
        return self._wan_factor < 1.0 or bool(
            np.any(self._capacity_now < self._capacity_nominal)
        )

    def _wan_upper(self) -> float:
        """Effective WAN cap of the realized step under the current factor."""
        budget = self.config.wan_move_kw
        if self._wan_factor >= 1.0:
            return budget if budget is not None else np.inf
        # A degradation with no configured budget scales an implicit budget
        # of the fleet's total IT capacity, so the fault still bites.
        if budget is None:
            budget = float(self._capacity_nominal.sum())
        return budget * self._wan_factor

    def _override_first_step(
        self, row_lower: np.ndarray, row_upper: np.ndarray, upper: np.ndarray
    ) -> None:
        """Impose the realized (faulted) state on the window's first step.

        Compute is capped at the capacity actually available, the capacity
        row follows, and load stranded above the cap is released from the
        migration anchor (it crashed with the site — charging it as WAN
        migration would make a hard outage infeasible).
        """
        for d in range(self._N):
            cap = float(self._capacity_now[d])
            upper[1 + 8 * d + _C] = cap
            row_upper[2 + 5 * d] = cap
            row_lower[2 + 5 * d + 1] = min(float(self._load_kw[d]), cap)
        row_upper[1] = self._wan_upper()

    def _solve_cold_row_form(self, row_form: RowFormLP):
        """Solve a window row form cold (HiGHS direct, else linprog)."""
        if highs_backend.AVAILABLE:
            return highs_backend.solve_row_form(row_form, self.options)
        return _linprog_row_form(row_form, self.options)

    # -- window lifecycle --------------------------------------------------------
    def _set_window(
        self,
        start_step: int,
        load_kw: np.ndarray,
        level_kwh: np.ndarray,
        demand_hat: np.ndarray,
        production_hat: np.ndarray,
        capacity_now: Optional[np.ndarray] = None,
        wan_factor: float = 1.0,
    ) -> None:
        load_kw = np.asarray(load_kw, dtype=float)
        level_kwh = np.asarray(level_kwh, dtype=float)
        demand_hat = np.asarray(demand_hat, dtype=float)
        production_hat = np.asarray(production_hat, dtype=float)
        if load_kw.shape != (self._N,) or level_kwh.shape != (self._N,):
            raise ValueError("anchors must carry one value per site")
        if demand_hat.shape != (self._H,) or production_hat.shape != (self._N, self._H):
            raise ValueError("forecast windows must cover exactly the horizon")
        if capacity_now is None:
            self._capacity_now = self._capacity_nominal.copy()
        else:
            capacity_now = np.asarray(capacity_now, dtype=float)
            if capacity_now.shape != (self._N,):
                raise ValueError("capacity_now must carry one value per site")
            self._capacity_now = np.minimum(capacity_now, self._capacity_nominal)
        if not 0.0 <= wan_factor <= 1.0:
            raise ValueError("the WAN degradation factor must lie in [0, 1]")
        self._wan_factor = float(wan_factor)
        self._start_step = start_step
        self._load_kw = load_kw
        self._level_kwh = level_kwh
        self._demand_hat = demand_hat
        self._production_hat = production_hat

    def start(
        self,
        start_step: int,
        load_kw: np.ndarray,
        level_kwh: np.ndarray,
        demand_hat: np.ndarray,
        production_hat: np.ndarray,
        capacity_now: Optional[np.ndarray] = None,
        wan_factor: float = 1.0,
    ) -> DispatchDecision:
        """Cold-load the first window and solve it."""
        self._set_window(
            start_step, load_kw, level_kwh, demand_hat, production_hat,
            capacity_now=capacity_now, wan_factor=wan_factor,
        )
        if self.incremental:
            row_form = self._build_row_form()
            self._model.load(row_form)
            self._restore_first_step = self._faulted
        self.stats["cold_loads"] += 1
        return self._solve()

    def advance(
        self,
        load_kw: np.ndarray,
        level_kwh: np.ndarray,
        demand_hat: np.ndarray,
        production_hat: np.ndarray,
        capacity_now: Optional[np.ndarray] = None,
        wan_factor: float = 1.0,
    ) -> DispatchDecision:
        """Slide the window one step forward, re-anchor, refresh, solve."""
        if self._start_step is None:
            raise RuntimeError("advance() before start()")
        self._set_window(
            self._start_step + 1, load_kw, level_kwh, demand_hat, production_hat,
            capacity_now=capacity_now, wan_factor=wan_factor,
        )
        if not self.incremental:
            self.stats["cold_loads"] += 1
            self.stats["slides"] += 1
            return self._solve()

        model = self._model
        captured = None
        if self.config.carry_block_status:
            captured = model.capture_block_status(
                0, self._ncols_step, 0, self._nrows_step
            )
        # 1. drop the expiring step (its coupling coefficients go with it).
        model.delete_cols(np.arange(self._ncols_step, dtype=np.int64))
        model.delete_rows(np.arange(self._nrows_step, dtype=np.int64))
        # 2. re-anchor the (new) first step to the realized state.  Load
        #    stranded above the currently available capacity (a site outage)
        #    is released from the migration anchor — it crashed with the
        #    site, so it re-enters through the demand row instead.
        for d in range(self._N):
            mig_row = 2 + 5 * d + 1
            anchor_kw = min(float(self._load_kw[d]), float(self._capacity_now[d]))
            model.change_row_bounds(mig_row, anchor_kw, np.inf)
            bdyn_row = 2 + 5 * d + 4
            anchor = float(self._level_kwh[d])
            model.change_row_bounds(bdyn_row, anchor, anchor)
        # 3. append the fresh far-end step.
        t = self._H - 1
        absolute = self._start_step + t
        base = t * self._ncols_step
        cost, lower, upper = self._step_columns(absolute)
        empty = np.zeros(self._ncols_step + 1, dtype=np.int64)
        model.add_cols(cost, lower, upper, empty[: self._ncols_step + 1],
                       np.zeros(0, dtype=np.int64), np.zeros(0))
        r_lower, r_upper, starts, cols, vals = self._step_rows(
            absolute,
            base,
            (t - 1) * self._ncols_step,
            self._demand_hat[t],
            self._production_hat[:, t],
            None,
            None,
        )
        model.add_rows(r_lower, r_upper, starts, cols, vals)
        if captured is not None:
            model.overlay_block_status(base, captured[0],
                                       t * self._nrows_step, captured[1])
        # 4. refresh the forecast-dependent right-hand sides of the rest of
        #    the window (the appended step already carries fresh values).
        for k in range(t):
            offset = k * self._nrows_step
            demand_k = float(self._demand_hat[k])
            model.change_row_bounds(offset, demand_k, np.inf)
            for d in range(self._N):
                model.change_row_bounds(
                    offset + 2 + 5 * d + 3, -np.inf, float(self._production_hat[d, k])
                )
            if self._tiered:
                for tier in range(self._K):
                    model.change_row_bounds(
                        offset + 2 + 5 * self._N + tier,
                        -np.inf,
                        self._tiers[tier][0] * demand_k,
                    )
        # 5. impose (or lift) realized faults on the first step's bounds.
        #    Skipped entirely on the nominal path so fault support costs an
        #    unfaulted replay nothing.
        faulted = self._faulted
        if faulted or self._restore_first_step:
            indices = 1 + 8 * np.arange(self._N, dtype=np.int64) + _C
            model.change_col_bounds(indices, np.zeros(self._N), self._capacity_now)
            for d in range(self._N):
                model.change_row_bounds(2 + 5 * d, -np.inf, float(self._capacity_now[d]))
            model.change_row_bounds(1, -np.inf, self._wan_upper())
            self._restore_first_step = faulted
        self.stats["slides"] += 1
        return self._solve()

    # -- solving ----------------------------------------------------------------
    def _solve(self) -> DispatchDecision:
        # A solver outage (injected permanent failure) fails every rung of
        # the ladder; an injected solve failure only fails the warm legs.
        outage = self._start_step in self._outage_steps
        result = None
        if self.incremental:
            warm = self._model.basis_snapshot() is not None or self.stats["lp_solves"] > 0
            injected = outage or self._start_step in self._fault_steps
            if not injected:
                result = self._model.solve(self.options)
            if injected or result.status is not SolveStatus.OPTIMAL:
                # Resilience ladder: a failed (or injected-as-failed) warm
                # solve first retries once with the carried basis dropped — a
                # badly repaired alien basis is the usual culprit — and only
                # then falls back to a cold rebuild of the window.  Every leg
                # is counted; a non-optimal status never leaks an objective.
                self.stats["slide_retries"] += 1
                if not injected:
                    self._model.clear_basis()
                    result = self._model.solve(self.options)
                if injected or result.status is not SolveStatus.OPTIMAL:
                    self.stats["fallback_rebuilds"] += 1
                    self.stats["cold_loads"] += 1
                    self._model.load(self._build_row_form())
                    self._restore_first_step = self._faulted
                    result = None if outage else self._model.solve(self.options)
                warm = False
            if warm and result is not None and result.status is SolveStatus.OPTIMAL:
                self.stats["warm_solves"] += 1
        elif not outage:
            result = self._solve_cold_row_form(self._build_row_form())
        self.stats["lp_solves"] += 1
        if result is not None:
            self.stats["simplex_iterations"] += int(result.iterations)
        if result is None or result.status is not SolveStatus.OPTIMAL:
            if self.config.greedy_fallback:
                self.stats["greedy_fallback_steps"] += 1
                return self._greedy_decision()
            detail = (
                "solver unavailable (injected outage)"
                if result is None
                else f"{result.status.value}: {result.message}"
            )
            raise DispatchError(
                f"window LP at step {self._start_step} not optimal: {detail}"
            )
        return self._extract_decision(result.x, float(result.objective), int(result.iterations))

    def _greedy_decision(self) -> DispatchDecision:
        """Last-resort commitment of the realized step, flagged degraded."""
        from repro.operator.failover import GreedyFallbackDispatcher

        if self._greedy is None:
            self._greedy = GreedyFallbackDispatcher(self.sites, self.config)
        return self._greedy.decide(
            step=self._start_step,
            load_kw=self._load_kw,
            level_kwh=self._level_kwh,
            demand_kw=float(self._demand_hat[0]),
            production_kw=self._production_hat[:, 0],
            capacity_now=self._capacity_now,
            wan_budget_kw=self._wan_upper(),
        )

    def _extract_decision(self, x: np.ndarray, objective: float, iterations: int) -> DispatchDecision:
        block = np.asarray(x[: self._ncols_step], dtype=float)
        per_site = block[1 : 1 + 8 * self._N].reshape(self._N, 8)
        if self._tiered:
            tier_unserved = np.array([block[self._tier_col(0, k)] for k in range(self._K)])
            unserved = float(tier_unserved.sum())
        else:
            tier_unserved = None
            unserved = float(block[0])
        return DispatchDecision(
            step=self._start_step,
            objective=objective,
            compute_kw=per_site[:, _C].copy(),
            migrate_kw=per_site[:, _M].copy(),
            brown_kw=per_site[:, _B].copy(),
            green_direct_kw=per_site[:, _G].copy(),
            charge_kw=per_site[:, _CH].copy(),
            discharge_kw=per_site[:, _DIS].copy(),
            level_kwh=per_site[:, _LEV].copy(),
            export_kw=per_site[:, _X].copy(),
            unserved_kw=unserved,
            iterations=iterations,
            unserved_by_tier=tier_unserved,
        )

    # -- differential oracle ------------------------------------------------------
    def rebuild_window(self) -> float:
        """Cold-build and cold-solve the *current* window; returns the objective.

        Does not touch the mutable model or the counters — this is the
        differential oracle the sliding-horizon tests pin the incremental
        path against (same window state, from-scratch assembly).
        """
        if self._start_step is None:
            raise RuntimeError("rebuild_window() before start()")
        result = self._solve_cold_row_form(self._build_row_form())
        if result.status is not SolveStatus.OPTIMAL:
            raise DispatchError(
                f"rebuilt window LP at step {self._start_step} not optimal: "
                f"{result.status.value}: {result.message}"
            )
        return float(result.objective)


def _linprog_row_form(row_form: RowFormLP, options: SolverOptions):
    """Solve a row form with scipy.optimize.linprog (no-HiGHS fallback)."""
    from scipy import optimize, sparse

    matrix = row_form.matrix.tocsr()
    lower, upper = row_form.row_lower, row_form.row_upper
    eq = np.isfinite(lower) & (lower == upper)
    ub = np.isfinite(upper) & ~eq
    lb = np.isfinite(lower) & ~eq
    a_ub_parts, b_ub_parts = [], []
    if np.any(ub):
        a_ub_parts.append(matrix[ub])
        b_ub_parts.append(upper[ub])
    if np.any(lb):
        a_ub_parts.append(-matrix[lb])
        b_ub_parts.append(-lower[lb])
    result = optimize.linprog(
        c=row_form.cost,
        A_ub=sparse.vstack(a_ub_parts).tocsr() if a_ub_parts else None,
        b_ub=np.concatenate(b_ub_parts) if b_ub_parts else None,
        A_eq=matrix[eq] if np.any(eq) else None,
        b_eq=lower[eq] if np.any(eq) else None,
        bounds=np.column_stack([row_form.lower, row_form.upper]),
        method="highs",
    )
    from repro.lpsolver.result import SolveResult

    status = SolveStatus.OPTIMAL if result.status == 0 else SolveStatus.ERROR
    return SolveResult(
        status=status,
        objective=float(result.fun) if result.status == 0 else float("nan"),
        message=str(result.message),
        solver="linprog",
        iterations=int(getattr(result, "nit", 0) or 0),
        x=np.asarray(result.x, dtype=float) if result.status == 0 else None,
    )
