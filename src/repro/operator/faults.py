"""Declarative fault injection for rolling-horizon replays.

A :class:`FaultSpec` describes *held-out* perturbations of an operating
trace — events the planner never saw and the operator cannot anticipate:

* :class:`SiteOutage` — a site loses all IT capacity and on-site production
  for a window of steps; stranded load crashes back into the demand pool
  (served elsewhere or counted as unserved) instead of being billed as WAN
  migration.
* :class:`WanDegradation` — the inter-site migration budget is scaled down
  for a window (a congested or partially failed WAN link).
* :class:`ForecastBlackout` — the forecasting service is down; the forecast
  policy degrades to persistence (flat continuation of the last observation)
  until the blackout lifts.  The oracle policy is unaffected, so fragility
  is still scored against the same clairvoyant baseline.
* :class:`DemandSurge` — service demand is multiplied over a window (a flash
  crowd on top of whatever the traffic model already produced).

``solver_faults`` lists window start steps whose in-place warm solve is
*treated as failed*, driving the dispatcher's retry -> cold-rebuild ladder
(:meth:`~repro.operator.dispatch.RollingDispatcher.inject_solve_failures`) —
chaos engineering for the LP runtime rather than the plant.
:class:`SolverOutage` goes further: for a whole window *every* rung of that
ladder fails (the solver is down, not merely warm-start-confused), so the
dispatcher must fall back to the greedy degraded dispatcher
(:mod:`repro.operator.failover`) or raise.

All windows are half-open step ranges ``[start_step, start_step +
duration_steps)`` on the replay's step grid.  Sites are referenced by plan
name or by integer position in the replay's site order, so scenario files
can inject faults without knowing which locations the search will pick.

Construction **canonicalises** each fault channel: overlapping or adjacent
windows on the same site/channel merge deterministically — outage,
blackout and solver-outage windows union; WAN degradations split into
maximal segments carrying the minimum covering factor; demand surges split
into segments carrying the product of covering multipliers; solver fault
steps sort and dedupe.  Canonical forms are fixed points (idempotent) and
preserve every per-step query exactly, so two fault programs that behave
identically also hash and compare identically.

Everything round-trips through plain-JSON dicts (:meth:`FaultSpec.to_dict` /
:meth:`FaultSpec.from_dict`) so fault programs can live inside a
:class:`~repro.scenarios.spec.ScenarioSpec` and participate in content
hashing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np


def _require_window(start_step: int, duration_steps: int, what: str) -> None:
    if start_step < 0:
        raise ValueError(f"{what}: start_step cannot be negative")
    if duration_steps <= 0:
        raise ValueError(f"{what}: duration_steps must be positive")


@dataclass(frozen=True)
class SiteOutage:
    """One site contributes zero capacity and zero production for a window."""

    site: Union[str, int]
    start_step: int
    duration_steps: int

    def __post_init__(self) -> None:
        _require_window(self.start_step, self.duration_steps, "site outage")

    def resolve(self, site_names: Sequence[str]) -> int:
        """Index of the affected site in the replay's site order."""
        if isinstance(self.site, int):
            if not 0 <= self.site < len(site_names):
                raise ValueError(
                    f"site outage index {self.site} out of range for {len(site_names)} sites"
                )
            return self.site
        try:
            return list(site_names).index(self.site)
        except ValueError:
            raise ValueError(f"site outage names unknown site {self.site!r}") from None


@dataclass(frozen=True)
class WanDegradation:
    """The WAN migration budget is scaled by ``factor`` for a window."""

    start_step: int
    duration_steps: int
    factor: float = 0.0

    def __post_init__(self) -> None:
        _require_window(self.start_step, self.duration_steps, "WAN degradation")
        if not 0.0 <= self.factor < 1.0:
            raise ValueError("a WAN degradation factor must lie in [0, 1)")


@dataclass(frozen=True)
class ForecastBlackout:
    """The forecast policy falls back to persistence for a window."""

    start_step: int
    duration_steps: int

    def __post_init__(self) -> None:
        _require_window(self.start_step, self.duration_steps, "forecast blackout")


@dataclass(frozen=True)
class DemandSurge:
    """Realized demand is multiplied by ``multiplier`` for a window."""

    start_step: int
    duration_steps: int
    multiplier: float = 1.5

    def __post_init__(self) -> None:
        _require_window(self.start_step, self.duration_steps, "demand surge")
        if self.multiplier <= 0:
            raise ValueError("a demand-surge multiplier must be positive")


@dataclass(frozen=True)
class SolverOutage:
    """The LP solver is entirely unavailable for a window of steps."""

    start_step: int
    duration_steps: int

    def __post_init__(self) -> None:
        _require_window(self.start_step, self.duration_steps, "solver outage")


def _covers(start: int, duration: int, step: int) -> bool:
    return start <= step < start + duration


def _merge_windows(windows: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of half-open ``(start, duration)`` windows, merged when they
    overlap or touch, sorted by start."""
    spans = sorted((start, start + duration) for start, duration in windows)
    merged: List[List[int]] = []
    for start, stop in spans:
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], stop)
        else:
            merged.append([start, stop])
    return [(start, stop - start) for start, stop in merged]


def _canonical_segments(
    windows: Sequence[Tuple[int, int, float]], combine
) -> List[Tuple[int, int, float]]:
    """Maximal constant-value segments of overlapping valued windows.

    ``windows`` are ``(start, duration, value)``; ``combine`` folds the
    values covering a segment (``min`` for WAN factors, product for demand
    surges).  Adjacent segments with equal combined values merge, so the
    result is a canonical, idempotent representation.
    """
    points = sorted(
        {start for start, _, _ in windows} | {start + dur for start, dur, _ in windows}
    )
    segments: List[List] = []
    for a, b in zip(points, points[1:]):
        covering = [
            value for start, dur, value in windows if start <= a and b <= start + dur
        ]
        if not covering:
            continue
        value = combine(covering)
        if segments and segments[-1][1] == a and segments[-1][2] == value:
            segments[-1][1] = b
        else:
            segments.append([a, b, value])
    return [(start, stop - start, value) for start, stop, value in segments]


def _site_sort_key(site: Union[str, int]) -> Tuple:
    # Integer site references sort before names; never compare int with str.
    if isinstance(site, int):
        return (0, site, "")
    return (1, 0, site)


@dataclass(frozen=True)
class FaultSpec:
    """A complete fault program for one stress replay."""

    site_outages: Tuple[SiteOutage, ...] = ()
    wan_degradations: Tuple[WanDegradation, ...] = ()
    forecast_blackouts: Tuple[ForecastBlackout, ...] = ()
    demand_surges: Tuple[DemandSurge, ...] = ()
    solver_faults: Tuple[int, ...] = ()
    solver_outages: Tuple[SolverOutage, ...] = ()

    def __post_init__(self) -> None:
        # Outages merge per site (same-site overlapping/adjacent windows union).
        by_site: Dict[Union[str, int], List[Tuple[int, int]]] = {}
        for outage in self.site_outages:
            by_site.setdefault(outage.site, []).append(
                (outage.start_step, outage.duration_steps)
            )
        outages = tuple(
            SiteOutage(site=site, start_step=start, duration_steps=duration)
            for site in sorted(by_site, key=_site_sort_key)
            for start, duration in _merge_windows(by_site[site])
        )
        object.__setattr__(self, "site_outages", outages)
        object.__setattr__(
            self,
            "wan_degradations",
            tuple(
                WanDegradation(start_step=start, duration_steps=duration, factor=value)
                for start, duration, value in _canonical_segments(
                    [(w.start_step, w.duration_steps, w.factor) for w in self.wan_degradations],
                    min,
                )
            ),
        )
        object.__setattr__(
            self,
            "forecast_blackouts",
            tuple(
                ForecastBlackout(start_step=start, duration_steps=duration)
                for start, duration in _merge_windows(
                    [(b.start_step, b.duration_steps) for b in self.forecast_blackouts]
                )
            ),
        )
        object.__setattr__(
            self,
            "demand_surges",
            tuple(
                DemandSurge(start_step=start, duration_steps=duration, multiplier=value)
                for start, duration, value in _canonical_segments(
                    [(s.start_step, s.duration_steps, s.multiplier) for s in self.demand_surges],
                    math.prod,
                )
            ),
        )
        object.__setattr__(
            self, "solver_faults", tuple(sorted({int(step) for step in self.solver_faults}))
        )
        object.__setattr__(
            self,
            "solver_outages",
            tuple(
                SolverOutage(start_step=start, duration_steps=duration)
                for start, duration in _merge_windows(
                    [(o.start_step, o.duration_steps) for o in self.solver_outages]
                )
            ),
        )

    @property
    def is_empty(self) -> bool:
        return not (
            self.site_outages
            or self.wan_degradations
            or self.forecast_blackouts
            or self.demand_surges
            or self.solver_faults
            or self.solver_outages
        )

    # -- per-step queries (realized state at `step`) ----------------------------
    def capacity_factors(self, step: int, site_names: Sequence[str]) -> np.ndarray:
        """Per-site multiplier on available IT capacity at ``step``."""
        factors = np.ones(len(site_names))
        for outage in self.site_outages:
            if _covers(outage.start_step, outage.duration_steps, step):
                factors[outage.resolve(site_names)] = 0.0
        return factors

    def wan_factor(self, step: int) -> float:
        """Multiplier on the WAN migration budget at ``step`` (min over faults)."""
        factor = 1.0
        for degradation in self.wan_degradations:
            if _covers(degradation.start_step, degradation.duration_steps, step):
                factor = min(factor, degradation.factor)
        return factor

    def blackout(self, step: int) -> bool:
        """Is the forecasting service down at ``step``?"""
        return any(
            _covers(blackout.start_step, blackout.duration_steps, step)
            for blackout in self.forecast_blackouts
        )

    def demand_multiplier(self, step: int) -> float:
        """Surge multiplier on realized demand at ``step`` (surges compound)."""
        multiplier = 1.0
        for surge in self.demand_surges:
            if _covers(surge.start_step, surge.duration_steps, step):
                multiplier *= surge.multiplier
        return multiplier

    def outage_mask(self, num_steps: int, site_names: Sequence[str]) -> np.ndarray:
        """Boolean ``(num_sites, num_steps)`` mask of outage coverage."""
        mask = np.zeros((len(site_names), num_steps), dtype=bool)
        for outage in self.site_outages:
            row = outage.resolve(site_names)
            start = outage.start_step
            stop = min(start + outage.duration_steps, num_steps)
            if start < num_steps:
                mask[row, start:stop] = True
        return mask

    def demand_multipliers(self, num_steps: int) -> np.ndarray:
        """Per-step surge multiplier vector over ``num_steps`` steps."""
        multipliers = np.ones(num_steps)
        for surge in self.demand_surges:
            start = surge.start_step
            stop = min(start + surge.duration_steps, num_steps)
            if start < num_steps:
                multipliers[start:stop] *= surge.multiplier
        return multipliers

    # -- vectorized per-replay queries ------------------------------------------
    def capacity_factor_matrix(self, num_steps: int, site_names: Sequence[str]) -> np.ndarray:
        """``(num_sites, num_steps)`` capacity multipliers — columns are what
        :meth:`capacity_factors` returns per step, precomputed for a replay."""
        return np.where(self.outage_mask(num_steps, site_names), 0.0, 1.0)

    def wan_factors(self, num_steps: int) -> np.ndarray:
        """Per-step WAN budget multiplier vector (min over covering faults)."""
        factors = np.ones(num_steps)
        for degradation in self.wan_degradations:
            start = degradation.start_step
            stop = min(start + degradation.duration_steps, num_steps)
            if start < num_steps:
                np.minimum(
                    factors[start:stop], degradation.factor, out=factors[start:stop]
                )
        return factors

    def blackout_mask(self, num_steps: int) -> np.ndarray:
        """Boolean per-step vector of forecast-blackout coverage."""
        mask = np.zeros(num_steps, dtype=bool)
        for blackout in self.forecast_blackouts:
            start = blackout.start_step
            stop = min(start + blackout.duration_steps, num_steps)
            if start < num_steps:
                mask[start:stop] = True
        return mask

    def solver_outage_steps(self, num_steps: int) -> np.ndarray:
        """Sorted step indices at which the LP solver is entirely down."""
        mask = np.zeros(num_steps, dtype=bool)
        for outage in self.solver_outages:
            start = outage.start_step
            stop = min(start + outage.duration_steps, num_steps)
            if start < num_steps:
                mask[start:stop] = True
        return np.flatnonzero(mask)

    # -- JSON round-trip --------------------------------------------------------
    def to_dict(self) -> Dict[str, List]:
        payload: Dict[str, List] = {}
        if self.site_outages:
            payload["site_outages"] = [
                {"site": o.site, "start_step": o.start_step, "duration_steps": o.duration_steps}
                for o in self.site_outages
            ]
        if self.wan_degradations:
            payload["wan_degradations"] = [
                {"start_step": w.start_step, "duration_steps": w.duration_steps, "factor": w.factor}
                for w in self.wan_degradations
            ]
        if self.forecast_blackouts:
            payload["forecast_blackouts"] = [
                {"start_step": b.start_step, "duration_steps": b.duration_steps}
                for b in self.forecast_blackouts
            ]
        if self.demand_surges:
            payload["demand_surges"] = [
                {"start_step": s.start_step, "duration_steps": s.duration_steps,
                 "multiplier": s.multiplier}
                for s in self.demand_surges
            ]
        if self.solver_faults:
            payload["solver_faults"] = list(self.solver_faults)
        if self.solver_outages:
            payload["solver_outages"] = [
                {"start_step": o.start_step, "duration_steps": o.duration_steps}
                for o in self.solver_outages
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        known = {
            "site_outages",
            "wan_degradations",
            "forecast_blackouts",
            "demand_surges",
            "solver_faults",
            "solver_outages",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        return cls(
            site_outages=tuple(SiteOutage(**entry) for entry in payload.get("site_outages", ())),
            wan_degradations=tuple(
                WanDegradation(**entry) for entry in payload.get("wan_degradations", ())
            ),
            forecast_blackouts=tuple(
                ForecastBlackout(**entry) for entry in payload.get("forecast_blackouts", ())
            ),
            demand_surges=tuple(
                DemandSurge(**entry) for entry in payload.get("demand_surges", ())
            ),
            solver_faults=tuple(payload.get("solver_faults", ())),
            solver_outages=tuple(
                SolverOutage(**entry) for entry in payload.get("solver_outages", ())
            ),
        )
