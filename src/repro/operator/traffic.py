"""Request-level traffic synthesis for the online operations subsystem.

The siting study provisions a network for a fixed service size; *operating*
it needs the hour-by-hour demand of that service.  This module synthesizes
it from regional user populations: each :class:`Region` contributes a
diurnal activity curve phased by its longitude (users are awake in their
local daytime), a weekly shape (weekends are quieter), a seasonal swell and
a small amount of deterministic noise.  On top of the smooth shape the model
injects *flash crowds* (a region's demand spikes for a few hours) and
*outages* (a region goes dark), drawn once per seed so a trace is fully
reproducible — the same seed yields the same events and the same per-step
demand in every process, which the replay-determinism tests rely on.

The synthesized trace is expressed as utilization of the provisioned service
(``demand_kw``), and :func:`repro.simulation.workload` helpers map it to VM
fleet counts and migration state sizes — the units the dispatch LP's WAN
budget and the migration-stall accounting are written in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.operator.forecast import deterministic_noise
from repro.simulation.workload import VMSpec, fleet_counts

HOURS_PER_DAY = 24.0
HOURS_PER_WEEK = 168.0
HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class Region:
    """One regional user population feeding the service."""

    name: str
    longitude_deg: float          #: phases the diurnal curve (local solar time)
    weight: float                 #: share of the global user base
    diurnal_amplitude: float = 0.35
    weekly_amplitude: float = 0.20
    seasonal_amplitude: float = 0.10

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("a region must carry positive weight")
        for name in ("diurnal_amplitude", "weekly_amplitude", "seasonal_amplitude"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")


@dataclass(frozen=True)
class TrafficEvent:
    """A flash crowd (demand spike) or an outage (demand drop) in one region."""

    kind: str                     #: ``"flash_crowd"`` or ``"outage"``
    region: str
    start_hour: float
    duration_hours: float
    magnitude: float              #: fractional demand added (crowd) or removed (outage)

    def __post_init__(self) -> None:
        if self.kind not in ("flash_crowd", "outage"):
            raise ValueError(f"unknown traffic event kind {self.kind!r}")
        if self.duration_hours <= 0:
            raise ValueError("an event must last a positive number of hours")
        if self.magnitude < 0:
            raise ValueError("the event magnitude cannot be negative")

    def factor(self, hour: np.ndarray) -> np.ndarray:
        """Multiplicative demand factor of this event at the given hours."""
        active = (hour >= self.start_hour) & (hour < self.start_hour + self.duration_hours)
        if self.kind == "flash_crowd":
            return np.where(active, 1.0 + self.magnitude, 1.0)
        return np.where(active, max(0.0, 1.0 - self.magnitude), 1.0)


def default_regions(count: int = 3) -> Tuple[Region, ...]:
    """``count`` regions spread in longitude with geometrically decaying weight."""
    if count < 1:
        raise ValueError("at least one region is required")
    names = ("americas", "emea", "apac", "oceania", "arctic", "atlantic")
    regions = []
    for index in range(count):
        regions.append(
            Region(
                name=names[index % len(names)] if index < len(names) else f"region-{index}",
                longitude_deg=-90.0 + index * (360.0 / count),
                weight=0.5 ** index,
            )
        )
    total = sum(region.weight for region in regions)
    return tuple(
        Region(
            name=region.name,
            longitude_deg=region.longitude_deg,
            weight=region.weight / total,
            diurnal_amplitude=region.diurnal_amplitude,
            weekly_amplitude=region.weekly_amplitude,
            seasonal_amplitude=region.seasonal_amplitude,
        )
        for region in regions
    )


@dataclass
class TrafficTrace:
    """A synthesized demand trace, epoch-aligned with the replay's steps."""

    hours: np.ndarray             #: absolute hour of each step
    demand_kw: np.ndarray         #: service demand per step (kW of fleet power)
    utilization: np.ndarray       #: demand as a fraction of the provisioned service
    events: List[TrafficEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.hours = np.asarray(self.hours, dtype=float)
        self.demand_kw = np.asarray(self.demand_kw, dtype=float)
        self.utilization = np.asarray(self.utilization, dtype=float)
        if not (len(self.hours) == len(self.demand_kw) == len(self.utilization)):
            raise ValueError("trace series must share one length")

    @property
    def num_steps(self) -> int:
        return len(self.hours)

    def fleet_counts(self, spec: Optional[VMSpec] = None) -> np.ndarray:
        """Per-step VM fleet size serving the demand (ceil of kW / VM power)."""
        return fleet_counts(self.demand_kw, spec or VMSpec(name="template"))


class TrafficModel:
    """Synthesizes deterministic regional demand traces.

    Parameters
    ----------
    regions:
        The user populations; :func:`default_regions` when omitted.
    seed:
        Drives the event draw and the per-step noise.  Everything is a pure
        function of ``(seed, step index)`` — no RNG state survives between
        calls, so traces are identical across processes and call orders.
    base_utilization / peak_utilization:
        The smooth shape is scaled so its mean sits at ``base_utilization``
        and its maximum at ``peak_utilization`` (of the provisioned service);
        flash crowds can push individual steps above the peak, which is what
        exercises the replay's unserved-demand (SLA) accounting.
    noise_std:
        Relative step noise (deterministic, see above).
    flash_crowds_per_week / outages_per_week:
        Expected event counts; the actual draw is Poisson per trace.
    """

    def __init__(
        self,
        regions: Optional[Sequence[Region]] = None,
        seed: int = 0,
        base_utilization: float = 0.55,
        peak_utilization: float = 0.95,
        noise_std: float = 0.02,
        flash_crowds_per_week: float = 1.0,
        outages_per_week: float = 0.5,
    ) -> None:
        self.regions = tuple(regions) if regions else default_regions()
        if not 0.0 < base_utilization <= peak_utilization:
            raise ValueError("need 0 < base_utilization <= peak_utilization")
        if peak_utilization <= 0:
            raise ValueError("the peak utilization must be positive")
        if noise_std < 0 or flash_crowds_per_week < 0 or outages_per_week < 0:
            raise ValueError("rates and noise levels cannot be negative")
        self.seed = seed
        self.base_utilization = base_utilization
        self.peak_utilization = peak_utilization
        self.noise_std = noise_std
        self.flash_crowds_per_week = flash_crowds_per_week
        self.outages_per_week = outages_per_week

    # -- shape ----------------------------------------------------------------
    def _regional_activity(self, region: Region, hours: np.ndarray) -> np.ndarray:
        """Smooth activity curve of one region (positive, mean ~1)."""
        local = hours + region.longitude_deg / 15.0
        diurnal = 1.0 + region.diurnal_amplitude * np.sin(
            2.0 * np.pi * (local - 9.0) / HOURS_PER_DAY
        )
        day_of_week = np.floor(hours / HOURS_PER_DAY) % 7.0
        weekly = np.where(day_of_week >= 5.0, 1.0 - region.weekly_amplitude, 1.0)
        seasonal = 1.0 + region.seasonal_amplitude * np.sin(
            2.0 * np.pi * hours / HOURS_PER_YEAR
        )
        return diurnal * weekly * seasonal

    def _draw_events(self, start_hour: float, duration_hours: float) -> List[TrafficEvent]:
        """Poisson event draw, fixed once per (seed, window)."""
        rng = np.random.default_rng([int(self.seed), 0xE7E27])
        weeks = duration_hours / HOURS_PER_WEEK
        events: List[TrafficEvent] = []
        for kind, rate in (
            ("flash_crowd", self.flash_crowds_per_week),
            ("outage", self.outages_per_week),
        ):
            count = int(rng.poisson(rate * weeks))
            for _ in range(count):
                region = self.regions[int(rng.integers(len(self.regions)))]
                events.append(
                    TrafficEvent(
                        kind=kind,
                        region=region.name,
                        start_hour=float(start_hour + rng.uniform(0.0, duration_hours)),
                        duration_hours=float(rng.uniform(1.0, 6.0)),
                        magnitude=float(
                            rng.uniform(0.3, 0.9)
                            if kind == "flash_crowd"
                            else rng.uniform(0.5, 1.0)
                        ),
                    )
                )
        events.sort(key=lambda event: (event.start_hour, event.region, event.kind))
        return events

    # -- synthesis ------------------------------------------------------------
    def synthesize(
        self,
        steps: int,
        step_hours: float = 1.0,
        start_hour: float = 0.0,
        total_capacity_kw: float = 50_000.0,
        reference_steps: Optional[int] = None,
    ) -> TrafficTrace:
        """A demand trace of ``steps`` steps for a service of the given size.

        ``reference_steps`` fixes the window the shape normalisation and the
        event draw are computed over (default: the whole trace).  The replay
        harness passes its *operating* period here while requesting extra
        steps for the forecast horizon, so the actuals of the operating
        period do not change when the look-ahead horizon or re-forecast
        cadence do — horizon sweeps then compare policies on literally the
        same trace.
        """
        if steps < 1:
            raise ValueError("a trace needs at least one step")
        if step_hours <= 0 or total_capacity_kw <= 0:
            raise ValueError("step duration and service size must be positive")
        reference = steps if reference_steps is None else int(reference_steps)
        if not 1 <= reference <= steps:
            raise ValueError("reference_steps must lie in [1, steps]")
        hours = start_hour + step_hours * np.arange(steps, dtype=float)
        events = self._draw_events(start_hour, reference * step_hours)

        shape = np.zeros(steps)
        for region in self.regions:
            activity = self._regional_activity(region, hours)
            for event in events:
                if event.region == region.name:
                    activity = activity * event.factor(hours)
            shape += region.weight * activity

        # Normalise the *smooth* shape (events excluded) so base/peak land
        # where asked; events then scale individual steps beyond the peak.
        # Statistics come from the reference window only, so trailing
        # horizon padding never shifts the operating period's demand.
        smooth = np.zeros(steps)
        for region in self.regions:
            smooth += region.weight * self._regional_activity(region, hours)
        mean = float(smooth[:reference].mean())
        peak = float(smooth[:reference].max())
        scale = min(
            self.base_utilization / mean if mean > 0 else 1.0,
            self.peak_utilization / peak if peak > 0 else 1.0,
        )
        noise = deterministic_noise(
            self.seed, "traffic", np.arange(steps), self.noise_std
        )
        utilization = np.clip(shape * scale * noise, 0.0, None)
        return TrafficTrace(
            hours=hours,
            demand_kw=utilization * total_capacity_kw,
            utilization=utilization,
            events=events,
        )
