"""Online operations subsystem: rolling-horizon, forecast-driven dispatch.

The siting study answers *where to build*; this package answers *how to run
it*: a traffic layer synthesizing request-level demand from regional user
populations (:mod:`repro.operator.traffic`), pluggable energy/load
forecasters with deterministic noise (:mod:`repro.operator.forecast`), a
dispatch core that re-solves a sliding-window LP as in-place splices on one
persistent HiGHS model (:mod:`repro.operator.dispatch`), a replay
harness comparing oracle and forecast-driven policies over the same trace
(:mod:`repro.operator.replay`), and a pure-numpy greedy dispatcher that
keeps replays alive — flagged degraded — when the LP solver is entirely
down (:mod:`repro.operator.failover`).

Scenario integration: the ``operate`` workflow of
:class:`~repro.scenarios.spec.ScenarioSpec` provisions a plan with the
heuristic solver and hands it to :func:`~repro.operator.replay.operate_plan`;
``repro operate --scenario operate-fig06`` runs it from the CLI.
"""

from repro.operator.dispatch import (
    DispatchConfig,
    DispatchDecision,
    DispatchError,
    RollingDispatcher,
    SiteAsset,
)
from repro.operator.failover import GreedyFallbackDispatcher
from repro.operator.faults import (
    DemandSurge,
    FaultSpec,
    ForecastBlackout,
    SiteOutage,
    SolverOutage,
    WanDegradation,
)
from repro.operator.forecast import (
    FORECASTER_KINDS,
    Forecaster,
    NoisyOracleForecaster,
    OracleForecaster,
    PersistenceForecaster,
    RollingForecast,
    SeasonalNaiveForecaster,
    deterministic_noise,
    make_forecaster,
)
from repro.operator.replay import (
    POLICIES,
    OperateConfig,
    ReplayHarness,
    ReplayResult,
    fragility,
    operate_plan,
    regret,
    sites_from_plan,
    survivability_study,
)
from repro.operator.traffic import (
    Region,
    TrafficEvent,
    TrafficModel,
    TrafficTrace,
    default_regions,
)

__all__ = [
    "DemandSurge",
    "DispatchConfig",
    "DispatchDecision",
    "DispatchError",
    "FORECASTER_KINDS",
    "FaultSpec",
    "Forecaster",
    "ForecastBlackout",
    "GreedyFallbackDispatcher",
    "NoisyOracleForecaster",
    "OperateConfig",
    "OracleForecaster",
    "POLICIES",
    "PersistenceForecaster",
    "Region",
    "ReplayHarness",
    "ReplayResult",
    "RollingDispatcher",
    "RollingForecast",
    "SeasonalNaiveForecaster",
    "SiteAsset",
    "SiteOutage",
    "SolverOutage",
    "TrafficEvent",
    "TrafficModel",
    "TrafficTrace",
    "WanDegradation",
    "default_regions",
    "deterministic_noise",
    "fragility",
    "make_forecaster",
    "operate_plan",
    "regret",
    "sites_from_plan",
    "survivability_study",
]
