"""Pluggable energy/load forecasters for the online operations subsystem.

The dispatch core re-solves a sliding-window LP whose right-hand sides are
*forecasts* — of the global service demand and of every site's green
production.  This module provides the forecaster family the replay harness
(and the GreenNebula predictor) draw from:

* :class:`OracleForecaster` — perfect foresight; the regret baseline.
* :class:`NoisyOracleForecaster` — the truth times multiplicative noise with
  a configurable error level, the paper's "what if predictions are off by
  x %" knob.
* :class:`PersistenceForecaster` — tomorrow looks like right now.
* :class:`SeasonalNaiveForecaster` — tomorrow looks like the same hour of the
  previous period (24 h by default), the strongest cheap baseline for
  diurnal series.

Every forecaster is **stateless and deterministic**: the noise applied to a
target step depends only on ``(seed, series key, absolute step index)``, via
a counter-style construction (:func:`deterministic_noise`), never on how many
forecasts were issued before.  Two processes replaying the same trace —
serial, thread or process executors — therefore see bit-identical forecasts,
which is what makes replay records reproducible across
:class:`~repro.parallel.executors.ExecutorFactory` kinds.

Forecasters see the *actual* series as an array plus the index of "now"; the
contract is that non-oracle forecasters may only read ``actuals[: now + 1]``
(the observed past).  The oracle kinds deliberately break it — that is their
job.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import special

#: Registered forecaster kinds, in documentation order.
FORECASTER_KINDS = ("oracle", "noisy-oracle", "persistence", "seasonal-naive")


def _mix_u64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a bijective avalanche hash on uint64 arrays."""
    values = values + np.uint64(0x9E3779B97F4A7C15)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def deterministic_noise(
    seed: int, key: str, indices: np.ndarray, std: float
) -> np.ndarray:
    """Multiplicative noise factors that depend only on (seed, key, index).

    Counter-based: each factor is derived by hashing ``(seed, key, absolute
    step index)`` — SplitMix64 avalanche to a uniform, inverse normal CDF to
    a Gaussian — entirely vectorized, with no RNG state.  Re-forecasting the
    same target step always yields the same factor, no matter how many
    forecasts were issued in between or which process issues them.  Factors
    are clipped at zero (production and demand cannot go negative).
    """
    if std < 0:
        raise ValueError("the noise level cannot be negative")
    indices = np.atleast_1d(np.asarray(indices)).astype(np.int64)
    if std == 0.0:  # reprolint: ok(FLT001) exact noise-free sentinel from config, not a solver result
        return np.ones(indices.shape)
    key_hash = np.uint64(zlib.crc32(key.encode("utf-8")))
    # 1-element array, not a scalar: numpy warns on scalar integer overflow
    # but wraps arrays silently, which is exactly what a mixing hash wants.
    stream = _mix_u64(
        np.array([int(seed) & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        ^ (key_hash << np.uint64(32))
    )[0]
    bits = _mix_u64(indices.astype(np.uint64) ^ stream)
    # Top 53 bits -> uniform in (0, 1), offset half a ulp so ndtri never
    # sees an exact 0 or 1.
    uniform = ((bits >> np.uint64(11)).astype(np.float64) + 0.5) * (2.0 ** -53)
    return np.clip(1.0 + std * special.ndtri(uniform), 0.0, None)


@dataclass(frozen=True)
class Forecaster:
    """Base class: a named forecaster over one scalar series.

    ``key`` names the series ("demand", a site name, ...) so noise streams of
    different series never correlate.
    """

    key: str = "series"

    @property
    def kind(self) -> str:  # pragma: no cover - overridden by subclasses
        raise NotImplementedError

    def forecast(self, actuals: np.ndarray, now: int, horizon: int) -> np.ndarray:
        """Predicted values for steps ``now .. now + horizon - 1``."""
        raise NotImplementedError


@dataclass(frozen=True)
class OracleForecaster(Forecaster):
    """Perfect foresight: the actual series, verbatim."""

    @property
    def kind(self) -> str:
        return "oracle"

    def forecast(self, actuals: np.ndarray, now: int, horizon: int) -> np.ndarray:
        return np.asarray(actuals[now : now + horizon], dtype=float).copy()


@dataclass(frozen=True)
class NoisyOracleForecaster(Forecaster):
    """The truth times seeded multiplicative noise of configurable level."""

    error: float = 0.1
    seed: int = 0

    @property
    def kind(self) -> str:
        return "noisy-oracle"

    def forecast(self, actuals: np.ndarray, now: int, horizon: int) -> np.ndarray:
        window = np.asarray(actuals[now : now + horizon], dtype=float)
        factors = deterministic_noise(
            self.seed, self.key, now + np.arange(len(window)), self.error
        )
        return window * factors


@dataclass(frozen=True)
class PersistenceForecaster(Forecaster):
    """The last observed value, repeated over the horizon."""

    @property
    def kind(self) -> str:
        return "persistence"

    def forecast(self, actuals: np.ndarray, now: int, horizon: int) -> np.ndarray:
        return np.full(horizon, float(actuals[now]))


@dataclass(frozen=True)
class SeasonalNaiveForecaster(Forecaster):
    """The observed value one period earlier (same hour yesterday).

    Steps whose seasonal reference has not been observed yet (the first
    period of a trace, or horizon steps reaching past "now") walk back in
    whole periods until they land on an observed index, falling back to
    persistence at the very start of the series.
    """

    period: int = 24

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("the seasonal period must be at least one step")

    @property
    def kind(self) -> str:
        return "seasonal-naive"

    def forecast(self, actuals: np.ndarray, now: int, horizon: int) -> np.ndarray:
        values = np.empty(horizon)
        for offset in range(horizon):
            index = now + offset - self.period
            while index > now:  # reference not observed yet: walk back a period
                index -= self.period
            values[offset] = float(actuals[max(index, 0) if index >= 0 else 0])
            if index < 0:  # before the series started: persistence fallback
                values[offset] = float(actuals[now])
        return values


def make_forecaster(
    kind: str,
    key: str = "series",
    error: float = 0.0,
    seed: int = 0,
    period: int = 24,
) -> Forecaster:
    """Build a registered forecaster by kind name."""
    if kind == "oracle":
        return OracleForecaster(key=key)
    if kind == "noisy-oracle":
        return NoisyOracleForecaster(key=key, error=error, seed=seed)
    if kind == "persistence":
        return PersistenceForecaster(key=key)
    if kind == "seasonal-naive":
        return SeasonalNaiveForecaster(key=key, period=period)
    raise ValueError(f"unknown forecaster kind {kind!r}; expected one of {FORECASTER_KINDS}")


class RollingForecast:
    """A forecast re-issued on a cadence and consumed step by step.

    The dispatch loop advances one step at a time but only *re-issues*
    forecasts every ``cadence`` steps (the rolling re-forecast cadence of the
    subsystem).  Between issues the stale forecast is consumed at a growing
    offset; the issue horizon is padded by ``cadence - 1`` steps so the
    window never outruns it.
    """

    def __init__(self, forecaster: Forecaster, horizon: int, cadence: int = 1) -> None:
        if horizon < 1:
            raise ValueError("the forecast horizon must be at least one step")
        if cadence < 1:
            raise ValueError("the re-forecast cadence must be at least one step")
        self.forecaster = forecaster
        self.horizon = horizon
        self.cadence = cadence
        self._issued_at: Optional[int] = None
        self._issued: Optional[np.ndarray] = None

    def window(self, actuals: np.ndarray, now: int) -> np.ndarray:
        """The horizon-long forecast window for step ``now``."""
        if self._issued_at is None or now - self._issued_at >= self.cadence or now < self._issued_at:
            self._issued_at = now
            self._issued = self.forecaster.forecast(
                actuals, now, self.horizon + self.cadence - 1
            )
        offset = now - self._issued_at
        return np.asarray(self._issued[offset : offset + self.horizon], dtype=float)
