"""Last-resort greedy dispatcher for solver-down operation.

When the window LP cannot be solved at all — a permanent solver outage, a
crashed backend, repeated non-optimal statuses past the retry -> cold-rebuild
ladder — the replay must still commit *some* feasible step rather than die
mid-week.  :class:`GreedyFallbackDispatcher` produces that step in pure
numpy:

* load is allocated **proportionally to currently-available capacity**
  (clipped to per-site caps when demand exceeds the fleet), the crudest
  policy that never violates a capacity row;
* migration is whatever the reallocation moved away from each site's
  anchored load, scaled back to the WAN budget — load that cannot move
  stays where it was, and the corresponding gains are withdrawn;
* energy is greedy merit order per site: free green first, then battery
  discharge bounded by the stored level, then brown — **battery-safe by
  construction** (never below empty, never above capacity);
* surplus green charges the battery up to capacity, the rest exports.

Decisions carry ``degraded=True`` so replay records honestly flag every
step that was committed without optimality.  The quality gap against the
LP is the price of staying up.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.operator.dispatch import DispatchConfig, DispatchDecision, SiteAsset


class GreedyFallbackDispatcher:
    """Proportional-to-capacity single-step dispatcher (no LP, no solver)."""

    def __init__(self, sites: Sequence[SiteAsset], config: Optional[DispatchConfig] = None) -> None:
        if not sites:
            raise ValueError("the fallback dispatcher needs at least one site")
        self.sites = list(sites)
        self.config = config or DispatchConfig()
        self._capacity_nominal = np.array([site.capacity_kw for site in self.sites])
        self._battery_kwh = np.array([site.battery_kwh for site in self.sites])
        self._price = np.array([site.energy_price_per_kwh for site in self.sites])
        self._tiers = self.config.shed_tiers or ((1.0, self.config.unserved_penalty),)

    def decide(
        self,
        step: int,
        load_kw: np.ndarray,
        level_kwh: np.ndarray,
        demand_kw: float,
        production_kw: np.ndarray,
        capacity_now: Optional[np.ndarray] = None,
        wan_budget_kw: float = np.inf,
    ) -> DispatchDecision:
        cfg = self.config
        delta = cfg.step_hours
        n = len(self.sites)
        cap = (
            self._capacity_nominal
            if capacity_now is None
            else np.minimum(np.asarray(capacity_now, dtype=float), self._capacity_nominal)
        ).astype(float)
        load = np.asarray(load_kw, dtype=float)
        level = np.asarray(level_kwh, dtype=float).copy()
        demand = max(float(demand_kw), 0.0)
        # Load stranded above the available capacity crashed with its site;
        # the anchor releases it, exactly like the LP's outage re-anchoring.
        anchor = np.minimum(load, cap)

        total_cap = float(cap.sum())
        if total_cap <= 0.0:
            compute = np.zeros(n)
        elif demand >= total_cap:
            compute = cap.copy()
        else:
            compute = demand * cap / total_cap

        migrate = np.maximum(anchor - compute, 0.0)
        total_move = float(migrate.sum())
        if np.isfinite(wan_budget_kw) and total_move > wan_budget_kw and total_move > 0.0:
            # Scale migration down to the budget: the unmovable share stays
            # on its old site, and the sites that would have absorbed it give
            # the same volume back (proportionally to their gain).
            scale = max(wan_budget_kw, 0.0) / total_move
            kept_back = migrate * (1.0 - scale)
            migrate *= scale
            gains = np.maximum(compute - anchor, 0.0)
            compute = compute + kept_back
            total_gain = float(gains.sum())
            if total_gain > 0.0:
                compute -= gains * min(1.0, float(kept_back.sum()) / total_gain)
        compute = np.clip(compute, 0.0, cap)
        unserved = max(demand - float(compute.sum()), 0.0)

        # Per-site energy, greedy merit order: green, then battery, then brown.
        pue = np.array([float(site.pue[step]) for site in self.sites])
        production = np.maximum(np.asarray(production_kw, dtype=float), 0.0)
        facility = pue * (compute + cfg.migration_factor * migrate)
        green_direct = np.minimum(production, facility)
        deficit = facility - green_direct
        discharge = np.minimum(deficit, level / delta)
        discharge[self._battery_kwh <= 0] = 0.0
        level -= discharge * delta
        brown = deficit - discharge
        surplus = production - green_direct
        eff = cfg.battery_efficiency
        headroom = np.maximum(self._battery_kwh - level, 0.0)
        charge = np.minimum(surplus, headroom / (eff * delta))
        charge[self._battery_kwh <= 0] = 0.0
        level += eff * delta * charge
        if cfg.allow_export:
            export = surplus - charge
        else:
            export = np.zeros(n)

        # Shed cheapest tiers first, each bounded by its demand share.
        fractions = np.array([frac for frac, _ in self._tiers])
        penalties = np.array([penalty for _, penalty in self._tiers])
        tier_caps = fractions * demand
        tier_unserved = np.zeros(len(self._tiers))
        remaining = unserved
        order = np.argsort(penalties, kind="stable")
        for k in order:
            take = min(remaining, float(tier_caps[k]))
            tier_unserved[k] = take
            remaining -= take
        if remaining > 0.0:
            tier_unserved[order[-1]] += remaining

        objective = float(
            delta * float(self._price @ brown)
            + delta * float(penalties @ tier_unserved)
            + cfg.migration_penalty_per_kw * float(migrate.sum())
            - (cfg.export_credit * delta * float(self._price @ export) if cfg.allow_export else 0.0)
        )
        return DispatchDecision(
            step=int(step),
            objective=objective,
            compute_kw=compute,
            migrate_kw=migrate,
            brown_kw=brown,
            green_direct_kw=green_direct,
            charge_kw=charge,
            discharge_kw=discharge,
            level_kwh=level,
            export_kw=export,
            unserved_kw=float(tier_unserved.sum()),
            iterations=0,
            unserved_by_tier=tier_unserved if cfg.shed_tiers is not None else None,
            degraded=True,
        )
