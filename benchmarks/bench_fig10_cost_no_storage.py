"""Fig. 10 — per-month cost vs desired green percentage, without storage."""

from conftest import print_header
from repro.analysis.figures import GREEN_FRACTIONS, solution_costs
from repro.analysis import format_table, series_to_rows
from repro.core import StorageMode


def test_fig10_cost_vs_green_no_storage(benchmark, sweeps):
    results = benchmark.pedantic(sweeps.sweep, args=(StorageMode.NONE,), rounds=1, iterations=1)
    net_metering = sweeps.sweep(StorageMode.NET_METERING)
    costs = solution_costs(results)
    net_costs = solution_costs(net_metering)

    print_header("Figure 10: cost vs desired green percentage (no storage), $M/month")
    rows = series_to_rows(costs, "green_pct", [int(100 * f) for f in GREEN_FRACTIONS])
    print(format_table(rows))
    print(
        "paper shape: without storage the cost explodes at high green percentages "
        "($82.8M vs $22.1M at 100 %, a 3.75x factor); green plants are massively "
        "over-provisioned to cover low-production periods"
    )

    both = costs["wind_and_or_solar"]
    both_net = net_costs["wind_and_or_solar"]
    # Without storage, 100 % green is far more expensive than with net metering.
    assert both[-1] >= both_net[-1] * 1.5
    # And far more expensive than the brown baseline.
    assert both[-1] >= both[0] * 1.5
    # The no-storage plans over-provision green plants heavily at 100 %.
    plan_100 = results["wind_and_or_solar"][1.0].plan
    assert plan_100 is not None
    assert (plan_100.total_solar_kw + plan_100.total_wind_kw) >= 4 * 50_000.0
