"""Section IV-B — sensitivity of the total cost to the net-metering credit.

Ported to the declarative scenario runner: the credit sweep is the registered
``sec4b`` scenario (one axis over ``net_meter_credit``).
"""

from conftest import print_header, run_scenario
from repro.analysis import format_table


def test_sec4b_net_metering_return(benchmark, runner):
    results = benchmark.pedantic(
        run_scenario, args=(runner, "sec4b"), rounds=1, iterations=1
    )

    print_header("Section IV-B: 100 % green network cost vs net-metering credit")
    rows = [
        {
            "credit_pct": int(100 * point.overrides["net_meter_credit"]),
            "monthly_cost_musd": point.record["monthly_cost_musd"],
            "num_datacenters": point.record["num_datacenters"],
        }
        for point in results
    ]
    print(format_table(rows))
    print(
        "paper claim: the net-metering *revenue* has little impact on the cost — the key "
        "benefit is the ability to store green energy in the grid (cost stays ~$22M/month "
        "regardless of the credit)"
    )

    costs = [point.record["monthly_cost"] for point in results]
    assert all(point.record["feasible"] for point in results)
    # Varying the credit from 100 % to 0 % changes the cost only marginally.
    assert max(costs) <= min(costs) * 1.15
