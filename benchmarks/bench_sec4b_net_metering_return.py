"""Section IV-B — sensitivity of the total cost to the net-metering credit."""

from conftest import BENCH_CAPACITY_KW, bench_settings, print_header
from repro.analysis import format_table
from repro.core import EnergySources, StorageMode

CREDITS = (1.0, 0.5, 0.0)


def run_credit_sweep(tool, settings):
    results = {}
    for credit in CREDITS:
        results[credit] = tool.plan_network(
            total_capacity_kw=BENCH_CAPACITY_KW,
            min_green_fraction=1.0,
            sources=EnergySources.SOLAR_AND_WIND,
            storage=StorageMode.NET_METERING,
            net_meter_credit=credit,
            settings=settings,
        )
    return results


def test_sec4b_net_metering_return(benchmark, tool):
    results = benchmark.pedantic(
        run_credit_sweep, args=(tool, bench_settings()), rounds=1, iterations=1
    )

    print_header("Section IV-B: 100 % green network cost vs net-metering credit")
    rows = [
        {
            "credit_pct": int(100 * credit),
            "monthly_cost_musd": solution.monthly_cost / 1e6,
            "num_datacenters": solution.plan.num_datacenters if solution.plan else 0,
        }
        for credit, solution in results.items()
    ]
    print(format_table(rows))
    print(
        "paper claim: the net-metering *revenue* has little impact on the cost — the key "
        "benefit is the ability to store green energy in the grid (cost stays ~$22M/month "
        "regardless of the credit)"
    )

    costs = [solution.monthly_cost for solution in results.values()]
    assert all(solution.feasible for solution in results.values())
    # Varying the credit from 100 % to 0 % changes the cost only marginally.
    assert max(costs) <= min(costs) * 1.15
