"""Fig. 3 — cumulative solar and wind capacity factors across the catalogue."""

import numpy as np

from conftest import print_header
from repro.analysis import figure3_capacity_factor_cdf


def test_fig03_capacity_factor_cdf(benchmark, tool):
    data = benchmark(figure3_capacity_factor_cdf, tool.profiles)

    print_header("Figure 3: capacity factors of the candidate locations (CDF)")
    print(f"{'locations %':>12}  {'solar CF %':>10}  {'wind CF %':>10}")
    for percentile in (0, 10, 25, 50, 75, 90, 100):
        index = min(len(data["solar_cf"]) - 1, int(percentile / 100 * (len(data["solar_cf"]) - 1)))
        print(
            f"{percentile:>12}  {100 * data['solar_cf'][index]:>10.1f}  "
            f"{100 * data['wind_cf'][index]:>10.1f}"
        )
    print(
        "paper shape: most locations have solar CF 10-23 %; wind is usually lower "
        "but its tail reaches ~55 % at the windiest sites"
    )

    # Shape assertions (who wins where).
    assert np.median(data["solar_cf"]) > np.median(data["wind_cf"])
    assert data["wind_cf"][-1] > data["solar_cf"][-1]
    assert data["wind_cf"][-1] >= 0.40
    assert data["solar_cf"][-1] <= 0.30
