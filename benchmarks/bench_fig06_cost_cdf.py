"""Fig. 6 — CDF of the per-month cost of one 25 MW datacenter at each location."""

import numpy as np

from conftest import print_header
from repro.analysis import figure6_cost_cdf


def test_fig06_single_site_cost_cdf(benchmark, tool):
    data = benchmark.pedantic(
        figure6_cost_cdf, args=(tool,), kwargs={"capacity_kw": 25_000.0}, rounds=1, iterations=1
    )

    print_header("Figure 6: per-month cost of a single 25 MW datacenter (CDF over locations)")
    print(f"{'percentile':>10}  {'brown $M':>9}  {'wind $M':>9}  {'solar $M':>9}")
    for percentile in (10, 25, 50, 80, 90):
        row = []
        for label in ("brown", "wind", "solar"):
            costs = data[label]
            index = min(len(costs) - 1, int(percentile / 100 * (len(costs) - 1)))
            row.append(costs[index] / 1e6)
        print(f"{percentile:>10}  {row[0]:>9.1f}  {row[1]:>9.1f}  {row[2]:>9.1f}")
    print(
        "paper shape: at 80 %% of locations, brown $8.7-12.8M, wind $9.1-16M, solar $10.9-23.3M "
        "(wind is consistently cheaper than solar for a 50 %% green datacenter)"
    )

    # Shape: the brown configuration is the cheapest one everywhere, and at the
    # good (cheap) end of the distribution wind beats solar, as in the paper.
    for percentile in (0.25, 0.5, 0.8):
        brown = np.quantile(data["brown"], percentile)
        wind = np.quantile(data["wind"], percentile)
        solar = np.quantile(data["solar"], percentile)
        assert brown <= wind * 1.02 and brown <= solar * 1.02
    assert data["wind"][0] <= data["solar"][0]
    assert np.quantile(data["wind"], 0.25) <= np.quantile(data["solar"], 0.25) * 1.05
    # Cheapest brown datacenter lands in the paper's single-digit-$M range.
    assert 6e6 <= data["brown"][0] <= 14e6
