"""Fig. 6 — CDF of the per-month cost of one 25 MW datacenter at each location.

Ported to the declarative scenario runner: the three configurations (brown,
50 % solar, 50 % wind) are the registered ``fig06`` sweep, and the per-location
costs come out of the sweep records.
"""

import numpy as np

from conftest import print_header, run_scenario

CONFIG_LABELS = {"brown": "brown", "solar": "solar", "wind": "wind"}


def cost_cdf_from_results(results) -> dict:
    """Sorted feasible per-location costs of each Fig. 6 configuration."""
    data = {}
    for point in results:
        label = CONFIG_LABELS[point.spec.canonical().sources]
        costs = [
            row["monthly_cost"] for row in point.record["locations"] if row["feasible"]
        ]
        data[label] = np.array(sorted(costs))
    return data


def test_fig06_single_site_cost_cdf(benchmark, runner):
    results = benchmark.pedantic(
        run_scenario, args=(runner, "fig06"), rounds=1, iterations=1
    )
    data = cost_cdf_from_results(results)

    print_header("Figure 6: per-month cost of a single 25 MW datacenter (CDF over locations)")
    print(f"{'percentile':>10}  {'brown $M':>9}  {'wind $M':>9}  {'solar $M':>9}")
    for percentile in (10, 25, 50, 80, 90):
        row = []
        for label in ("brown", "wind", "solar"):
            costs = data[label]
            index = min(len(costs) - 1, int(percentile / 100 * (len(costs) - 1)))
            row.append(costs[index] / 1e6)
        print(f"{percentile:>10}  {row[0]:>9.1f}  {row[1]:>9.1f}  {row[2]:>9.1f}")
    print(
        "paper shape: at 80 %% of locations, brown $8.7-12.8M, wind $9.1-16M, solar $10.9-23.3M "
        "(wind is consistently cheaper than solar for a 50 %% green datacenter)"
    )

    # Shape: the brown configuration is the cheapest one everywhere, and at the
    # good (cheap) end of the distribution wind beats solar, as in the paper.
    for percentile in (0.25, 0.5, 0.8):
        brown = np.quantile(data["brown"], percentile)
        wind = np.quantile(data["wind"], percentile)
        solar = np.quantile(data["solar"], percentile)
        assert brown <= wind * 1.02 and brown <= solar * 1.02
    assert data["wind"][0] <= data["solar"][0]
    assert np.quantile(data["wind"], 0.25) <= np.quantile(data["solar"], 0.25) * 1.05
    # Cheapest brown datacenter lands in the paper's single-digit-$M range.
    assert 6e6 <= data["brown"][0] <= 14e6
