"""Fig. 8 — per-month cost vs desired green percentage, with net metering."""

from conftest import print_header
from repro.analysis.figures import GREEN_FRACTIONS, solution_costs
from repro.analysis import format_table, series_to_rows
from repro.core import StorageMode


def test_fig08_cost_vs_green_net_metering(benchmark, sweeps):
    results = benchmark.pedantic(
        sweeps.sweep, args=(StorageMode.NET_METERING,), rounds=1, iterations=1
    )
    costs = solution_costs(results)

    print_header("Figure 8: cost vs desired green percentage (net metering), $M/month")
    rows = series_to_rows(costs, "green_pct", [int(100 * f) for f in GREEN_FRACTIONS])
    print(format_table(rows))
    print(
        "paper shape: wind-only and wind+solar nearly coincide and rise gently "
        "($17.3M at 0 %, $19.6M at 50 %, $22.1M at 100 %); solar-only is the most expensive curve"
    )

    wind = costs["wind"]
    solar = costs["solar"]
    both = costs["wind_and_or_solar"]
    # Solar-only is at least as expensive as wind-only at 50 % green and beyond.
    for index in (2, 3, 4):
        assert solar[index] >= wind[index] * 0.98
        # Allowing both technologies is never meaningfully worse than either alone
        # (the heuristic is stochastic, so allow a small slack).
        assert both[index] <= min(wind[index], solar[index]) * 1.10
    # Cost rises (weakly) with the green requirement.
    assert both[-1] >= both[0] * 0.98
    # 100 % green with net metering stays within ~60 % of the brown cost.
    assert both[-1] <= both[0] * 1.6
