"""Fig. 7 / Section III-C — the 50 MW, 50 % green case study and its cost breakdown."""

from conftest import BENCH_CAPACITY_KW, print_header
from repro.analysis import case_study_breakdown, format_table
from repro.core import StorageMode


def test_fig07_case_study_breakdown(benchmark, sweeps):
    results = benchmark.pedantic(
        sweeps.sweep, args=(StorageMode.NET_METERING,), rounds=1, iterations=1
    )
    solution = results["wind_and_or_solar"][0.5]
    brown = results["wind_and_or_solar"][0.0]
    assert solution.feasible and solution.plan is not None
    plan = solution.plan

    print_header("Figure 7 / Section III-C: 50 MW network with 50 % green energy")
    print(plan.describe())
    print()
    print(format_table(case_study_breakdown(plan)))
    premium = solution.monthly_cost / brown.monthly_cost - 1.0
    print(
        f"green premium over the cheapest brown network: {100 * premium:.1f} % "
        "(paper: ~13 %, $19.6M vs $17.3M)"
    )

    # Shape assertions from Section III-C.
    assert plan.total_capacity_kw >= BENCH_CAPACITY_KW - 1.0
    assert plan.total_capacity_kw <= BENCH_CAPACITY_KW * 1.15  # no significant idleness
    assert 2 <= plan.num_datacenters <= 3
    assert plan.green_fraction >= 0.5 - 1e-3
    assert 0.0 <= premium <= 0.35
    breakdown = plan.cost_breakdown()
    # Construction and IT equipment dominate the cost, as in the paper.
    dominant = breakdown["building_dc"] + breakdown["it_equipment"]
    assert dominant >= 0.5 * plan.total_monthly_cost
