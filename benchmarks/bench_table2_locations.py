"""Table II — attributes of good brown / solar / wind locations.

Ported to the declarative scenario runner: each Table II row is one zipped
point of the registered ``table2`` sweep (location + configuration), and the
row attributes come out of the sweep records.
"""

from conftest import print_header, run_scenario
from repro.analysis import format_table
from repro.scenarios.registry import TABLE2_CONFIGURATIONS


def table2_rows(results) -> list:
    rows = []
    for point, (location, kind, _) in zip(results, TABLE2_CONFIGURATIONS):
        row = dict(point.record["locations"][0])
        assert row["location"] == location
        row["dc_type"] = kind
        rows.append(row)
    return rows


def test_table2_good_locations(benchmark, runner):
    results = benchmark.pedantic(
        run_scenario, args=(runner, "table2"), rounds=1, iterations=1
    )
    rows = table2_rows(results)

    print_header("Table II: good locations for brown / solar / wind datacenters (25 MW)")
    print(
        format_table(
            rows,
            columns=[
                "dc_type",
                "location",
                "monthly_cost_musd",
                "solar_capacity_factor_pct",
                "wind_capacity_factor_pct",
                "max_pue",
                "electricity_usd_per_mwh",
                "land_usd_per_m2",
                "distance_power_km",
                "distance_network_km",
            ],
        )
    )
    print(
        "paper values: Kiev $8.7M (brown); Harare $16.5M / Nairobi $13.1M (solar, CF 22.4/20.9 %); "
        "Mount Washington $11.9M / Burke Lakefront $10.5M (wind, CF 55.6/20.9 %)"
    )

    by_location = {row["location"]: row for row in rows}
    # Capacity factors and prices are pinned to the paper's values.
    assert abs(by_location["Harare, Zimbabwe"]["solar_capacity_factor_pct"] - 22.4) < 1.0
    assert abs(by_location["Mount Washington, NH, USA"]["wind_capacity_factor_pct"] - 55.6) < 1.5
    # Cost ordering: the brown Kiev datacenter is the cheapest of the five.
    assert by_location["Kiev, Ukraine"]["monthly_cost_musd"] == min(
        row["monthly_cost_musd"] for row in rows
    )
    # Wind sites beat solar sites at the 50 % green requirement.
    assert by_location["Burke Lakefront, OH, USA"]["monthly_cost_musd"] < by_location[
        "Harare, Zimbabwe"
    ]["monthly_cost_musd"]
