"""Section V-C — GreenNebula scheduler computation time.

The paper reports that the scheduler computes a migration schedule in roughly
240-310 ms for a 50 MW service and 760-780 ms for a 200 MW service (on 2011
hardware), and faster when net metering is available.  This benchmark times
our scheduler's LP for the same three plant mixes at both scales.
"""

import pytest

from conftest import print_header
from repro.energy import EpochGrid, ProfileBuilder
from repro.greennebula import GreenDatacenter, GreenNebulaScheduler
from repro.weather import build_world_catalog

SETUPS = {
    "solar-only": (1.0, 0.0),
    "wind-only": (0.0, 1.0),
    "solar+wind": (0.6, 0.6),
}
SCALES_MW = (50.0, 200.0)


def build_scheduler(total_it_mw: float, solar_share: float, wind_share: float):
    catalog = build_world_catalog(num_locations=20, seed=2014)
    builder = ProfileBuilder(catalog)
    grid = EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=1)
    names = ["Mexico City, Mexico", "Andersen, Guam", "Harare, Zimbabwe"]
    per_site_kw = total_it_mw * 1000.0 / len(names)
    datacenters = []
    for name in names:
        dc = GreenDatacenter(
            name=name,
            profile=builder.build(catalog.get(name), grid),
            it_capacity_kw=per_site_kw,
            solar_kw=per_site_kw * 7.0 * solar_share,
            wind_kw=per_site_kw * 2.0 * wind_share,
        )
        dc.provision_hosts(2)
        datacenters.append(dc)
    return GreenNebulaScheduler(datacenters, horizon_hours=48)


@pytest.mark.parametrize("scale_mw", SCALES_MW)
@pytest.mark.parametrize("setup", sorted(SETUPS))
def test_sec5c_scheduler_timing(benchmark, setup, scale_mw):
    solar_share, wind_share = SETUPS[setup]
    scheduler = build_scheduler(scale_mw, solar_share, wind_share)

    decision = benchmark(scheduler.schedule, 12.0)

    print_header(
        f"Section V-C: scheduler computation time — {setup}, {scale_mw:.0f} MW service"
    )
    print(f"one scheduling pass (48 h look-ahead, 3 datacenters): "
          f"{1000 * decision.solve_time_seconds:.0f} ms")
    print(
        "paper timings: ~240-310 ms at 50 MW and ~760-780 ms at 200 MW per schedule "
        "(160 ms with net metering); the shape to match is 'well under a second'"
    )

    assert set(decision.target_power_kw) == {dc.name for dc in scheduler.datacenters}
    assert decision.solve_time_seconds < 2.0
