"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper and prints
the corresponding rows/series (run pytest with ``-s`` to see them).  The
expensive sweeps (Figs. 8-13) are computed once per session and shared between
the cost and capacity figures, mirroring how the paper derives Figs. 11-12
from the same solutions as Figs. 8 and 10.

The benchmark configuration is intentionally smaller than the paper's full
1373-location, hourly-resolution setup (a ~90-location catalogue, four
representative days at 3-hour resolution, short annealing schedules) so the
whole harness completes in minutes on a laptop; the *shape* of every result —
orderings, ratios, crossovers — is what is being reproduced.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis.figures import GREEN_FRACTIONS, figure8_cost_vs_green
from repro.core import PlacementTool, SearchSettings, StorageMode
from repro.energy import EpochGrid
from repro.weather import build_world_catalog

#: Number of candidate locations used by the benchmark harness.
BENCH_LOCATIONS = 90
#: Compute power of the service under study (the paper's 50 MW base case).
BENCH_CAPACITY_KW = 50_000.0


def bench_settings() -> SearchSettings:
    """Heuristic settings used across the benchmark harness."""
    return SearchSettings(
        keep_locations=10,
        max_iterations=18,
        patience=10,
        num_chains=2,
        seed=2014,
        max_datacenters=5,
    )


@pytest.fixture(scope="session")
def catalog():
    return build_world_catalog(num_locations=BENCH_LOCATIONS, seed=2014)


@pytest.fixture(scope="session")
def tool(catalog):
    return PlacementTool(
        catalog=catalog,
        epoch_grid=EpochGrid.from_seasons(days_per_season=1, hours_per_epoch=3),
    )


@pytest.fixture(scope="session")
def settings():
    return bench_settings()


class SweepCache:
    """Lazily computed cost-vs-green sweeps, shared across benchmark modules."""

    def __init__(self, tool: PlacementTool, settings: SearchSettings) -> None:
        self._tool = tool
        self._settings = settings
        self._results: Dict[StorageMode, dict] = {}

    def sweep(self, storage: StorageMode) -> dict:
        if storage not in self._results:
            self._results[storage] = figure8_cost_vs_green(
                self._tool,
                storage=storage,
                green_fractions=GREEN_FRACTIONS,
                total_capacity_kw=BENCH_CAPACITY_KW,
                settings=self._settings,
            )
        return self._results[storage]


@pytest.fixture(scope="session")
def sweeps(tool, settings):
    return SweepCache(tool, settings)


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
