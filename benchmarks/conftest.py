"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper and prints
the corresponding rows/series (run pytest with ``-s`` to see them).  All of
them run through one session-wide
:class:`~repro.scenarios.runner.ExperimentRunner` executing the registered
paper scenarios (:mod:`repro.scenarios.registry`): the runner shares the
catalogue, the location profiles and the compiled LP skeletons across every
sweep point, memoizes duplicated points (Figs. 8-12 share their brown
baselines, Figs. 11/12 are the capacity view of the Figs. 8/10 sweeps, and
Table III is a point of the Fig. 10 grid), and keeps the live solutions in
memory for the modules that inspect the chosen plans.

The benchmark configuration is intentionally smaller than the paper's full
1373-location, hourly-resolution setup (a ~90-location catalogue, four
representative days at 3-hour resolution, short annealing schedules) so the
whole harness completes in minutes on a laptop; the *shape* of every result —
orderings, ratios, crossovers — is what is being reproduced.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core import StorageMode
from repro.scenarios import (
    ExperimentRunner,
    ResultSet,
    bench_base,
    build_sweep,
    source_label,
)

#: Number of candidate locations used by the benchmark harness.
BENCH_LOCATIONS = 90
#: Compute power of the service under study (the paper's 50 MW base case).
BENCH_CAPACITY_KW = 50_000.0

_STORAGE_SCENARIOS = {
    StorageMode.NET_METERING: "fig08",
    StorageMode.BATTERIES: "fig09",
    StorageMode.NONE: "fig10",
}


@pytest.fixture(scope="session")
def runner():
    """The session-wide experiment runner (in-memory memo, no disk cache)."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def tool(runner):
    """A placement tool on the runner's shared catalogue and profiles.

    Kept for the input-data benchmarks (Figs. 3-5) that read profiles
    directly rather than running an optimisation.
    """
    return runner.tool_for(bench_base())


class PaperSweeps:
    """Runner-backed view of the Figs. 8-12 sweeps.

    ``sweep(storage)`` returns the same nested mapping the analysis layer
    consumes — curve label -> green fraction -> live
    :class:`~repro.core.heuristic.HeuristicSolution` — with every point
    computed (at most once) by the shared experiment runner.
    """

    def __init__(self, runner: ExperimentRunner) -> None:
        self._runner = runner
        self._results: Dict[StorageMode, dict] = {}

    def result_set(self, storage: StorageMode) -> ResultSet:
        return self._runner.run(build_sweep(_STORAGE_SCENARIOS[storage]))

    def sweep(self, storage: StorageMode) -> dict:
        if storage not in self._results:
            grouped: dict = {}
            for point in self.result_set(storage):
                label = source_label(point.overrides["sources"])
                grouped.setdefault(label, {})[
                    point.overrides["min_green_fraction"]
                ] = point.solution
            self._results[storage] = grouped
        return self._results[storage]


@pytest.fixture(scope="session")
def sweeps(runner):
    return PaperSweeps(runner)


def run_scenario(runner: ExperimentRunner, name: str) -> ResultSet:
    """Run a registered scenario through the shared runner."""
    return runner.run(build_sweep(name))


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
