"""Fig. 5 — average PUE against solar and wind capacity factors."""

import numpy as np

from conftest import print_header
from repro.analysis import figure5_pue_vs_capacity_factor


def test_fig05_pue_vs_capacity_factor(benchmark, tool):
    data = benchmark(figure5_pue_vs_capacity_factor, tool.profiles)

    print_header("Figure 5: average PUE vs capacity factor")
    windiest = np.argsort(data["wind_cf"])[-5:]
    sunniest = np.argsort(data["solar_cf"])[-5:]
    print("5 windiest locations:  wind CF %%: %s  avg PUE: %s" % (
        np.round(100 * data["wind_cf"][windiest], 1).tolist(),
        np.round(data["avg_pue"][windiest], 3).tolist(),
    ))
    print("5 sunniest locations:  solar CF %%: %s  avg PUE: %s" % (
        np.round(100 * data["solar_cf"][sunniest], 1).tolist(),
        np.round(data["avg_pue"][sunniest], 3).tolist(),
    ))
    print(
        "paper shape: the windiest locations have low PUEs (cold sites); the sunniest "
        "tend to have higher PUEs (hot sites), with a band of good-solar/low-PUE sites"
    )

    # High wind capacity factors correlate with cool climates (low PUE);
    # high solar with warm climates (higher PUE).
    mean_pue_windy = float(np.mean(data["avg_pue"][windiest]))
    mean_pue_sunny = float(np.mean(data["avg_pue"][sunniest]))
    assert mean_pue_windy <= mean_pue_sunny + 0.02
    assert np.all(data["avg_pue"] >= 1.0) and np.all(data["avg_pue"] <= 1.25)
